//! Property-based tests over the whole stack.
//!
//! Self-contained harness: the container image has no network access to
//! crates.io, so instead of `proptest` these properties run over inputs
//! drawn from the deterministic xorshift PRNG shared across the workspace
//! ([`testutil::Rng`]). Each property executes a fixed number of cases
//! from fixed seeds, so failures are reproducible by construction
//! (re-running the test replays the exact same inputs).

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::VmConfig;
use mir::pipeline::{ExtensionPoint, OptLevel, Pipeline};
use testutil::{cases, Rng};

// ---------------------------------------------------------------------------
// Low-fat layout: encode/decode round trips
// ---------------------------------------------------------------------------

/// For any allocation the low-fat heap hands out, every interior pointer
/// decodes back to the object base and class size.
#[test]
fn lowfat_base_recovery_roundtrip() {
    cases(64, |rng| {
        let mut heap = lowfat::LowFatHeap::new();
        for _ in 0..rng.range(1, 40) {
            let size = rng.range(1, 100_000);
            let a = heap.alloc(size).unwrap();
            assert!(lowfat::is_low_fat(a.addr));
            assert_eq!(lowfat::size_of_ptr(a.addr), Some(a.class_size));
            // Interior pointers, including one-past-the-requested-end.
            for off in [0, 1, size / 2, size.saturating_sub(1), size] {
                assert_eq!(lowfat::base_of(a.addr + off), a.addr, "offset {off}");
            }
        }
    });
}

/// The class chosen for a request always fits it plus the padding byte,
/// and is minimal.
#[test]
fn lowfat_class_fits_and_is_minimal() {
    let check = |size: u64| {
        let class = lowfat::class_for_request(size).unwrap();
        let cs = lowfat::alloc_size(class);
        assert!(cs > size, "size {size}");
        if class > 1 {
            assert!(lowfat::alloc_size(class - 1) < size + 1, "size {size}");
        }
    };
    check(0);
    check((1 << 30) - 2);
    cases(256, |rng| check(rng.range(0, (1 << 30) - 1)));
}

/// Random alloc/free interleavings never produce overlapping live objects.
#[test]
fn lowfat_no_overlap() {
    cases(64, |rng| {
        let mut heap = lowfat::LowFatHeap::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for _ in 0..rng.range(1, 80) {
            let size = rng.range(0, 5000);
            if rng.chance() && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                heap.free(addr);
            } else if let Some(a) = heap.alloc(size) {
                for &(b, bs) in &live {
                    assert!(
                        a.addr + a.class_size <= b || b + bs <= a.addr,
                        "overlap: {:#x}+{} vs {:#x}+{}",
                        a.addr,
                        a.class_size,
                        b,
                        bs
                    );
                }
                live.push((a.addr, a.class_size));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// SoftBound metadata structures vs. reference models
// ---------------------------------------------------------------------------

/// The two-level trie behaves exactly like a flat map over 8-byte slots.
#[test]
fn trie_matches_model() {
    use softbound_rt::{Bounds, MetadataTrie};
    cases(64, |rng| {
        let mut trie = MetadataTrie::new();
        let mut model = std::collections::HashMap::new();
        for _ in 0..rng.range(1, 200) {
            let addr = rng.range(0, 1_000_000);
            let base = rng.range(0, 1000);
            let b = Bounds { base, bound: base + rng.range(0, 1000) };
            trie.set(addr, b);
            model.insert(addr >> 3, b);
        }
        for (&slot, &b) in &model {
            assert_eq!(trie.get(slot << 3), b);
            assert_eq!(trie.get((slot << 3) + 7), b);
        }
    });
}

/// `Bounds::allows` is equivalent to interval containment.
#[test]
fn bounds_allow_is_interval_containment() {
    cases(256, |rng| {
        let base = rng.range(0, 10_000);
        let b = softbound_rt::Bounds { base, bound: base + rng.range(0, 10_000) };
        let ptr = rng.range(0, 30_000);
        let width = rng.range(1, 64);
        let expect = ptr >= b.base && ptr + width <= b.bound;
        assert_eq!(b.allows(ptr, width), expect, "{b:?} ptr {ptr} width {width}");
    });
}

// ---------------------------------------------------------------------------
// IR text format: print → parse → print is a fixpoint
// ---------------------------------------------------------------------------

/// Random straight-line arithmetic programs round-trip through the textual
/// format.
#[test]
fn printer_parser_fixpoint() {
    use mir::builder::ModuleBuilder;
    use mir::instr::{BinOp, Operand};
    use mir::types::Type;
    cases(64, |rng| {
        let mut mb = ModuleBuilder::new("prop");
        let mut fb = mb.function("main", vec![], Type::I64);
        let mut vals: Vec<Operand> = vec![Operand::i64(1)];
        for _ in 0..rng.range(1, 30) {
            let last = vals.last().unwrap().clone();
            let k = Operand::i64(rng.irange(-100, 100));
            let v = match rng.range(0, 5) {
                0 => fb.add(Type::I64, last, k),
                1 => fb.sub(Type::I64, last, k),
                2 => fb.mul(Type::I64, last, k),
                3 => fb.bin(BinOp::Xor, Type::I64, last, k),
                _ => fb.bin(BinOp::And, Type::I64, last, k),
            };
            vals.push(v);
        }
        let last = vals.last().unwrap().clone();
        fb.ret(Some(last));
        fb.finish();
        let m = mb.finish();
        let t1 = mir::printer::print_module(&m);
        let m2 = mir::parser::parse_module(&t1).unwrap();
        let t2 = mir::printer::print_module(&m2);
        assert_eq!(t1, t2);
        mir::verifier::verify_module(&m2).unwrap();
    });
}

// ---------------------------------------------------------------------------
// Whole-stack semantic preservation on generated memory-safe programs
// ---------------------------------------------------------------------------

/// Operations of a random (but always memory-safe) generated C program.
#[derive(Clone, Debug)]
enum Op {
    /// `x = x <op> k`
    Arith(u8, i64),
    /// `a[i % N] = x`
    Store(u64),
    /// `x = x + a[i % N]`
    Load(u64),
    /// `x += loop_sum(j)` — exercises calls
    Call(u64),
}

fn random_ops(rng: &mut Rng, max_len: u64) -> Vec<Op> {
    (0..rng.range(1, max_len))
        .map(|_| match rng.range(0, 4) {
            0 => Op::Arith(rng.range(0, 4) as u8, rng.irange(-50, 50)),
            1 => Op::Store(rng.range(0, 64)),
            2 => Op::Load(rng.range(0, 64)),
            _ => Op::Call(rng.range(1, 8)),
        })
        .collect()
}

fn generate_c(ops: &[Op]) -> String {
    let mut body = String::new();
    for op in ops {
        match op {
            Op::Arith(o, k) => {
                let sym = match o {
                    0 => "+",
                    1 => "-",
                    2 => "*",
                    _ => "^",
                };
                body.push_str(&format!("    x = x {sym} {k};\n"));
            }
            Op::Store(i) => body.push_str(&format!("    a[{i}] = x;\n")),
            Op::Load(i) => body.push_str(&format!("    x = x + a[{i}];\n")),
            Op::Call(j) => body.push_str(&format!("    x = x + loop_sum({j});\n")),
        }
    }
    format!(
        r#"
        long loop_sum(long n) {{
            long s = 0;
            for (long i = 0; i < n; i += 1) s += i * 3;
            return s;
        }}
        long a[64];
        long main(void) {{
            long x = 1;
        {body}
            long chk = 0;
            for (long i = 0; i < 64; i += 1) chk += a[i];
            print_i64(x);
            print_i64(chk);
            return 0;
        }}
    "#
    )
}

/// For any generated memory-safe program, O0, O3, and both fully
/// instrumented builds print exactly the same output.
#[test]
fn semantics_preserved_across_all_configs() {
    cases(24, |rng| {
        let src = generate_c(&random_ops(rng, 25));
        let module = cfront::compile(&src).unwrap();

        let o0 = compile_baseline(
            module.clone(),
            BuildOptions { opt: OptLevel::O0, ep: ExtensionPoint::VectorizerStart },
        )
        .run_main(VmConfig::default())
        .unwrap();
        let o3 = compile_baseline(module.clone(), BuildOptions::default())
            .run_main(VmConfig::default())
            .unwrap();
        assert_eq!(&o0.output, &o3.output, "O0 vs O3");

        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            for ep in ExtensionPoint::ALL {
                let out = compile(
                    module.clone(),
                    &MiConfig::new(mech),
                    BuildOptions { opt: OptLevel::O3, ep },
                )
                .run_main(VmConfig::default())
                .unwrap_or_else(|t| panic!("{mech:?}@{}: {t}\n{src}", ep.name()));
                assert_eq!(&out.output, &o3.output, "{mech:?}@{}", ep.name());
            }
        }
    });
}

/// Dominance-based check elimination never changes the verdict: a *buggy*
/// generated program (one index pushed out of bounds) is caught identically
/// with and without the optimization.
#[test]
fn check_elimination_preserves_verdicts() {
    cases(16, |rng| {
        let mut src = generate_c(&random_ops(rng, 15));
        let oob_index = rng.range(64, 100);
        // Inject one out-of-bounds store before the checksum loop.
        src = src
            .replace("    long chk = 0;", &format!("    a[{oob_index}] = x;\n    long chk = 0;"));
        let module = cfront::compile(&src).unwrap();
        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            let with_opt = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
                .run_main(VmConfig::default());
            let without =
                compile(module.clone(), &MiConfig::unoptimized(mech), BuildOptions::default())
                    .run_main(VmConfig::default());
            assert_eq!(
                with_opt.is_err(),
                without.is_err(),
                "{mech:?}: opt {with_opt:?} vs unopt {without:?}"
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Control-flow-heavy generated programs
// ---------------------------------------------------------------------------

/// Statements for a structured generator: arithmetic, guarded branches, and
/// bounded loops, all over one array and one scalar — still always
/// memory-safe.
#[derive(Clone, Debug)]
enum StmtG {
    Arith(u8, i64),
    ArrayOp(u64, bool),
    If(i64, Vec<StmtG>, Vec<StmtG>),
    Loop(u64, Vec<StmtG>),
}

fn random_stmts(rng: &mut Rng, depth: u32, max_len: u64) -> Vec<StmtG> {
    (0..rng.range(1, max_len))
        .map(|_| {
            // Compound statements get rarer (and eventually impossible) as
            // nesting deepens, bounding program size.
            match if depth >= 3 { rng.range(0, 2) } else { rng.range(0, 4) } {
                0 => StmtG::Arith(rng.range(0, 4) as u8, rng.irange(-9, 9)),
                1 => StmtG::ArrayOp(rng.range(0, 64), rng.chance()),
                2 => StmtG::If(
                    rng.irange(-20, 20),
                    random_stmts(rng, depth + 1, 4),
                    if rng.chance() { random_stmts(rng, depth + 1, 3) } else { vec![] },
                ),
                _ => StmtG::Loop(rng.range(1, 6), random_stmts(rng, depth + 1, 4)),
            }
        })
        .collect()
}

fn emit_stmts(out: &mut String, stmts: &[StmtG], depth: usize) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            StmtG::Arith(o, k) => {
                let sym = ["+", "-", "*", "^"][*o as usize % 4];
                out.push_str(&format!("{pad}x = x {sym} {k};\n"));
            }
            StmtG::ArrayOp(i, true) => out.push_str(&format!("{pad}a[{i}] = x & 1023;\n")),
            StmtG::ArrayOp(i, false) => out.push_str(&format!("{pad}x = x + a[{i}];\n")),
            StmtG::If(c, t, e) => {
                out.push_str(&format!("{pad}if ((x & 31) > {c}) {{\n"));
                emit_stmts(out, t, depth + 1);
                if e.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    emit_stmts(out, e, depth + 1);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            StmtG::Loop(n, b) => {
                out.push_str(&format!(
                    "{pad}for (long i{depth} = 0; i{depth} < {n}; i{depth} += 1) {{\n"
                ));
                emit_stmts(out, b, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn generate_control_flow_c(rng: &mut Rng) -> String {
    let mut body = String::new();
    emit_stmts(&mut body, &random_stmts(rng, 0, 8), 0);
    format!(
        r#"
        long a[64];
        long main(void) {{
            long x = 7;
        {body}
            long chk = x;
            for (long i = 0; i < 64; i += 1) chk += a[i] * (i + 1);
            print_i64(chk);
            return 0;
        }}
    "#
    )
}

/// Control-flow-heavy generated programs behave identically across O0, O3,
/// and all three mechanisms.
#[test]
fn control_flow_semantics_preserved() {
    cases(16, |rng| {
        let src = generate_control_flow_c(rng);
        let module = cfront::compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let o0 = compile_baseline(
            module.clone(),
            BuildOptions { opt: OptLevel::O0, ep: ExtensionPoint::VectorizerStart },
        )
        .run_main(VmConfig::default())
        .unwrap();
        let o3 = compile_baseline(module.clone(), BuildOptions::default())
            .run_main(VmConfig::default())
            .unwrap();
        assert_eq!(&o0.output, &o3.output);
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let out = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
                .run_main(VmConfig::default())
                .unwrap_or_else(|t| panic!("{mech:?}: {t}\n{src}"));
            assert_eq!(&out.output, &o3.output, "{mech:?}");
        }
    });
}

// ---------------------------------------------------------------------------
// Pipeline determinism — the precondition the parallel evaluation driver
// (`bench::driver`) relies on: optimizing equal inputs yields equal outputs,
// no matter when or on which thread the pipeline runs.
// ---------------------------------------------------------------------------

fn optimized_ir(module: &mir::Module, opt: OptLevel) -> String {
    let mut m = module.clone();
    Pipeline::new(opt).run(&mut m);
    mir::printer::print_module(&m)
}

fn instrumented_ir(module: &mir::Module, mech: Mechanism, ep: ExtensionPoint) -> String {
    let prog =
        compile(module.clone(), &MiConfig::new(mech), BuildOptions { opt: OptLevel::O3, ep });
    mir::printer::print_module(&prog.module)
}

/// Optimizing the same module twice yields byte-identical printed IR, with
/// and without instrumentation, at every extension point.
#[test]
fn pipeline_is_deterministic_across_repeated_runs() {
    cases(8, |rng| {
        let src = generate_control_flow_c(rng);
        let module = cfront::compile(&src).unwrap();
        for opt in [OptLevel::O0, OptLevel::O3] {
            assert_eq!(optimized_ir(&module, opt), optimized_ir(&module, opt), "{opt:?}\n{src}");
        }
        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            for ep in ExtensionPoint::ALL {
                assert_eq!(
                    instrumented_ir(&module, mech, ep),
                    instrumented_ir(&module, mech, ep),
                    "{mech:?}@{}\n{src}",
                    ep.name()
                );
            }
        }
    });
}

/// Optimizing a module on two different threads yields identical printed IR
/// — the pipeline keeps no hidden global state (thread-locals, iteration
/// order over address-keyed maps) that could leak into the output.
#[test]
fn pipeline_is_deterministic_across_threads() {
    let programs: Vec<String> = {
        let mut rng = Rng::new(0xC0FFEE);
        (0..4).map(|_| generate_control_flow_c(&mut rng)).collect()
    };
    for src in &programs {
        let module = cfront::compile(src).unwrap();
        let on_thread = |f: &(dyn Fn() -> String + Sync)| -> (String, String) {
            std::thread::scope(|s| {
                let a = s.spawn(f);
                let b = s.spawn(f);
                (a.join().unwrap(), b.join().unwrap())
            })
        };
        let (a, b) = on_thread(&|| optimized_ir(&module, OptLevel::O3));
        assert_eq!(a, b, "baseline O3 diverged across threads\n{src}");
        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            let (a, b) =
                on_thread(&|| instrumented_ir(&module, mech, ExtensionPoint::VectorizerStart));
            assert_eq!(a, b, "{mech:?} diverged across threads\n{src}");
        }
    }
}

// ---------------------------------------------------------------------------
// Robustness: parsers never panic on garbage
// ---------------------------------------------------------------------------

fn random_text(rng: &mut Rng) -> String {
    let len = rng.range(0, 200);
    (0..len).filter_map(|_| char::from_u32(rng.range(1, 0x2000) as u32)).collect()
}

/// The IR parser returns an error (never panics) on arbitrary input.
#[test]
fn ir_parser_never_panics() {
    cases(256, |rng| {
        let _ = mir::parser::parse_module(&random_text(rng));
    });
}

/// The C frontend returns an error (never panics) on arbitrary input.
#[test]
fn cfront_never_panics() {
    cases(256, |rng| {
        let _ = cfront::compile(&random_text(rng));
    });
}

/// ... including near-miss C-looking inputs built from real tokens.
#[test]
fn cfront_never_panics_on_token_soup() {
    const TOKENS: &[&str] = &[
        "long", "int", "char", "struct", "if", "else", "while", "for", "return", "break", "(", ")",
        "{", "}", "[", "]", ";", ",", "*", "&", "=", "+", "-", "x", "y", "main", "42", "->", ".",
        "sizeof",
    ];
    cases(256, |rng| {
        let n = rng.range(0, 60);
        let src: Vec<&str> =
            (0..n).map(|_| TOKENS[rng.range(0, TOKENS.len() as u64) as usize]).collect();
        let _ = cfront::compile(&src.join(" "));
    });
}

// ---------------------------------------------------------------------------
// Cost accounting: the category split always sums to the total
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Source provenance: SrcLocs and check-site IDs survive the pipeline
// ---------------------------------------------------------------------------

/// All live (block-linked) instructions of a module.
fn live_instrs(m: &mir::Module) -> impl Iterator<Item = &mir::Instr> + '_ {
    m.functions.iter().flat_map(|f| {
        f.blocks.iter().flat_map(move |b| b.instrs.iter().map(move |id| &f.instrs[id.index()]))
    })
}

/// Source lines referenced by live instructions.
fn loc_lines(m: &mir::Module) -> std::collections::HashSet<u32> {
    live_instrs(m).filter_map(|i| i.loc.map(|l| l.line)).collect()
}

/// If `kind` is a call to one of the four check helpers, returns its
/// trailing site-id operand (None when absent) and the [`mir::SiteKind`]s
/// legal for that helper.
fn check_site_ref(kind: &mir::InstrKind) -> Option<(Option<i64>, &'static [mir::SiteKind])> {
    use mir::SiteKind::{Deref, Invariant, Wrapper};
    let mir::InstrKind::Call { callee, args, .. } = kind else { return None };
    let (idx, kinds): (usize, &'static [mir::SiteKind]) = match callee.as_str() {
        "__sb_check" => (4, &[Deref, Wrapper]),
        "__lf_check" => (3, &[Deref, Wrapper]),
        "__rz_check" => (2, &[Deref, Wrapper]),
        "__lf_invariant" => (2, &[Invariant]),
        _ => return None,
    };
    Some((args.get(idx).and_then(|a| a.as_const_int()), kinds))
}

/// Over every corpus program, at O0 and O3, baseline and all three
/// mechanisms: passes preserve source locations or drop them, but never
/// invent lines the frontend didn't stamp; and after the full pipeline
/// (including post-extension-point simplifycfg/gvn/inline) every check
/// call's site ID still indexes a `check_sites` entry of the right kind —
/// no dangling and no stale IDs.
#[test]
fn corpus_srclocs_and_site_ids_survive_the_pipeline() {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();

    let mut failures = vec![];
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(path).unwrap();
        let Ok(frontend) = cfront::compile_named(&src, &name) else { continue };
        let frontend_lines = loc_lines(&frontend);
        if frontend_lines.is_empty() {
            failures.push(format!("{name}: frontend stamped no source locations"));
            continue;
        }

        for opt in [OptLevel::O0, OptLevel::O3] {
            let opts = BuildOptions { opt, ep: ExtensionPoint::VectorizerStart };
            let mut builds = vec![("baseline", compile_baseline(frontend.clone(), opts).module)];
            for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
                builds.push((
                    mech.name(),
                    compile(frontend.clone(), &MiConfig::new(mech), opts).module,
                ));
            }
            for (cfg, module) in builds {
                let ctx = format!("{name} [{cfg}@{opt:?}]");
                for line in loc_lines(&module) {
                    if !frontend_lines.contains(&line) {
                        failures.push(format!("{ctx}: pass invented source line {line}"));
                    }
                }
                let n_sites = module.check_sites.len();
                for instr in live_instrs(&module) {
                    let Some((id, kinds)) = check_site_ref(&instr.kind) else { continue };
                    let Some(id) = id else {
                        failures.push(format!("{ctx}: check call lacks a site-id operand"));
                        continue;
                    };
                    if id < 0 || id as usize >= n_sites {
                        failures
                            .push(format!("{ctx}: dangling site id {id} (table has {n_sites})"));
                        continue;
                    }
                    let site = &module.check_sites[id as usize];
                    if !kinds.contains(&site.kind) {
                        failures.push(format!(
                            "{ctx}: site {id} has stale kind {:?}, expected one of {kinds:?}",
                            site.kind
                        ));
                    }
                    if let Some(l) = site.line {
                        if !frontend_lines.contains(&l) {
                            failures.push(format!("{ctx}: site {id} cites unknown line {l}"));
                        }
                    }
                    if let Some(l) = site.alloc.as_ref().and_then(|a| a.line) {
                        if !frontend_lines.contains(&l) {
                            failures.push(format!("{ctx}: site {id} cites unknown alloc line {l}"));
                        }
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} provenance violations:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

// ---------------------------------------------------------------------------
// Bytecode backend: structural invariants of compiled modules
// ---------------------------------------------------------------------------

/// Bytecode modules compiled from every corpus program × mechanism. The
/// closure receives the program name, the configuration label, and the
/// compiled module.
fn for_each_corpus_bytecode(mut f: impl FnMut(&str, &str, &std::rc::Rc<memvm::BcModule>)) {
    use memvm::VmBackend;
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    let vm_config = VmConfig { backend: VmBackend::Bytecode, ..VmConfig::default() };
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(path).unwrap();
        let Ok(module) = cfront::compile_named(&src, &name) else { continue };
        let mut builds = vec![(
            "baseline".to_string(),
            compile_baseline(module.clone(), BuildOptions::default()),
        )];
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            builds.push((
                mech.name().to_string(),
                compile(module.clone(), &MiConfig::new(mech), BuildOptions::default()),
            ));
        }
        for (cfg, prog) in builds {
            let mut vm = prog.make_vm(vm_config).unwrap_or_else(|t| panic!("{name} [{cfg}]: {t}"));
            f(&name, &cfg, &vm.bytecode());
        }
    }
}

/// `disassemble → parse → disassemble` is a fixpoint for every compiled
/// corpus module, and the parsed module still validates. (Host-function
/// snapshots are not part of the textual format, so the round trip is
/// over the structural content: functions, opcodes, pools, edges.)
#[test]
fn bytecode_disassembly_round_trips() {
    for_each_corpus_bytecode(|name, cfg, code| {
        let t1 = code.disassemble();
        let parsed = memvm::parse_bytecode(&t1)
            .unwrap_or_else(|e| panic!("{name} [{cfg}]: parse error: {e}\n{t1}"));
        let t2 = parsed.disassemble();
        assert_eq!(t1, t2, "{name} [{cfg}]: disassembly is not a fixpoint");
        parsed.validate().unwrap_or_else(|e| panic!("{name} [{cfg}]: reparse invalid: {e}"));
    });
}

/// Every operand register named by any opcode (sources, destinations,
/// phi moves) stays within the function's declared frame size — the
/// property `BcModule::validate` enforces, checked here over the whole
/// corpus so a register-allocation bug cannot ship silently.
#[test]
fn bytecode_registers_stay_within_declared_frames() {
    for_each_corpus_bytecode(|name, cfg, code| {
        code.validate().unwrap_or_else(|e| panic!("{name} [{cfg}]: {e}"));
        for bf in code.funcs.iter().flatten() {
            assert!(
                bf.nparams <= bf.nregs,
                "{name} [{cfg}] @{}: {} params in a {}-register frame",
                bf.name,
                bf.nparams,
                bf.nregs
            );
            assert_eq!(bf.ops.len(), bf.locs.len(), "{name} [{cfg}] @{}: locs", bf.name);
        }
    });
}

/// Every specialized check opcode carries a site ID that indexes the
/// source module's `check_sites` table (or the explicit no-site
/// sentinel) — the bytecode analogue of
/// [`corpus_srclocs_and_site_ids_survive_the_pipeline`].
#[test]
fn bytecode_check_opcodes_cite_real_sites() {
    use memvm::bytecode::{Op, NO_SITE};
    let mut checks_seen = 0u64;
    for_each_corpus_bytecode(|name, cfg, code| {
        for bf in code.funcs.iter().flatten() {
            for op in &bf.ops {
                let co = match op {
                    Op::SbCheck(co) | Op::LfCheck(co) | Op::RzCheck(co) | Op::LfInvariant(co) => co,
                    _ => continue,
                };
                checks_seen += 1;
                assert!(
                    co.site == NO_SITE || (co.site as usize) < code.nsites,
                    "{name} [{cfg}] @{}: check cites site {} of {}",
                    bf.name,
                    co.site,
                    code.nsites
                );
            }
        }
    });
    assert!(checks_seen > 0, "no check opcodes compiled from the corpus");
}

#[test]
fn cost_categories_sum_to_total() {
    for name in ["186crafty", "183equake", "197parser"] {
        let b = cbench::by_name(name).unwrap();
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let out = cbench::run(&b, &MiConfig::new(mech), BuildOptions::default()).unwrap();
            let s = &out.exec.stats;
            assert_eq!(
                s.cost_total,
                s.cost_app + s.cost_checks + s.cost_metadata + s.cost_allocator + s.cost_other,
                "{name}/{mech:?}: category split diverged from the total"
            );
        }
    }
}
