//! Property-based tests over the whole stack.

use proptest::prelude::*;

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::VmConfig;
use mir::pipeline::{ExtensionPoint, OptLevel};

// ---------------------------------------------------------------------------
// Low-fat layout: encode/decode round trips
// ---------------------------------------------------------------------------

proptest! {
    /// For any allocation the low-fat heap hands out, every interior pointer
    /// decodes back to the object base and class size.
    #[test]
    fn lowfat_base_recovery_roundtrip(sizes in proptest::collection::vec(1u64..100_000, 1..40)) {
        let mut heap = lowfat::LowFatHeap::new();
        for size in sizes {
            let a = heap.alloc(size).unwrap();
            prop_assert!(lowfat::is_low_fat(a.addr));
            prop_assert_eq!(lowfat::size_of_ptr(a.addr), Some(a.class_size));
            // Interior pointers, including one-past-the-requested-end.
            for off in [0, 1, size / 2, size.saturating_sub(1), size] {
                prop_assert_eq!(lowfat::base_of(a.addr + off), a.addr, "offset {}", off);
            }
        }
    }

    /// The class chosen for a request always fits it plus the padding byte,
    /// and is minimal.
    #[test]
    fn lowfat_class_fits_and_is_minimal(size in 0u64..((1 << 30) - 1)) {
        let class = lowfat::class_for_request(size).unwrap();
        let cs = lowfat::alloc_size(class);
        prop_assert!(cs > size);
        if class > 1 {
            prop_assert!(lowfat::alloc_size(class - 1) < size + 1);
        }
    }

    /// Random alloc/free interleavings never produce overlapping live
    /// objects.
    #[test]
    fn lowfat_no_overlap(ops in proptest::collection::vec((0u64..5000, proptest::bool::ANY), 1..80)) {
        let mut heap = lowfat::LowFatHeap::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let (addr, _) = live.swap_remove(0);
                heap.free(addr);
            } else if let Some(a) = heap.alloc(size) {
                for &(b, bs) in &live {
                    prop_assert!(a.addr + a.class_size <= b || b + bs <= a.addr,
                        "overlap: {:#x}+{} vs {:#x}+{}", a.addr, a.class_size, b, bs);
                }
                live.push((a.addr, a.class_size));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SoftBound metadata structures vs. reference models
// ---------------------------------------------------------------------------

proptest! {
    /// The two-level trie behaves exactly like a flat map over 8-byte slots.
    #[test]
    fn trie_matches_model(ops in proptest::collection::vec(
        (0u64..1_000_000, 0u64..1000, 0u64..1000), 1..200))
    {
        use softbound_rt::{Bounds, MetadataTrie};
        let mut trie = MetadataTrie::new();
        let mut model = std::collections::HashMap::new();
        for (addr, base, extent) in ops {
            let b = Bounds { base, bound: base + extent };
            trie.set(addr, b);
            model.insert(addr >> 3, b);
        }
        for (&slot, &b) in &model {
            prop_assert_eq!(trie.get(slot << 3), b);
            prop_assert_eq!(trie.get((slot << 3) + 7), b);
        }
    }

    /// `Bounds::allows` is equivalent to interval containment.
    #[test]
    fn bounds_allow_is_interval_containment(
        base in 0u64..10_000, extent in 0u64..10_000,
        ptr in 0u64..30_000, width in 1u64..64)
    {
        let b = softbound_rt::Bounds { base, bound: base + extent };
        let expect = ptr >= base && ptr + width <= base + extent;
        prop_assert_eq!(b.allows(ptr, width), expect);
    }
}

// ---------------------------------------------------------------------------
// IR text format: print → parse → print is a fixpoint
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Random straight-line arithmetic programs round-trip through the
    /// textual format.
    #[test]
    fn printer_parser_fixpoint(ops in proptest::collection::vec((0usize..5, -100i64..100), 1..30)) {
        use mir::builder::ModuleBuilder;
        use mir::instr::{BinOp, Operand};
        use mir::types::Type;
        let mut mb = ModuleBuilder::new("prop");
        let mut fb = mb.function("main", vec![], Type::I64);
        let mut vals: Vec<Operand> = vec![Operand::i64(1)];
        for (op, c) in ops {
            let last = vals.last().unwrap().clone();
            let k = Operand::i64(c);
            let v = match op {
                0 => fb.add(Type::I64, last, k),
                1 => fb.sub(Type::I64, last, k),
                2 => fb.mul(Type::I64, last, k),
                3 => fb.bin(BinOp::Xor, Type::I64, last, k),
                _ => fb.bin(BinOp::And, Type::I64, last, k),
            };
            vals.push(v);
        }
        let last = vals.last().unwrap().clone();
        fb.ret(Some(last));
        fb.finish();
        let m = mb.finish();
        let t1 = mir::printer::print_module(&m);
        let m2 = mir::parser::parse_module(&t1).unwrap();
        let t2 = mir::printer::print_module(&m2);
        prop_assert_eq!(&t1, &t2);
        mir::verifier::verify_module(&m2).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Whole-stack semantic preservation on generated memory-safe programs
// ---------------------------------------------------------------------------

/// Operations of a random (but always memory-safe) generated C program.
#[derive(Clone, Debug)]
enum Op {
    /// `x = x <op> k`
    Arith(u8, i64),
    /// `a[i % N] = x`
    Store(u64),
    /// `x = x + a[i % N]`
    Load(u64),
    /// `x += loop_sum(j)` — exercises calls
    Call(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, -50i64..50).prop_map(|(o, k)| Op::Arith(o, k)),
        (0u64..64).prop_map(Op::Store),
        (0u64..64).prop_map(Op::Load),
        (1u64..8).prop_map(Op::Call),
    ]
}

fn generate_c(ops: &[Op]) -> String {
    let mut body = String::new();
    for op in ops {
        match op {
            Op::Arith(o, k) => {
                let sym = match o {
                    0 => "+",
                    1 => "-",
                    2 => "*",
                    _ => "^",
                };
                body.push_str(&format!("    x = x {sym} {k};\n"));
            }
            Op::Store(i) => body.push_str(&format!("    a[{i}] = x;\n")),
            Op::Load(i) => body.push_str(&format!("    x = x + a[{i}];\n")),
            Op::Call(j) => body.push_str(&format!("    x = x + loop_sum({j});\n")),
        }
    }
    format!(
        r#"
        long loop_sum(long n) {{
            long s = 0;
            for (long i = 0; i < n; i += 1) s += i * 3;
            return s;
        }}
        long a[64];
        long main(void) {{
            long x = 1;
        {body}
            long chk = 0;
            for (long i = 0; i < 64; i += 1) chk += a[i];
            print_i64(x);
            print_i64(chk);
            return 0;
        }}
    "#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// For any generated memory-safe program, O0, O3, and both fully
    /// instrumented builds print exactly the same output.
    #[test]
    fn semantics_preserved_across_all_configs(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let src = generate_c(&ops);
        let module = cfront::compile(&src).unwrap();

        let o0 = compile_baseline(
            module.clone(),
            BuildOptions { opt: OptLevel::O0, ep: ExtensionPoint::VectorizerStart },
        )
        .run_main(VmConfig::default())
        .unwrap();
        let o3 = compile_baseline(module.clone(), BuildOptions::default())
            .run_main(VmConfig::default())
            .unwrap();
        prop_assert_eq!(&o0.output, &o3.output, "O0 vs O3");

        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            for ep in ExtensionPoint::ALL {
                let out = compile(
                    module.clone(),
                    &MiConfig::new(mech),
                    BuildOptions { opt: OptLevel::O3, ep },
                )
                .run_main(VmConfig::default())
                .unwrap_or_else(|t| panic!("{mech:?}@{}: {t}\n{src}", ep.name()));
                prop_assert_eq!(&out.output, &o3.output, "{:?}@{}", mech, ep.name());
            }
        }
    }

    /// Dominance-based check elimination never changes the verdict: a
    /// *buggy* generated program (one index pushed out of bounds) is caught
    /// identically with and without the optimization.
    #[test]
    fn check_elimination_preserves_verdicts(
        ops in proptest::collection::vec(op_strategy(), 1..15),
        oob_index in 64u64..100)
    {
        let mut src = generate_c(&ops);
        // Inject one out-of-bounds store before the checksum loop.
        src = src.replace("    long chk = 0;", &format!("    a[{oob_index}] = x;\n    long chk = 0;"));
        let module = cfront::compile(&src).unwrap();
        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            let with_opt = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
                .run_main(VmConfig::default());
            let without = compile(module.clone(), &MiConfig::unoptimized(mech), BuildOptions::default())
                .run_main(VmConfig::default());
            prop_assert_eq!(
                with_opt.is_err(),
                without.is_err(),
                "{:?}: opt {:?} vs unopt {:?}",
                mech,
                with_opt,
                without
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Control-flow-heavy generated programs
// ---------------------------------------------------------------------------

/// Statements for a structured generator: arithmetic, guarded branches, and
/// bounded loops, all over one array and one scalar — still always
/// memory-safe.
#[derive(Clone, Debug)]
enum StmtG {
    Arith(u8, i64),
    ArrayOp(u64, bool),
    If(i64, Vec<StmtG>, Vec<StmtG>),
    Loop(u64, Vec<StmtG>),
}

fn stmt_strategy() -> impl Strategy<Value = StmtG> {
    let leaf = prop_oneof![
        (0u8..4, -9i64..9).prop_map(|(o, k)| StmtG::Arith(o, k)),
        (0u64..64, proptest::bool::ANY).prop_map(|(i, w)| StmtG::ArrayOp(i, w)),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            (
                -20i64..20,
                proptest::collection::vec(inner.clone(), 1..4),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(c, t, e)| StmtG::If(c, t, e)),
            (1u64..6, proptest::collection::vec(inner, 1..4)).prop_map(|(n, b)| StmtG::Loop(n, b)),
        ]
    })
}

fn emit_stmts(out: &mut String, stmts: &[StmtG], depth: usize) {
    let pad = "    ".repeat(depth + 1);
    for s in stmts {
        match s {
            StmtG::Arith(o, k) => {
                let sym = ["+", "-", "*", "^"][*o as usize % 4];
                out.push_str(&format!("{pad}x = x {sym} {k};\n"));
            }
            StmtG::ArrayOp(i, true) => out.push_str(&format!("{pad}a[{i}] = x & 1023;\n")),
            StmtG::ArrayOp(i, false) => out.push_str(&format!("{pad}x = x + a[{i}];\n")),
            StmtG::If(c, t, e) => {
                out.push_str(&format!("{pad}if ((x & 31) > {c}) {{\n"));
                emit_stmts(out, t, depth + 1);
                if e.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    emit_stmts(out, e, depth + 1);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            StmtG::Loop(n, b) => {
                out.push_str(&format!("{pad}for (long i{depth} = 0; i{depth} < {n}; i{depth} += 1) {{\n"));
                emit_stmts(out, b, depth + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Control-flow-heavy generated programs behave identically across O0,
    /// O3, and all three mechanisms.
    #[test]
    fn control_flow_semantics_preserved(stmts in proptest::collection::vec(stmt_strategy(), 1..8)) {
        let mut body = String::new();
        emit_stmts(&mut body, &stmts, 0);
        let src = format!(
            r#"
            long a[64];
            long main(void) {{
                long x = 7;
            {body}
                long chk = x;
                for (long i = 0; i < 64; i += 1) chk += a[i] * (i + 1);
                print_i64(chk);
                return 0;
            }}
        "#
        );
        let module = cfront::compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let o0 = compile_baseline(
            module.clone(),
            BuildOptions { opt: OptLevel::O0, ep: ExtensionPoint::VectorizerStart },
        )
        .run_main(VmConfig::default())
        .unwrap();
        let o3 = compile_baseline(module.clone(), BuildOptions::default())
            .run_main(VmConfig::default())
            .unwrap();
        prop_assert_eq!(&o0.output, &o3.output);
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let out = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
                .run_main(VmConfig::default())
                .unwrap_or_else(|t| panic!("{mech:?}: {t}\n{src}"));
            prop_assert_eq!(&out.output, &o3.output, "{:?}", mech);
        }
    }
}

// ---------------------------------------------------------------------------
// Robustness: parsers never panic on garbage
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// The IR parser returns an error (never panics) on arbitrary input.
    #[test]
    fn ir_parser_never_panics(input in "\\PC*") {
        let _ = mir::parser::parse_module(&input);
    }

    /// The C frontend returns an error (never panics) on arbitrary input.
    #[test]
    fn cfront_never_panics(input in "\\PC*") {
        let _ = cfront::compile(&input);
    }

    /// ... including near-miss C-looking inputs built from real tokens.
    #[test]
    fn cfront_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            proptest::sample::select(vec![
                "long", "int", "char", "struct", "if", "else", "while", "for",
                "return", "break", "(", ")", "{", "}", "[", "]", ";", ",", "*",
                "&", "=", "+", "-", "x", "y", "main", "42", "->", ".", "sizeof",
            ]),
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = cfront::compile(&src);
    }
}

// ---------------------------------------------------------------------------
// Cost accounting: the category split always sums to the total
// ---------------------------------------------------------------------------

#[test]
fn cost_categories_sum_to_total() {
    for name in ["186crafty", "183equake", "197parser"] {
        let b = cbench::by_name(name).unwrap();
        for mech in [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone] {
            let out = cbench::run(&b, &MiConfig::new(mech), BuildOptions::default()).unwrap();
            let s = &out.exec.stats;
            assert_eq!(
                s.cost_total,
                s.cost_app + s.cost_checks + s.cost_metadata + s.cost_allocator + s.cost_other,
                "{name}/{mech:?}: category split diverged from the total"
            );
        }
    }
}
