//! Cross-crate integration tests: C source → optimizing pipeline →
//! instrumentation (every mechanism × mode × extension point) → execution.

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig, MiMode};
use memvm::interp::Trap;
use memvm::VmConfig;
use mir::pipeline::{ExtensionPoint, OptLevel};

fn all_build_options() -> Vec<BuildOptions> {
    let mut v = vec![BuildOptions { opt: OptLevel::O0, ep: ExtensionPoint::VectorizerStart }];
    for ep in ExtensionPoint::ALL {
        v.push(BuildOptions { opt: OptLevel::O3, ep });
    }
    v
}

fn all_configs() -> Vec<MiConfig> {
    let mut v = vec![];
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        v.push(MiConfig::new(mech));
        v.push(MiConfig::unoptimized(mech));
        v.push(MiConfig::invariants_only(mech));
        let mut wrappers = MiConfig::new(mech);
        wrappers.sb_wrapper_checks = true;
        v.push(wrappers);
    }
    v
}

/// A memory-safe program touching heap, stack, globals, structs, memcpy,
/// pointer stores, cross-function pointers, and recursion.
const KITCHEN_SINK: &str = r#"
    struct item { long key; long *slot; };
    long table[32];

    long hash(long x) { return ((x * 2654435761) >> 8) & 31; }

    long insert(struct item *it, long k) {
        it->key = k;
        it->slot = &table[hash(k)];
        *(it->slot) = k;
        return *(it->slot);
    }

    long walk(long *a, long n) {
        if (n <= 0) return 0;
        return a[n - 1] + walk(a, n - 1);
    }

    long main(void) {
        struct item items[8];
        long acc = 0;
        for (long i = 0; i < 8; i += 1) acc += insert(&items[i], i * 37);
        long *heap = (long*)malloc(16 * sizeof(long));
        for (long i = 0; i < 16; i += 1) heap[i] = i;
        long *copy = (long*)malloc(16 * sizeof(long));
        for (long i = 0; i < 16; i += 1) copy[i] = heap[i];
        acc += walk(copy, 16);
        print_i64(acc);
        return acc;
    }
"#;

#[test]
fn kitchen_sink_behaviour_is_configuration_independent() {
    let module = cfront::compile(KITCHEN_SINK).unwrap();
    let reference = compile_baseline(module.clone(), BuildOptions::default())
        .run_main(VmConfig::default())
        .expect("baseline runs");
    let expected = reference.ret.unwrap();

    for opts in all_build_options() {
        // Baseline at this option set.
        let base = compile_baseline(module.clone(), opts).run_main(VmConfig::default()).unwrap();
        assert_eq!(base.ret.unwrap(), expected, "baseline {opts:?}");
        assert_eq!(base.output, reference.output);

        for cfg in all_configs() {
            let out = compile(module.clone(), &cfg, opts)
                .run_main(VmConfig::default())
                .unwrap_or_else(|t| panic!("{cfg:?} @ {opts:?}: {t}"));
            assert_eq!(out.ret.unwrap(), expected, "{cfg:?} @ {opts:?}");
            assert_eq!(out.output, reference.output, "{cfg:?} @ {opts:?}");
        }
    }
}

/// Violation detection matrix: kind of allocation × read/write.
fn violation_program(region: &str, is_write: bool) -> String {
    let access = if is_write { "a[12] = 1;" } else { "sink += a[12];" };
    let (decl, init) = match region {
        "heap" => ("long *a = (long*)malloc(8 * sizeof(long));", ""),
        "stack" => ("long a[8];", ""),
        "global" => ("", ""),
        _ => unreachable!(),
    };
    let global_decl = if region == "global" { "long a[8];" } else { "" };
    format!(
        r#"
        {global_decl}
        long sink = 0;
        long main(void) {{
            {decl}
            {init}
            for (long i = 0; i < 8; i += 1) a[i] = i;
            {access}
            return sink;
        }}
    "#
    )
}

#[test]
fn detection_matrix() {
    for region in ["heap", "stack", "global"] {
        for is_write in [false, true] {
            let src = violation_program(region, is_write);
            let module = cfront::compile(&src).unwrap();
            // Baseline: silent corruption (the access stays on mapped pages).
            let base = compile_baseline(module.clone(), BuildOptions::default())
                .run_main(VmConfig::default());
            assert!(base.is_ok(), "{region}/{is_write}: baseline should not trap: {base:?}");
            for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
                let r = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
                    .run_main(VmConfig::default());
                // a[12] on an 8-element (64-byte) array: offset 96..104 is
                // outside even the 128-byte padded low-fat object? No —
                // offset 96 is *inside* 128, so Low-Fat misses it. Index 17
                // would be outside. Both must catch writes beyond padding;
                // here SoftBound always catches, Low-Fat only past padding.
                match (mech, &r) {
                    (Mechanism::SoftBound, Err(Trap::MemSafetyViolation { .. })) => {}
                    (Mechanism::SoftBound, other) => {
                        panic!("{region}/{is_write}: softbound missed: {other:?}")
                    }
                    (Mechanism::LowFat, Ok(_)) => {} // within padding: by-design miss
                    (Mechanism::LowFat, Err(Trap::MemSafetyViolation { .. })) => {}
                    (Mechanism::LowFat, other) => {
                        panic!("{region}/{is_write}: lowfat unexpected: {other:?}")
                    }
                    (Mechanism::RedZone, _) => unreachable!("not part of this matrix"),
                }
            }
        }
    }
}

#[test]
fn lowfat_catches_past_padding_in_all_regions() {
    for region in ["heap", "stack", "global"] {
        // 8 longs = 64 B → 128-byte class; index 17 = offset 136: outside.
        let src = violation_program(region, true).replace("a[12]", "a[17]");
        let module = cfront::compile(&src).unwrap();
        let r = compile(module, &MiConfig::new(Mechanism::LowFat), BuildOptions::default())
            .run_main(VmConfig::default());
        assert!(
            matches!(r, Err(Trap::MemSafetyViolation { ref mechanism, .. }) if mechanism == "lowfat"),
            "{region}: {r:?}"
        );
    }
}

#[test]
fn underflow_detected() {
    let src = r#"
        long main(void) {
            long *a = (long*)malloc(8 * sizeof(long));
            long *p = a + 4;
            return p[-9];   /* before the allocation */
        }
    "#;
    let module = cfront::compile(src).unwrap();
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let r = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
            .run_main(VmConfig::default());
        assert!(
            matches!(r, Err(Trap::MemSafetyViolation { .. })),
            "{mech:?} missed the underflow: {r:?}"
        );
    }
}

#[test]
fn geninvariants_mode_never_reports_deref_violations() {
    // Metadata-only instrumentation must not abort even on buggy programs.
    let src = violation_program("heap", true);
    let module = cfront::compile(&src).unwrap();
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let mut cfg = MiConfig::new(mech);
        cfg.mode = MiMode::GenInvariantsOnly;
        let r =
            compile(module.clone(), &cfg, BuildOptions::default()).run_main(VmConfig::default());
        assert!(r.is_ok(), "{mech:?}: {r:?}");
    }
}

#[test]
fn one_past_the_end_pointer_is_legal() {
    // Computing &a[n] (one past the end) and comparing against it is legal
    // C; neither mechanism may report it — Low-Fat relies on its one-byte
    // padding for exactly this case (footnote 3 of the paper).
    let src = r#"
        long main(void) {
            long *a = (long*)malloc(8 * sizeof(long));
            long *end = a + 8;
            long sum = 0;
            for (long *p = a; p < end; p += 1) { *p = 1; sum += *p; }
            return sum;
        }
    "#;
    let module = cfront::compile(src).unwrap();
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let r = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
            .run_main(VmConfig::default());
        assert_eq!(r.unwrap().ret.unwrap().as_int(), 8, "{mech:?}");
    }
}

#[test]
fn free_and_reuse_stays_safe() {
    let src = r#"
        long main(void) {
            long total = 0;
            for (long round = 0; round < 20; round += 1) {
                long *p = (long*)malloc(24);
                p[0] = round; p[1] = round * 2; p[2] = round * 3;
                total += p[0] + p[1] + p[2];
                free(p);
            }
            return total;
        }
    "#;
    let module = cfront::compile(src).unwrap();
    let expected = compile_baseline(module.clone(), BuildOptions::default())
        .run_main(VmConfig::default())
        .unwrap()
        .ret
        .unwrap();
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        let r = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
            .run_main(VmConfig::default())
            .unwrap();
        assert_eq!(r.ret.unwrap(), expected, "{mech:?}");
    }
}

#[test]
fn instrumented_ir_always_verifies() {
    // Structural check across the full configuration matrix for a couple of
    // benchmark programs: the instrumented module must satisfy the verifier.
    for name in ["197parser", "183equake"] {
        let b = cbench::by_name(name).unwrap();
        for opts in all_build_options() {
            for cfg in all_configs() {
                let module = cfront::compile(b.source).unwrap();
                let prog = compile(module, &cfg, opts);
                mir::verifier::verify_module(&prog.module)
                    .unwrap_or_else(|e| panic!("{name} {cfg:?} @ {opts:?}: {e}"));
            }
        }
    }
}

#[test]
fn wrapper_checks_catch_overflowing_memcpy() {
    // Figure 6's check_abort calls: with wrapper checks enabled, a memcpy
    // whose length exceeds the destination object is reported even though
    // the raw copy would stay on mapped pages.
    let src = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          %dst = call ptr @malloc(i64 16)
          %src = call ptr @malloc(i64 64)
          memcpy %dst, %src, i64 64
          ret i64 0
        }
    "#;
    let module = mir::parser::parse_module(src).unwrap();
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        // Paper basis: wrapper checks disabled → runs through.
        let off = compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
            .run_main(VmConfig::default());
        assert!(off.is_ok(), "{mech:?} without wrapper checks: {off:?}");
        // Enabled: the destination range check fires.
        let mut cfg = MiConfig::new(mech);
        cfg.sb_wrapper_checks = true;
        let on =
            compile(module.clone(), &cfg, BuildOptions::default()).run_main(VmConfig::default());
        assert!(
            matches!(on, Err(Trap::MemSafetyViolation { .. })),
            "{mech:?} with wrapper checks: {on:?}"
        );
    }
}
