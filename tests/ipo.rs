//! Property suite for interprocedural check elision (`mir::analysis::ipo`
//! + `meminstrument::opt::elide_proven_checks`).
//!
//! The differential ladder (`tests/differential.rs`) shows elision never
//! changes observable behaviour. This suite goes after the *proofs*
//! themselves: every [`meminstrument::ElisionRecord`] claims the checked
//! pointer stays within a byte-offset range of an allocation of some
//! minimum extent — so we rebuild the same program *without* elision,
//! run it on the walker VM with the SoftBound runtime's per-access
//! bounds log installed, and demand the metadata the runtime actually
//! enforced at each elided site confirms the claim.
//!
//! Alongside it live the two remaining IPO acceptance gates: a 500-case
//! seed-0 fuzz sweep (IPO is on in the oracle's default matrix, so every
//! predicted trap must still fire through elision), and the pinned
//! deterministic tie-breaking of the check-site profile.

use std::cell::RefCell;
use std::rc::Rc;

use bench::job::{self, JobAction, JobCtl, JobSpec, SourceRef};
use bench::json::Json;
use bench::store::ArtifactStore;
use meminstrument::{Instrument, Mechanism, OptConfig, SbAccessLog};
use memvm::{VmBackend, VmConfig};

/// Elision claims grouped by `(func, line, width)` site key: each entry
/// is a claimed `(offset range, minimum extent)` fact.
type ClaimMap = std::collections::BTreeMap<(String, Option<u32>, u64), Vec<((i64, i64), u64)>>;

/// The memory-safe half of `tests/corpus/` (same CHECK-line convention as
/// the differential suite).
fn safe_corpus() -> Vec<(String, String)> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let source = std::fs::read_to_string(p).unwrap();
            let unsafe_prog = source.lines().any(|l| {
                let l = l.trim();
                l.starts_with("// CHECK ") && (l.contains("violation") || l.contains("segfault"))
            });
            (!unsafe_prog).then(|| (p.file_name().unwrap().to_string_lossy().into_owned(), source))
        })
        .collect()
}

/// Every elision proof must agree with the ground-truth bounds the
/// SoftBound runtime consulted at that site. For each corpus program
/// whose full build elides checks, the `-noipo` twin (same pipeline,
/// checks intact) runs on the walker VM with the per-access log; logged
/// accesses are joined to elision records by `(func, line, width)` and
/// each must satisfy one of the claimed `(offset range, minimum extent)`
/// facts. Keys that still have a live check site in the full build are
/// skipped as ambiguous — a kept check at the same source position says
/// nothing about the elided one.
#[test]
fn elision_proofs_hold_against_walker_bounds_log() {
    let mut programs_verified = 0usize;
    let mut accesses_verified = 0usize;
    for (name, source) in safe_corpus() {
        if programs_verified >= 5 {
            break;
        }
        let module = cfront::compile_named(&source, &name)
            .unwrap_or_else(|e| panic!("{name}: frontend error: {e}"));
        let full = Instrument::mechanism(Mechanism::SoftBound).compile(module.clone());
        if full.elisions.is_empty() {
            continue;
        }
        // Group claims by site key; drop keys a surviving check shadows.
        let mut claims = ClaimMap::new();
        for e in &full.elisions {
            claims.entry((e.func.clone(), e.line, e.width)).or_default().push((e.off, e.size_min));
        }
        claims.retain(|(func, line, width), _| {
            !full
                .module
                .check_sites
                .iter()
                .any(|cs| cs.func == *func && cs.line == *line && cs.width == Some(*width))
        });
        if claims.is_empty() {
            continue;
        }

        let noipo =
            Instrument::mechanism(Mechanism::SoftBound).opt(OptConfig::no_ipo()).compile(module);
        let log: SbAccessLog = Rc::new(RefCell::new(Vec::new()));
        let mut vm = noipo
            .make_vm_sb_logged(
                VmConfig { backend: VmBackend::Walk, ..VmConfig::default() },
                Rc::clone(&log),
            )
            .unwrap_or_else(|t| panic!("{name}: vm setup trapped: {t}"));
        vm.run("main", &[]).unwrap_or_else(|t| panic!("{name}: safe program trapped: {t}"));

        let mut matched_here = 0usize;
        for a in log.borrow().iter() {
            let Some(func) = &a.func else { continue };
            let Some(facts) = claims.get(&(func.clone(), a.line, a.width)) else { continue };
            assert_ne!(
                a.bound,
                u64::MAX,
                "{name}: elided site {func}:{:?} ran under wide bounds",
                a.line
            );
            let off = a.ptr as i128 - a.base as i128;
            let extent = a.bound as i128 - a.base as i128;
            assert!(
                facts.iter().any(|((lo, hi), size_min)| off >= *lo as i128
                    && off <= *hi as i128
                    && extent >= *size_min as i128),
                "{name}: access at {func}:{:?} (offset {off}, extent {extent}) \
                 satisfies none of the elision facts {facts:?}",
                a.line
            );
            matched_here += 1;
        }
        if matched_here > 0 {
            programs_verified += 1;
            accesses_verified += matched_here;
        }
    }
    assert!(
        programs_verified >= 5,
        "only {programs_verified} corpus programs produced runtime-verifiable elisions"
    );
    assert!(accesses_verified > 0);
}

/// Zero fuzz regressions with elision in the loop: the oracle's default
/// matrix runs full optimization (IPO included), so 500 clean seed-0
/// cases mean every predicted trap still fires and every safe program
/// still prints identical bytes with summaries applied.
#[test]
#[cfg_attr(debug_assertions, ignore = "500-case sweep is slow without optimizations")]
fn fuzz_500_seed0_is_clean_with_elision() {
    let report = fuzz::fuzz(&fuzz::FuzzOpts { seed: 0, cases: 500, ..fuzz::FuzzOpts::default() });
    assert_eq!(report.cases, 500);
    assert!(report.ok(), "oracle violations on seed 0:\n{}", report.render());
}

/// `mi profile --top N` tie-breaking is part of the deterministic-output
/// contract: equal (cost, hits) sites rank by ascending site id, so two
/// runs — and two machines — render byte-identical documents. The
/// program makes ties inevitable: two distinct arrays, each accessed the
/// same number of times at the same width, under the unoptimized config
/// so every access keeps its own check.
#[test]
fn profile_ranking_breaks_ties_by_site_id() {
    let src = r#"
        long a[4];
        long b[4];
        long main(void) {
            long s = 0;
            for (long i = 0; i < 4; i += 1) {
                s += a[i];
                s += b[i];
            }
            print_i64(s);
            return 0;
        }
    "#;
    let spec = JobSpec {
        source: SourceRef::Inline { name: "ties.c".into(), text: src.into() },
        config: "softbound-unopt@O0@VectorizerStart".parse().unwrap(),
        action: JobAction::Profile { top: 32 },
    };
    let store = ArtifactStore::default();
    let ctl = JobCtl { deadline: None, interrupt: None };
    let run = || {
        job::execute(&spec, &store, VmConfig::default(), &ctl).expect("profile job").result_json()
    };
    let first = run();
    assert_eq!(first, run(), "profile document must be deterministic");

    let v = Json::parse(&first).expect("result parses");
    let doc = v.get("profile").and_then(Json::as_str).expect("profile string");
    let profile = Json::parse(doc).expect("profile parses");
    let sites = match profile.get("sites") {
        Some(Json::Arr(sites)) => sites,
        other => panic!("sites array missing: {other:?}"),
    };
    let ranked: Vec<(u64, u64, u64)> = sites
        .iter()
        .map(|s| {
            (
                s.get("cost").and_then(Json::as_u64).unwrap(),
                s.get("hits").and_then(Json::as_u64).unwrap(),
                s.get("site").and_then(Json::as_u64).unwrap(),
            )
        })
        .collect();
    // The ranking comparator, pinned: cost desc, hits desc, site id asc.
    let mut ties = 0usize;
    for w in ranked.windows(2) {
        let ((c0, h0, s0), (c1, h1, s1)) = (w[0], w[1]);
        assert!(
            (c0, h0) > (c1, h1) || ((c0, h0) == (c1, h1) && s0 < s1),
            "ranking violates (cost desc, hits desc, site asc): {ranked:?}"
        );
        if (c0, h0) == (c1, h1) {
            ties += 1;
        }
    }
    assert!(ties > 0, "program produced no tied sites; ranking ties untested: {ranked:?}");
}
