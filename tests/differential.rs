//! Differential testing over `tests/corpus/` through the `evald` driver.
//!
//! The corpus harness (`tests/corpus.rs`) asserts per-configuration
//! *verdicts*. This suite asserts something stronger: semantics
//! preservation. For every corpus program, the driver runs a matrix of
//!
//! * baseline at `O0` and `O3`,
//! * SoftBound and Low-Fat at `O0` and at all three `O3` extension points,
//!
//! off a single cached frontend module per program, and demands that every
//! configuration under which a memory-safe program completes produces
//! byte-identical printed output and the same return value. Instrumented
//! and optimized builds may only *detect more*, never *compute different
//! answers*.
//!
//! Programs with expected violations are still swept across the full
//! matrix (the driver must never panic on them — traps become cells), but
//! their outputs are exempt from the byte-comparison: a program with
//! undefined behaviour has no single correct output across optimization
//! levels.

use bench::driver::{Driver, JobConfig, Program};
use meminstrument::{Mechanism, OptConfig};
use mir::pipeline::{ExtensionPoint, OptLevel};

/// The differential matrix: 2 baselines + 2 mechanisms × (O0 + 3×O3) = 10
/// configurations per program.
fn differential_configs() -> Vec<JobConfig> {
    let mut configs = vec![JobConfig::baseline().opt_level(OptLevel::O0), JobConfig::baseline()];
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        configs.push(JobConfig::mechanism(mech).opt_level(OptLevel::O0));
        for ep in ExtensionPoint::ALL {
            configs.push(JobConfig::mechanism(mech).at(ep));
        }
    }
    configs
}

/// A corpus program is "safe" iff no CHECK line expects a violation or a
/// segfault under any configuration.
fn is_safe(src: &str) -> bool {
    !src.lines().any(|l| {
        let l = l.trim();
        l.starts_with("// CHECK ") && (l.contains("violation") || l.contains("segfault"))
    })
}

fn corpus() -> Vec<(Program, bool)> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 30, "corpus shrank to {}", paths.len());
    paths
        .iter()
        .map(|p| {
            let source = std::fs::read_to_string(p).unwrap();
            let safe = is_safe(&source);
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (Program { name, source }, safe)
        })
        .collect()
}

#[test]
fn corpus_differential() {
    let programs = corpus();
    let configs = differential_configs();
    let n_configs = configs.len();
    let driver = Driver::new(programs.iter().map(|(p, _)| p.clone()).collect(), configs);
    let report = driver.run();

    // Full coverage: every corpus file × every configuration is a cell.
    assert_eq!(report.cells.len(), programs.len() * n_configs);
    // The frontend ran exactly once per corpus file.
    assert_eq!(report.cache.frontend_compiles, programs.len() as u64);

    let mut failures = vec![];
    for (prog, safe) in &programs {
        let cells: Vec<_> = report.cells.iter().filter(|c| c.program == prog.name).collect();
        assert_eq!(cells.len(), n_configs, "{}: missing cells", prog.name);
        if !safe {
            continue;
        }
        // Memory-safe program: every configuration must complete, and all
        // of them must agree byte-for-byte.
        let reference = match &cells[0].outcome {
            Ok(ok) => ok,
            Err(t) => {
                failures
                    .push(format!("{} [{}]: trapped: {}", prog.name, cells[0].config, t.message));
                continue;
            }
        };
        for cell in &cells[1..] {
            match &cell.outcome {
                Err(t) => {
                    failures
                        .push(format!("{} [{}]: trapped: {}", prog.name, cell.config, t.message));
                }
                Ok(ok) => {
                    if ok.output != reference.output {
                        failures.push(format!(
                            "{} [{}]: output diverges from [{}]:\n  {:?}\nvs\n  {:?}",
                            prog.name, cell.config, cells[0].config, ok.output, reference.output
                        ));
                    }
                    if ok.ret != reference.ret {
                        failures.push(format!(
                            "{} [{}]: ret {:?} != {:?} of [{}]",
                            prog.name, cell.config, ok.ret, reference.ret, cells[0].config
                        ));
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} differential mismatches:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}

/// §5.3 loop optimizations are refinements, not semantic changes: for every
/// memory-safe corpus program and both full-metadata mechanisms, the fully
/// optimized build (dominance + hoist + widen), the dominance-only build,
/// and the unoptimized build must produce byte-identical output, and their
/// dynamic check counts must be monotone non-increasing as optimizations
/// are added.
#[test]
fn corpus_loop_opts_preserve_semantics_and_reduce_checks() {
    let programs = corpus();
    // Per mechanism: [full opts, dominance only, no opts] — ordered from
    // most to least optimized.
    let ladders: Vec<(Mechanism, Vec<JobConfig>)> = [Mechanism::SoftBound, Mechanism::LowFat]
        .into_iter()
        .map(|mech| {
            (
                mech,
                vec![
                    JobConfig::mechanism(mech),
                    JobConfig::mechanism(mech).opt(OptConfig::no_loops()),
                    JobConfig::mechanism(mech).opt(OptConfig::none()),
                ],
            )
        })
        .collect();
    let configs: Vec<JobConfig> = ladders.iter().flat_map(|(_, l)| l.iter().cloned()).collect();
    let report =
        Driver::new(programs.iter().map(|(p, _)| p.clone()).collect(), configs.clone()).run();

    let mut failures = vec![];
    let mut helped = 0usize;
    for (prog, safe) in &programs {
        if !safe {
            continue;
        }
        for (mech, ladder) in &ladders {
            let cells: Vec<_> = ladder
                .iter()
                .map(|cfg| {
                    report
                        .get(&prog.name, cfg)
                        .unwrap_or_else(|| panic!("{}: missing cell for {}", prog.name, cfg))
                })
                .collect();
            let outs: Vec<_> = cells
                .iter()
                .map(|c| match &c.outcome {
                    Ok(ok) => ok,
                    Err(t) => {
                        panic!("{} [{}]: safe program trapped: {}", prog.name, c.config, t.message)
                    }
                })
                .collect();
            for (cell, ok) in cells.iter().zip(&outs).skip(1) {
                if ok.output != outs[0].output || ok.ret != outs[0].ret {
                    failures.push(format!(
                        "{} [{}]: output/ret diverges from [{}]",
                        prog.name, cell.config, cells[0].config
                    ));
                }
            }
            // checks_executed: full ≤ dominance-only ≤ unoptimized.
            let counts: Vec<u64> = outs.iter().map(|ok| ok.stats.checks_executed).collect();
            if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
                failures.push(format!(
                    "{} [{mech:?}]: checks_executed not monotone: full {} / no-loop {} / unopt {}",
                    prog.name, counts[0], counts[1], counts[2]
                ));
            }
            if counts[0] < counts[1] {
                helped += 1;
            }
            // Counter reconciliation: the full build reports its loop work.
            let instr = &outs[0].instr;
            if counts[0] < counts[1] && instr.checks_hoisted + instr.checks_widened == 0 {
                failures.push(format!(
                    "{} [{mech:?}]: dynamic checks dropped but no hoist/widen counted",
                    prog.name
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} loop-opt mismatches:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    // The optimization must actually fire somewhere in the corpus.
    assert!(helped >= 5, "loop opts reduced dynamic checks on only {helped} (program, mech) pairs");
}

/// Interprocedural elision is a refinement too: for every memory-safe
/// corpus program and all three mechanisms, the full build (loop opts +
/// IPO), the `-noipo` build (loop opts only), and the unoptimized build
/// must produce byte-identical output with monotone non-increasing
/// dynamic check counts — and wherever the dynamic count drops between
/// `-noipo` and full, the full build must account for it in its
/// `checks_elided_ipo` counter. Comparing full against `-noipo` (both
/// with loop opts on) isolates the benefit of summaries from the §5.3
/// loop optimizations.
#[test]
fn corpus_ipo_elision_preserves_semantics_and_reduces_checks() {
    let programs = corpus();
    // Per mechanism: [full opts, loop opts only (-noipo), no opts] —
    // ordered from most to least optimized.
    let ladders: Vec<(Mechanism, Vec<JobConfig>)> =
        [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone]
            .into_iter()
            .map(|mech| {
                (
                    mech,
                    vec![
                        JobConfig::mechanism(mech),
                        JobConfig::mechanism(mech).opt(OptConfig::no_ipo()),
                        JobConfig::mechanism(mech).opt(OptConfig::none()),
                    ],
                )
            })
            .collect();
    let configs: Vec<JobConfig> = ladders.iter().flat_map(|(_, l)| l.iter().cloned()).collect();
    let report =
        Driver::new(programs.iter().map(|(p, _)| p.clone()).collect(), configs.clone()).run();

    let mut failures = vec![];
    let mut helped = 0usize;
    for (prog, safe) in &programs {
        if !safe {
            continue;
        }
        for (mech, ladder) in &ladders {
            let cells: Vec<_> = ladder
                .iter()
                .map(|cfg| {
                    report
                        .get(&prog.name, cfg)
                        .unwrap_or_else(|| panic!("{}: missing cell for {}", prog.name, cfg))
                })
                .collect();
            let outs: Vec<_> = cells
                .iter()
                .map(|c| match &c.outcome {
                    Ok(ok) => ok,
                    Err(t) => {
                        panic!("{} [{}]: safe program trapped: {}", prog.name, c.config, t.message)
                    }
                })
                .collect();
            for (cell, ok) in cells.iter().zip(&outs).skip(1) {
                if ok.output != outs[0].output || ok.ret != outs[0].ret {
                    failures.push(format!(
                        "{} [{}]: output/ret diverges from [{}]",
                        prog.name, cell.config, cells[0].config
                    ));
                }
            }
            // checks_executed: full ≤ -noipo ≤ unoptimized.
            let counts: Vec<u64> = outs.iter().map(|ok| ok.stats.checks_executed).collect();
            if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
                failures.push(format!(
                    "{} [{mech:?}]: checks_executed not monotone: full {} / noipo {} / unopt {}",
                    prog.name, counts[0], counts[1], counts[2]
                ));
            }
            if counts[0] < counts[1] {
                helped += 1;
            }
            // Counter reconciliation: a dynamic drop attributable to IPO
            // must be accounted for statically, and the full build must
            // have actually computed summaries.
            let instr = &outs[0].instr;
            if counts[0] < counts[1] {
                if instr.checks_elided_ipo == 0 {
                    failures.push(format!(
                        "{} [{mech:?}]: dynamic checks dropped vs -noipo but none elided",
                        prog.name
                    ));
                }
                if instr.summaries_computed == 0 {
                    failures
                        .push(format!("{} [{mech:?}]: elision fired without summaries", prog.name));
                }
            }
        }
    }
    assert!(failures.is_empty(), "{} ipo mismatches:\n  {}", failures.len(), failures.join("\n  "));
    // The acceptance floor: summaries must pay off beyond loop opts on a
    // meaningful share of the (program, mechanism) grid.
    assert!(
        helped >= 15,
        "ipo elision reduced dynamic checks on only {helped} (program, mech) pairs"
    );
}

/// The report over the corpus is independent of the worker count — the
/// tentpole's determinism guarantee, exercised on real (partly trapping)
/// inputs rather than synthetic ones.
#[test]
fn corpus_report_is_scheduling_independent() {
    // A slice of the corpus keeps this affordable in debug runs; the full
    // matrix identity is covered per-program by `corpus_differential`.
    let programs: Vec<Program> = corpus().into_iter().take(6).map(|(p, _)| p).collect();
    let configs = differential_configs();
    let r1 = Driver::new(programs.clone(), configs.clone()).with_jobs(1).run();
    let r4 = Driver::new(programs, configs).with_jobs(4).run();
    assert_eq!(r1.to_json(false), r4.to_json(false));
}
