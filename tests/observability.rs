//! Determinism and reconciliation properties of the observability layer
//! (the flame sampler and the `mi-metrics/1` registry).
//!
//! The repo's core invariant — byte-identical results across VM backends
//! and worker counts — must extend to every telemetry artifact, or a
//! profile taken under `--vm walk` would not be comparable to one taken
//! under the default bytecode engine. These tests pin that down over the
//! whole corpus, and pin the exact-reconciliation contract: every number
//! in the metrics export is derivable from `VmStats`, never sampled.

use bench::driver::{fig9_configs, paper_sweep_configs, Driver, Program, Report};
use meminstrument::{Instrument, Mechanism};
use memvm::{VmBackend, VmConfig};

/// Every `tests/corpus/*.c` file as a driver program, sorted by name.
fn corpus_programs() -> Vec<Program> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 30, "corpus shrank to {}", paths.len());
    paths
        .iter()
        .map(|p| Program {
            name: p.file_name().unwrap().to_string_lossy().into_owned(),
            source: std::fs::read_to_string(p).unwrap(),
        })
        .collect()
}

fn sweep(jobs: usize, backend: VmBackend, interval: u64) -> Report {
    Driver::new(corpus_programs(), fig9_configs())
        .with_jobs(jobs)
        .with_vm(VmConfig { backend, sample_interval: interval, ..VmConfig::default() })
        .run()
}

/// The tentpole property: folded-stack output and the metrics registry
/// are byte-identical between `--vm walk` and `--vm bytecode`, and
/// across `--jobs 1` and `--jobs 4` — over the *whole corpus*, traps
/// included.
#[test]
fn corpus_flame_and_metrics_identical_across_backends_and_jobs() {
    let r_bc1 = sweep(1, VmBackend::Bytecode, 500);
    let r_bc4 = sweep(4, VmBackend::Bytecode, 500);
    let r_walk4 = sweep(4, VmBackend::Walk, 500);

    let flame = r_bc1.flame().render();
    assert!(!flame.is_empty(), "corpus sweep took no samples");
    assert_eq!(flame, r_bc4.flame().render(), "flame differs across --jobs");
    assert_eq!(flame, r_walk4.flame().render(), "flame differs across VM backends");

    let metrics = r_bc1.metrics().to_json();
    assert_eq!(metrics, r_bc4.metrics().to_json(), "metrics differ across --jobs");
    assert_eq!(metrics, r_walk4.metrics().to_json(), "metrics differ across VM backends");
    assert_eq!(
        r_bc1.metrics().to_prometheus(),
        r_walk4.metrics().to_prometheus(),
        "prometheus rendering differs across VM backends"
    );
}

/// Every frame of every sampled stack names a function of the compiled
/// module or a registered runtime helper (entry functions bare, callees
/// and helpers as `name:CALLSITE_LINE`) — no synthetic or dangling
/// frames.
#[test]
fn flame_frames_resolve_to_module_functions() {
    let mut programs_sampled = 0;
    for p in corpus_programs() {
        let module = cfront::compile_named(&p.source, &p.name)
            .unwrap_or_else(|e| panic!("{}: frontend error: {e}", p.name));
        let prog = Instrument::mechanism(Mechanism::SoftBound).compile(module);
        let mut known: std::collections::BTreeSet<String> =
            prog.module.functions.iter().map(|f| f.name.clone()).collect();
        let mut vm = prog
            .make_vm(VmConfig { sample_interval: 200, ..VmConfig::default() })
            .unwrap_or_else(|t| panic!("{}: vm setup trapped: {t}", p.name));
        known.extend(vm.registry_mut().names());
        let _ = vm.run("main", &[]); // traps are fine; the profile survives
        let folded = vm.flame().expect("sampling was configured on");
        if folded.is_empty() {
            continue; // ran to completion under the first sample boundary
        }
        programs_sampled += 1;
        for (stack, _) in folded.iter() {
            for frame in stack.split(';') {
                let base = frame.split(':').next().unwrap();
                assert!(
                    known.contains(base),
                    "{}: frame {frame:?} of stack {stack:?} names no module function",
                    p.name
                );
            }
        }
    }
    assert!(programs_sampled > 0, "no corpus program was large enough to sample");
}

/// Exact reconciliation: per-opcode-class costs sum to `cost_total`, the
/// sample count obeys `samples * interval <= cost_total`, and the
/// registry's counters reproduce `VmStats` verbatim.
#[test]
fn cell_metrics_reconcile_exactly_with_vm_stats() {
    const INTERVAL: u64 = 300;
    let programs = corpus_programs().into_iter().take(6).collect();
    let report = Driver::new(programs, paper_sweep_configs())
        .with_jobs(4)
        .with_vm(VmConfig { sample_interval: INTERVAL, ..VmConfig::default() })
        .run();
    let registry = report.metrics();
    let mut checked = 0;
    for cell in &report.cells {
        let Ok(ok) = &cell.outcome else { continue };
        checked += 1;
        let ctx = format!("{} [{}]", cell.program, cell.config);
        let s = &ok.stats;
        assert_eq!(ok.ops.total_cost(), s.cost_total, "{ctx}: op-class costs must sum exactly");
        let iter_cost: u64 = ok.ops.iter().map(|(_, _, cost)| cost).sum();
        assert_eq!(iter_cost, s.cost_total, "{ctx}: nonzero-class iteration drops cost");
        let flame = ok.flame.as_ref().expect("sampling on");
        assert!(
            flame.total_samples() * INTERVAL <= s.cost_total,
            "{ctx}: {} samples x {INTERVAL} exceeds cost {}",
            flame.total_samples(),
            s.cost_total
        );

        let l: &[(&str, &str)] = &[("program", &cell.program), ("config", &cell.config)];
        assert_eq!(registry.counter("vm_cost_total", l), s.cost_total, "{ctx}");
        assert_eq!(registry.counter("vm_instrs_executed", l), s.instrs_executed, "{ctx}");
        assert_eq!(registry.counter("vm_checks_executed", l), s.checks_executed, "{ctx}");
        assert_eq!(registry.gauge("vm_mapped_bytes", l), s.mapped_bytes, "{ctx}");
        assert_eq!(registry.counter("flame_samples", l), flame.total_samples(), "{ctx}");
        let cat_sum: u64 = ["app", "checks", "metadata", "allocator", "other"]
            .iter()
            .map(|c| registry.counter("vm_cost_units", &[l[0], l[1], ("category", c)]))
            .sum();
        assert_eq!(cat_sum, s.cost_total, "{ctx}: category split must sum exactly");
        let op_sum: u64 = ok
            .ops
            .iter()
            .map(|(class, _, _)| {
                registry.counter("vm_op_cost", &[l[0], l[1], ("op", class.name())])
            })
            .sum();
        assert_eq!(op_sum, s.cost_total, "{ctx}: vm_op_cost series must sum exactly");
    }
    assert!(checked > 0, "no completed cells to reconcile");
    assert_eq!(registry.gauge("flame_sample_interval", &[]), INTERVAL);
    assert_eq!(
        registry.counter("sweep_cells", &[("outcome", "ok")]),
        checked,
        "sweep_cells{{ok}} must count completed cells"
    );
}

/// The promoted trap corpus file (`fuzz_oversized_overflow_tally.c`)
/// lands in the metrics export as `vm_traps` tallies: one `violation`
/// (SoftBound's report) and two `segfault`s (baseline and the mechanisms
/// whose guarantee model misses the oversized overflow).
#[test]
fn trap_kinds_tallied_in_metrics_export() {
    let path =
        format!("{}/tests/corpus/fuzz_oversized_overflow_tally.c", env!("CARGO_MANIFEST_DIR"));
    let program = Program {
        name: "fuzz_oversized_overflow_tally.c".into(),
        source: std::fs::read_to_string(&path).unwrap(),
    };
    let report = Driver::new(vec![program], fig9_configs()).with_jobs(2).run();
    let registry = report.metrics();
    let p = "fuzz_oversized_overflow_tally.c";
    let violations: u64 = report
        .configs
        .iter()
        .map(|c| {
            registry.counter("vm_traps", &[("program", p), ("config", c), ("kind", "violation")])
        })
        .sum();
    let segfaults: u64 = report
        .configs
        .iter()
        .map(|c| {
            registry.counter("vm_traps", &[("program", p), ("config", c), ("kind", "segfault")])
        })
        .sum();
    assert_eq!(violations, 1, "softbound must report the oversized overflow");
    assert_eq!(segfaults, 2, "baseline and lowfat must segfault");
    assert_eq!(registry.counter("sweep_cells", &[("outcome", "trap")]), 3);
    assert_eq!(registry.counter("sweep_cells", &[("outcome", "ok")]), 0);
    // The tally survives serialization in both export formats.
    let json = registry.to_json();
    assert!(json.contains("\"name\": \"vm_traps\""), "{json}");
    assert!(json.contains("\"kind\": \"violation\""), "{json}");
    let prom = registry.to_prometheus();
    assert!(prom.contains("# TYPE vm_traps counter"), "{prom}");
    assert!(prom.contains("kind=\"segfault\""), "{prom}");
}
