//! Robustness and coverage tests for the execution substrate and the
//! textual IR format.

use memvm::interp::Trap;
use memvm::{Vm, VmBackend, VmConfig};

/// Both execution backends; robustness guarantees (stack-depth limits,
/// unmapped-access traps, allocation handling) must be identical on the
/// tree-walker and the bytecode VM.
const BACKENDS: [VmBackend; 2] = [VmBackend::Walk, VmBackend::Bytecode];

fn vm_config(backend: VmBackend) -> VmConfig {
    VmConfig { backend, ..VmConfig::default() }
}

fn run_src_on(src: &str, backend: VmBackend) -> Result<memvm::interp::ExecOutcome, Trap> {
    let m = mir::parser::parse_module(src).unwrap();
    Vm::new(m, vm_config(backend)).unwrap().run("main", &[])
}

fn run_src(src: &str) -> Result<memvm::interp::ExecOutcome, Trap> {
    run_src_on(src, VmBackend::default())
}

#[test]
fn runaway_recursion_traps_instead_of_crashing() {
    let src = r#"
        define i64 @spin(i64 %n) {
        entry:
          %m = add i64, %n, i64 1
          %r = call i64 @spin(%m)
          ret %r
        }
        define i64 @main() {
        entry:
          %r = call i64 @spin(i64 0)
          ret %r
        }
    "#;
    for backend in BACKENDS {
        assert_eq!(run_src_on(src, backend), Err(Trap::StackOverflow), "{}", backend.name());
    }
}

#[test]
fn deep_but_bounded_recursion_is_fine() {
    let src = r#"
        define i64 @count(i64 %n) {
        entry:
          %c = icmp sle i64, %n, i64 0
          condbr %c, base, rec
        base:
          ret i64 0
        rec:
          %m = sub i64, %n, i64 1
          %r = call i64 @count(%m)
          %s = add i64, %r, i64 1
          ret %s
        }
        define i64 @main() {
        entry:
          %r = call i64 @count(i64 120)
          ret %r
        }
    "#;
    let walk = run_src_on(src, VmBackend::Walk).unwrap();
    assert_eq!(walk.ret.unwrap().as_int(), 120);
    // The whole outcome — including the dynamic statistics — matches.
    assert_eq!(Ok(walk), run_src_on(src, VmBackend::Bytecode));
}

#[test]
fn instrumented_recursion_also_guarded() {
    // The guard must hold with instrumentation (which deepens nothing: host
    // calls are not interpreter frames).
    use meminstrument::runtime::{compile, BuildOptions};
    use meminstrument::{Mechanism, MiConfig};
    let src = r#"
        long spin(long *p, long n) { return spin(p, n + *p); }
        long main(void) {
            long x = 1;
            return spin(&x, 0);
        }
    "#;
    let module = cfront::compile(src).unwrap();
    for backend in BACKENDS {
        let r =
            compile(module.clone(), &MiConfig::new(Mechanism::SoftBound), BuildOptions::default())
                .run_main(vm_config(backend));
        assert_eq!(r, Err(Trap::StackOverflow), "{}", backend.name());
    }
}

#[test]
fn unmapped_access_traps_identically_on_both_backends() {
    // A wild pointer faults like hardware would: an UnmappedAccess trap
    // carrying the access shape and frame provenance — not a crash, and
    // not backend-dependent.
    let src = r#"
        define i64 @main() {
        entry:
          %p = inttoptr i64 3735879680, i64 to ptr
          %v = load i64, %p
          ret %v
        }
    "#;
    let walk = run_src_on(src, VmBackend::Walk);
    assert!(
        matches!(
            &walk,
            Err(Trap::UnmappedAccess { addr: 0xdead_0000, width: 8, write: false, func: Some(f), .. })
                if f == "main"
        ),
        "{walk:?}"
    );
    assert_eq!(walk, run_src_on(src, VmBackend::Bytecode));
}

#[test]
fn oversized_allocation_behaves_identically_on_both_backends() {
    // A 32 GiB alloca: the sparse interval memory makes this legal, and
    // both backends must agree on the resulting layout and statistics.
    let big_alloca = r#"
        define i64 @main() {
        entry:
          %a = alloca i64, i64 4294967296
          store i64, i64 7, %a
          %v = load i64, %a
          ret %v
        }
    "#;
    let walk = run_src_on(big_alloca, VmBackend::Walk);
    assert_eq!(walk.as_ref().unwrap().ret.unwrap().as_int(), 7);
    assert_eq!(walk, run_src_on(big_alloca, VmBackend::Bytecode));

    // An oversized heap request goes through the malloc host; whatever
    // the allocator's verdict, it is the same verdict on both backends.
    let big_malloc = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          %p = call ptr @malloc(i64 1099511627776)
          store i64, i64 9, %p
          %v = load i64, %p
          ret %v
        }
    "#;
    assert_eq!(
        run_src_on(big_malloc, VmBackend::Walk),
        run_src_on(big_malloc, VmBackend::Bytecode)
    );
}

#[test]
fn trap_display_strings_are_informative() {
    let cases: Vec<(Trap, &str)> = vec![
        (Trap::DivByZero, "division by zero"),
        (Trap::CostLimit, "cost budget"),
        (Trap::StackOverflow, "stack overflow"),
        (Trap::UnknownFunction("f".into()), "@f"),
        (Trap::BadIndirectCall(0x40), "0x40"),
        (Trap::Abort("x".into()), "aborted"),
        (Trap::Unsupported("y".into()), "unsupported"),
        (
            Trap::UnmappedAccess { addr: 0x10, width: 8, write: true, func: None, line: None },
            "8-byte write at unmapped 0x10",
        ),
        (
            Trap::UnmappedAccess {
                addr: 0x10,
                width: 8,
                write: true,
                func: Some("main".into()),
                line: Some(12),
            },
            "8-byte write at unmapped 0x10 in @main (line 12)",
        ),
        (
            Trap::MemSafetyViolation {
                mechanism: "softbound".into(),
                kind: "deref-check".into(),
                addr: 0x20,
                detail: "d".into(),
                func: None,
                line: None,
            },
            "softbound: deref-check violation at 0x20",
        ),
        (
            Trap::MemSafetyViolation {
                mechanism: "softbound".into(),
                kind: "deref-check".into(),
                addr: 0x20,
                detail: "d".into(),
                func: Some("spin".into()),
                line: Some(3),
            },
            "softbound: deref-check violation at 0x20 in @spin (line 3)",
        ),
    ];
    for (trap, needle) in cases {
        let s = trap.to_string();
        assert!(s.contains(needle), "{s:?} should contain {needle:?}");
    }
}

#[test]
fn every_instruction_kind_round_trips_textually() {
    // One module exercising each instruction and terminator form once.
    let src = r#"
        module @full
        hostdecl ptr @malloc(i64)
        hostdecl void @print_i64(i64)
        hostdecl ptr @ro_helper(ptr) readonly
        hostdecl ptr @pure_helper(ptr) pure
        global @g : { i8, i64, [4 x i32] } = zero
        global @data : [8 x i8] = bytes [1 2 3 4 5 6 7 8]
        global @ext : [0 x i32] = zero external size_unknown
        global @libg : i64 = zero uninstrumented_lib

        declare void @external_fn(ptr %p) uninstrumented

        define i64 @callee(ptr %p, f64 %x) {
        entry:
          %v = load i64, %p
          ret %v
        }

        define i64 @main() no_instrument {
        entry:
          %a = alloca [4 x i64], i64 2
          %h = call ptr @malloc(i64 64)
          %ro = call ptr @ro_helper(%h)
          %pu = call ptr @pure_helper(%h)
          %gp = gep { i8, i64, [4 x i32] }, @g, [i64 0, i32 2, i64 1]
          store i32, i32 5, %gp
          %l = load i32, %gp
          %z = zext %l, i32 to i64
          %sx = sext %l, i32 to i64
          %tr = trunc %z, i64 to i16
          %p2i = ptrtoint %h, ptr to i64
          %i2p = inttoptr %p2i, i64 to ptr
          %bc = bitcast %z, i64 to f64
          %fp = sitofp %z, i64 to f64
          %si = fptosi %fp, f64 to i32
          %fa = fadd f64, %fp, f64 0x3ff0000000000000
          %fc = fcmp ogt %fa, %fp
          %ic = icmp ule i64, %z, %sx
          %sel = select i64, %ic, %z, %sx
          memcpy %h, %a, i64 16
          memset %h, i8 0, i64 8
          %fptr = alloca ptr, i64 1
          store ptr, @fn:callee, %fptr
          %f = load ptr, %fptr
          %ind = call_indirect i64 %f(%h, %fa)
          call void @print_i64(%ind)
          %c2 = icmp ne i64, %ind, i64 0
          condbr %c2, more, done
        more:
          br done
        done:
          %ph = phi i64, [entry: i64 1], [more: i64 2]
          %rem = srem i64, %ph, i64 3
          %div = udiv i64, %z, i64 2
          %shl = shl i64, %div, i64 1
          %lsr = lshr i64, %shl, i64 1
          %asr = ashr i64, %lsr, i64 1
          %and = and i64, %asr, i64 255
          %or = or i64, %and, i64 1
          %xo = xor i64, %or, i64 2
          ret %xo
        }
    "#;
    let m1 = mir::parser::parse_module(src).unwrap();
    mir::verifier::verify_module(&m1).unwrap();
    let t1 = mir::printer::print_module(&m1);
    let m2 = mir::parser::parse_module(&t1).unwrap();
    mir::verifier::verify_module(&m2).unwrap();
    let t2 = mir::printer::print_module(&m2);
    assert_eq!(t1, t2, "print∘parse must be a fixpoint");
    // And the module is executable (the custom hosts need implementations).
    let mut vm = Vm::new(m1, VmConfig::default()).unwrap();
    vm.registry_mut().register("ro_helper", |_ctx, args| Ok(args[0]));
    vm.registry_mut().register("pure_helper", |_ctx, args| Ok(args[0]));
    let out = vm.run("main", &[]).unwrap();
    assert!(out.ret.is_some());
}

#[test]
fn host_registry_lists_defaults() {
    let m = mir::parser::parse_module("define i64 @main() {\nentry:\n  ret i64 0\n}\n").unwrap();
    let mut vm = Vm::new(m, VmConfig::default()).unwrap();
    let names = vm.registry_mut().names();
    for expected in ["malloc", "calloc", "free", "print_i64", "print_f64", "abort"] {
        assert!(names.iter().any(|n| n == expected), "{expected} missing from {names:?}");
    }
}

#[test]
fn abort_host_function_traps() {
    let src = r#"
        hostdecl void @abort()
        define i64 @main() {
        entry:
          call void @abort()
          ret i64 0
        }
    "#;
    assert!(matches!(run_src(src), Err(Trap::Abort(_))));
}

#[test]
fn cost_limit_accounts_host_charges() {
    // A loop of pure host work must still hit the budget.
    let src = r#"
        hostdecl ptr @malloc(i64)
        define i64 @main() {
        entry:
          br loop
        loop:
          %p = call ptr @malloc(i64 8)
          br loop
        }
    "#;
    let m = mir::parser::parse_module(src).unwrap();
    let mut vm = Vm::new(m, VmConfig { max_cost: 5_000, ..Default::default() }).unwrap();
    assert_eq!(vm.run("main", &[]), Err(Trap::CostLimit));
}
