//! The artifact-style corpus: small C programs with expected verdicts per
//! configuration (the paper's artifact ships ~200 such programs; each one
//! here exercises a distinct behaviour).
//!
//! Each `tests/corpus/*.c` file carries header lines:
//!
//! ```text
//! // CHECK <config>: ok[=<ret>] | violation
//! ```
//!
//! where `<config>` is `baseline`, `softbound`, `lowfat`, or `redzone`.
//!
//! A file may additionally assert on the *provenance text* of a trap:
//!
//! ```text
//! // CHECKTRAP <config>: <substring>
//! ```
//!
//! requires that configuration to trap with a display string containing
//! `<substring>` — used to pin the ASan-style source attribution
//! ("8-byte write at f.c:12 overflows 40-byte heap object allocated at
//! f.c:7"). CHECKTRAP lines may appear anywhere in the file; putting them
//! at the end keeps the source line numbers the text asserts on stable.

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::interp::Trap;
use memvm::VmConfig;

#[derive(Debug, PartialEq)]
enum Expect {
    Ok(Option<i64>),
    Violation,
    /// A raw hardware-level page fault (unmapped access), *not* an
    /// instrumentation report.
    Segfault,
}

fn parse_expectations(src: &str) -> Vec<(String, Expect)> {
    let mut out = vec![];
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("// CHECK ") else { continue };
        let (config, verdict) = rest.split_once(':').expect("CHECK line has a colon");
        let verdict = verdict.trim();
        let verdict = verdict.split("  ").next().unwrap().trim(); // strip trailing comment
        let expect = if verdict == "violation" {
            Expect::Violation
        } else if verdict == "segfault" {
            Expect::Segfault
        } else if let Some(v) = verdict.strip_prefix("ok=") {
            Expect::Ok(Some(v.parse().expect("ret value")))
        } else if verdict == "ok" {
            Expect::Ok(None)
        } else {
            panic!("bad verdict {verdict:?}");
        };
        out.push((config.trim().to_string(), expect));
    }
    out
}

fn parse_trap_expectations(src: &str) -> Vec<(String, String)> {
    let mut out = vec![];
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("// CHECKTRAP ") else { continue };
        let (config, needle) = rest.split_once(':').expect("CHECKTRAP line has a colon");
        out.push((config.trim().to_string(), needle.trim().to_string()));
    }
    out
}

#[test]
fn corpus_verdicts() {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 30, "corpus shrank to {}", paths.len());

    let mut failures = vec![];
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(path).unwrap();
        let expectations = parse_expectations(&src);
        assert!(!expectations.is_empty(), "{name}: no CHECK lines");
        let module = match cfront::compile_named(&src, &name) {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!("{name}: frontend error: {e}"));
                continue;
            }
        };
        let run_config = |config: &str| match config {
            "baseline" => compile_baseline(module.clone(), BuildOptions::default())
                .run_main(VmConfig::default()),
            mech => {
                let mech = match mech {
                    "softbound" => Mechanism::SoftBound,
                    "lowfat" => Mechanism::LowFat,
                    "redzone" => Mechanism::RedZone,
                    other => panic!("{name}: unknown config {other}"),
                };
                compile(module.clone(), &MiConfig::new(mech), BuildOptions::default())
                    .run_main(VmConfig::default())
            }
        };
        for (config, expect) in expectations {
            let result = run_config(&config);
            let verdict = match (&expect, &result) {
                (Expect::Ok(want), Ok(out)) => {
                    let got = out.ret.map(|v| v.as_int() as i64).unwrap_or(0);
                    match want {
                        Some(w) if *w != got => Some(format!("expected ok={w}, got ok={got}")),
                        _ => None,
                    }
                }
                (Expect::Ok(_), Err(t)) => Some(format!("expected ok, got {t}")),
                (Expect::Violation, Ok(_)) => Some("expected violation, ran through".into()),
                (Expect::Violation, Err(Trap::MemSafetyViolation { .. })) => None,
                (Expect::Violation, Err(t)) => Some(format!("expected violation, got {t}")),
                (Expect::Segfault, Err(Trap::UnmappedAccess { .. })) => None,
                (Expect::Segfault, Ok(_)) => Some("expected segfault, ran through".into()),
                (Expect::Segfault, Err(t)) => Some(format!("expected segfault, got {t}")),
            };
            if let Some(msg) = verdict {
                failures.push(format!("{name} [{config}]: {msg}"));
            }
        }
        for (config, needle) in parse_trap_expectations(&src) {
            match run_config(&config) {
                Err(t) => {
                    let s = t.to_string();
                    if !s.contains(&needle) {
                        failures.push(format!(
                            "{name} [{config}]: trap {s:?} lacks provenance {needle:?}"
                        ));
                    }
                }
                Ok(_) => failures.push(format!(
                    "{name} [{config}]: expected a trap containing {needle:?}, ran through"
                )),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus mismatches:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
}
