// Promoted from the generative fuzzer: seed=0 case=5
// kind=underflow-far, model: sb=caught lf=caught rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok=0
// promoted fuzz mutant: underflow-far
long main(void) {
    long x = 98;
    long *h0 = (long*)malloc(13 * sizeof(long));
    long *h1 = (long*)malloc(14 * sizeof(long));
    for (long i = 0; i < 13; i += 1) h0[i] = (i * 1 + 4) & 255;
    for (long i = 0; i < 14; i += 1) h1[i] = (i * 4 + 5) & 255;
    long chk = 0;
    for (long i = 0; i < 13; i += 1) chk += h0[i] * (i + 1);
    for (long i = 0; i < 14; i += 1) chk += h1[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: underflow-far on h1 (sb=caught lf=caught rz=missed) */
    {
        long *mu = &h1[1];
        x += mu[-7];
        print_i64(x);
    }
    return 0;
}
