// Negative indexing from an interior pointer stays in bounds: legal.
// CHECK baseline: ok=42
// CHECK softbound: ok=42
// CHECK lowfat: ok=42
// CHECK redzone: ok=42
long main(void) {
    long a[10];
    a[2] = 42;
    long *mid = &a[6];
    return mid[-4];
}
