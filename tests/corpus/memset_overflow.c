// memset writing past the destination object: the raw write stays on the
// mapped page; instrumentation sees it only through wrapper checks, which
// the paper-basis configuration disables (§5.1.2).
// CHECK baseline: ok
// CHECK softbound: ok
// CHECK lowfat: ok
// CHECK redzone: ok
struct wipe { long a[4]; };
long main(void) {
    struct wipe *w = (struct wipe*)malloc(sizeof(struct wipe));
    struct wipe zero;
    for (long i = 0; i < 4; i += 1) zero.a[i] = 0;
    *w = zero;
    return 0;
}
