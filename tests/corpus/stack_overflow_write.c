// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long main(void) {
    long a[4];
    for (long i = 0; i <= 20; i += 1) a[i] = i;
    return a[0];
}
