// CHECK baseline: ok=5
// CHECK softbound: ok=5
// CHECK lowfat: ok=5
// CHECK redzone: ok=5
long main(void) {
    int a[16];
    int *p = &a[3];
    int *q = &a[8];
    return q - p;
}
