// Overflow landing exactly inside a neighbouring live allocation: the
// red-zone blind spot (§2.1); object-based mechanisms catch it.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok
long main(void) {
    long *a = (long*)malloc(10 * sizeof(long));
    long *b = (long*)malloc(10 * sizeof(long));
    b[0] = 1;
    a[16] = 2;
    return b[0];
}
