// Freeing and reallocating: the low-fat free list recycles the slot; the
// fresh object's bounds must be fresh too.
// CHECK baseline: ok=30
// CHECK softbound: ok=30
// CHECK lowfat: ok=30
// CHECK redzone: ok=30
long main(void) {
    long s = 0;
    for (long round = 0; round < 10; round += 1) {
        long *p = (long*)malloc(3 * sizeof(long));
        p[0] = 1; p[1] = 1; p[2] = 1;
        s += p[0] + p[1] + p[2];
        free(p);
    }
    return s;
}
