// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: ok
// CHECK redzone: violation
long data[16];
long main(void) {
    long s = 0;
    for (long i = 0; i <= 16; i += 1) s += data[i];
    return s;
}
