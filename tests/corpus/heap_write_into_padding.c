// One past the end of a 64-byte object: inside the 128-byte low-fat class.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: ok
// CHECK redzone: violation
long main(void) {
    long *a = (long*)malloc(8 * sizeof(long));
    a[8] = 1;
    return 0;
}
