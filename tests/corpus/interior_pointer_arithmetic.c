// Walking back and forth inside one object is fine.
// CHECK baseline: ok=6
// CHECK softbound: ok=6
// CHECK lowfat: ok=6
// CHECK redzone: ok=6
long main(void) {
    long *a = (long*)malloc(16 * sizeof(long));
    long *p = a;
    p += 10;
    p -= 7;
    *p = 6;
    return a[3];
}
