// Temporal errors are out of scope for the paper's mechanisms; the
// red-zone port poisons the freed object's head (quarantine-ish).
// CHECK baseline: ok
// CHECK softbound: ok
// CHECK lowfat: ok
// CHECK redzone: violation
long main(void) {
    long *a = (long*)malloc(32);
    free(a);
    return a[0];
}
