// Initialized globals keep their values under every placement scheme
// (default area, low-fat mirror, red-zone guard slot).
// CHECK baseline: ok=707
// CHECK softbound: ok=707
// CHECK lowfat: ok=707
// CHECK redzone: ok=707
long seed = 700;
int bump = 7;
long main(void) { return seed + bump; }
