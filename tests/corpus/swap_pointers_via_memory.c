// The §4.4 swap, pointer-typed (the benign lowering): metadata follows.
// CHECK baseline: ok=2
// CHECK softbound: ok=2
// CHECK lowfat: ok=2
// CHECK redzone: ok=2
void swap(long **one, long **two) {
    long *tmp = *one;
    *one = *two;
    *two = tmp;
}
long main(void) {
    long x = 1;
    long y = 2;
    long *a = &x;
    long *b = &y;
    swap(&a, &b);
    return *a;
}
