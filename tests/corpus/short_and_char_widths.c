// Narrow accesses at the very end of an object are fine; one byte more is
// exact-bounds territory.
// CHECK baseline: ok=2
// CHECK softbound: ok=2
// CHECK lowfat: ok=2
// CHECK redzone: ok=2
long main(void) {
    char *raw = (char*)malloc(10);
    raw[9] = 1;                 /* last byte: fine */
    short *h = (short*)(raw + 8);
    *h = 2;                     /* bytes 8..10: fine */
    return raw[8] + raw[9];   /* 2 + 0: the short overwrote raw[9] */
}
