// Witnesses must follow control-flow joins (companion phis).
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 80 clears the guard zone)
long pick(long c) {
    long *small = (long*)malloc(2 * sizeof(long));
    long *large = (long*)malloc(64 * sizeof(long));
    long *p;
    if (c) p = small; else p = large;
    p[10] = 1;   /* fine for large, overflow for small */
    return p[10];
}
long main(void) {
    pick(0);
    return pick(1);
}
