// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (z[40] clears the 16-byte guard zone)
long main(void) {
    long *z = (long*)calloc(4, sizeof(long));
    z[40] = 1;
    return 0;
}
