// An 8-byte access whose first byte is in bounds but whose tail crosses
// the 12-byte object end: only exact bounds (SoftBound) reject it — the
// tail stays inside the 16-byte low-fat class and short of the red zone.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: ok
// CHECK redzone: ok
long main(void) {
    char *raw = (char*)malloc(12);
    long *wide = (long*)(raw + 8);
    *wide = 1;    /* bytes 8..16 of a 12-byte object */
    return 0;
}
