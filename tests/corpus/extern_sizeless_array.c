// §4.3: extern array without size; wide-upper flag keeps it running.
// CHECK baseline: ok=190
// CHECK softbound: ok=190
// CHECK lowfat: ok=190
// CHECK redzone: ok=190
__hidden_size int counts[32];
long main(void) {
    long s = 0;
    for (long i = 0; i < 20; i += 1) { counts[i] = (int)i; s += counts[i]; }
    return s;
}
