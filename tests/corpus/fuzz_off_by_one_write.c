// Promoted from the generative fuzzer: seed=0 case=0
// kind=off-by-one-write, model: sb=caught lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: violation
// CHECK lowfat: ok=0
// CHECK redzone: ok=0
// promoted fuzz mutant: off-by-one-write
long main(void) {
    long x = 90;
    int *h0 = (int*)malloc(34 * sizeof(int));
    for (long i = 0; i < 34; i += 1) h0[i] = (i * 5 + 4) & 255;
    long chk = 0;
    for (long i = 0; i < 34; i += 1) chk += h0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: off-by-one-write on h0 (sb=caught lf=missed rz=missed) */
    h0[34] = x & 255;
    return 0;
}
// Provenance assertions (hand-added; line numbers refer to this file):
// CHECKTRAP softbound: 4-byte write at fuzz_off_by_one_write.c:18 overflows 136-byte heap object allocated at fuzz_off_by_one_write.c:11
// CHECKTRAP softbound: in @main (line 18)
