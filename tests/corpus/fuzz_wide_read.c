// Promoted from the generative fuzzer: seed=0 case=7
// kind=wide-read, model: sb=caught lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: violation
// CHECK lowfat: ok=0
// CHECK redzone: ok=0
// promoted fuzz mutant: wide-read
long g0[9];
long main(void) {
    long x = 33;
    for (long i = 0; i < 9; i += 1) g0[i] = (i * 1 + 8) & 255;
    long chk = 0;
    for (long i = 0; i < 9; i += 1) chk += g0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: wide-read on g0 (sb=caught lf=missed rz=missed) */
    {
        char *mc = (char*)&g0[0];
        long *mw = (long*)(mc + 68);
        x += *mw;
        print_i64(x);
    }
    return 0;
}
