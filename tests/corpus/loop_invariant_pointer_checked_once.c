// A loop-invariant safe access: dominance elimination and the optimizer
// may reduce it to one check, but the program must still run correctly.
// CHECK baseline: ok=1000
// CHECK softbound: ok=1000
// CHECK lowfat: ok=1000
// CHECK redzone: ok=1000
long main(void) {
    long *cell = (long*)malloc(8);
    *cell = 0;
    for (long i = 0; i < 1000; i += 1) *cell += 1;
    return *cell;
}
