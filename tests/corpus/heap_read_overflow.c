// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long main(void) {
    long *a = (long*)malloc(4 * sizeof(long));
    long s = 0;
    for (long i = 0; i < 40; i += 1) s += a[i];
    return s;
}
