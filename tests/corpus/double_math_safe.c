// CHECK baseline: ok=682
// CHECK softbound: ok=682
// CHECK lowfat: ok=682
// CHECK redzone: ok=682
long main(void) {
    double acc = 0.0;
    double xs[16];
    for (long i = 0; i < 16; i += 1) xs[i] = (double)i / 2.0 + 0.25;
    for (long i = 0; i < 16; i += 1) acc = acc + xs[i] * xs[i];
    return (long)(acc * 2.0);
}
