// The first byte past the object: exact bounds catch, padding/guard rules
// differ per mechanism (10->16-byte class keeps it in padding; the red
// zone starts at the 16-byte alignment boundary, so offset 10 is NOT yet
// in the guard zone either).
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: ok
// CHECK redzone: ok
long main(void) {
    char *raw = (char*)malloc(10);
    raw[10] = 1;
    return 0;
}
