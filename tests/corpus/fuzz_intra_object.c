// Promoted from the generative fuzzer: seed=0 case=12
// kind=intra-object, model: sb=missed lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: ok=0
// CHECK lowfat: ok=0
// CHECK redzone: ok=0
// promoted fuzz mutant: intra-object
struct st0 { long arr[4]; long tail[5]; };
long main(void) {
    long x = 46;
    struct st0 s0;
    for (long i = 0; i < 4; i += 1) s0.arr[i] = (i * 4 + 5) & 255;
    for (long i = 0; i < 5; i += 1) s0.tail[i] = (i * 5 + 4) & 255;
    long chk = 0;
    for (long i = 0; i < 4; i += 1) chk += s0.arr[i] * (i + 1);
    for (long i = 0; i < 5; i += 1) chk += s0.tail[i] * (i + 3);
    print_i64(chk);
    print_i64(x);
    /* mutation: intra-object on s0 (sb=missed lf=missed rz=missed) */
    x += s0.arr[5];
    print_i64(x);
    return 0;
}
