// Bounds survive four instrumented call hops.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 264 clears the guard zone)
long d(long *p) { return p[30]; }
long c(long *p) { return d(p + 1); }
long b(long *p) { return c(p + 1); }
long a_fn(long *p) { return b(p + 1); }
long main(void) {
    long *buf = (long*)malloc(8 * sizeof(long));
    return a_fn(buf);
}
