// Read before the allocation start. The baseline crashes with a raw
// page fault; the instrumentations turn it into a precise report.
// CHECK baseline: segfault
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long main(void) {
    long *a = (long*)malloc(32);
    return a[-2];
}
