// Pointer parked in a global, loaded back, used: trie path end to end.
// CHECK baseline: ok=8
// CHECK softbound: ok=8
// CHECK lowfat: ok=8
// CHECK redzone: ok=8
long *slot;
long main(void) {
    long *p = (long*)malloc(32);
    p[1] = 8;
    slot = p;
    long *q = slot;
    return q[1];
}
