// The witness must reflect the dynamically-chosen allocation size.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 320 clears the guard zone)
long run(long big) {
    long n = big ? 64 : 4;
    long *a = (long*)malloc(n * sizeof(long));
    a[40] = 1;              /* fine when big, overflow when small */
    return a[40];
}
long main(void) {
    run(1);
    return run(0);
}
