// One-past-the-end pointers may be formed and compared (C 6.5.6).
// CHECK baseline: ok=10
// CHECK softbound: ok=10
// CHECK lowfat: ok=10
// CHECK redzone: ok=10
long main(void) {
    long a[10];
    long *end = a + 10;
    long n = 0;
    for (long *p = a; p < end; p += 1) { *p = 1; n += *p; }
    return n;
}
