// Sweeping write crosses the red zone AND the low-fat padding boundary,
// so every mechanism traps (at different iterations).
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long main(void) {
    long *a = (long*)malloc(8 * sizeof(long));
    for (long i = 0; i <= 16; i += 1) a[i] = i;
    return 0;
}
