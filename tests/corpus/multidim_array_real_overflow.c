// ... but leaving the whole grid is caught as usual.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long grid[4][8];
long main(void) {
    for (long i = 0; i < 80; i += 1) grid[0][i] = i;
    return 0;
}
