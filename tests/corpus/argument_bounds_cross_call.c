// Callee overruns a buffer received as an argument (shadow-stack path).
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
void fill(long *buf, long n) {
    for (long i = 0; i < n; i += 1) buf[i] = i;
}
long main(void) {
    long *a = (long*)malloc(8 * sizeof(long));
    fill(a, 80);
    return 0;
}
