// The fixed 300twolf pattern: whole-struct copies keep metadata intact.
// CHECK baseline: ok=3
// CHECK softbound: ok=3
// CHECK lowfat: ok=3
// CHECK redzone: ok=3
struct box { long *ptr; };
long main(void) {
    long *data = (long*)malloc(8);
    *data = 3;
    struct box a;
    struct box b;
    a.ptr = data;
    b = a;
    return *(b.ptr);
}
