// Promoted from the generative fuzzer: seed=11 case=6
// kind=oversized-overflow, model: sb=caught lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote -- --seed 11)
// Unlike fuzz_oversized_overflow.c (seed 0), this case is kept for its
// trap-kind spread: one violation + three segfaults, which
// tests/observability.rs pins in the mi-metrics/1 `vm_traps` tallies.
// CHECK baseline: segfault
// CHECK softbound: violation
// CHECK lowfat: segfault
// CHECK redzone: segfault
// promoted fuzz mutant: oversized-overflow
long main(void) {
    long x = 24;
    long *v0 = (long*)malloc(1073741824);
    for (long i = 0; i < 16; i += 1) v0[i] = (i * 2 + 5) & 255;
    long chk = 0;
    for (long i = 0; i < 16; i += 1) chk += v0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: oversized-overflow on v0 (sb=caught lf=missed rz=missed) */
    x += v0[134218752];
    print_i64(x);
    return 0;
}
// CHECKTRAP softbound: 8-byte read at fuzz_oversized_overflow_tally.c:21 overflows 1073741824-byte heap object allocated at fuzz_oversized_overflow_tally.c:14
// CHECKTRAP baseline: 8-byte read at unmapped 0xe00040002000 in @main (line 21)
// CHECKTRAP lowfat: in @main (line 21)
