// Row overflow in a 2-D array is an intra-object overflow of the outer
// array: whole-object bounds cover the full grid, so walking off a row
// into the next row is not reported by anyone (Appendix-B territory).
// CHECK baseline: ok=99
// CHECK softbound: ok=99
// CHECK lowfat: ok=99
// CHECK redzone: ok=99
long grid[4][8];
long main(void) {
    grid[1][0] = 99;
    return grid[0][8];   /* same memory as grid[1][0] */
}
