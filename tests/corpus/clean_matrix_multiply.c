// Fully in-bounds numeric kernel.
// CHECK baseline: ok=5320
// CHECK softbound: ok=5320
// CHECK lowfat: ok=5320
// CHECK redzone: ok=5320
long main(void) {
    long a[4][4];
    long b[4][4];
    long c[4][4];
    for (long i = 0; i < 4; i += 1)
        for (long j = 0; j < 4; j += 1) { a[i][j] = i + j; b[i][j] = i * j; c[i][j] = 0; }
    for (long i = 0; i < 4; i += 1)
        for (long j = 0; j < 4; j += 1)
            for (long k = 0; k < 4; k += 1)
                c[i][j] += a[i][k] * b[k][j];
    long s = 0;
    for (long i = 0; i < 4; i += 1)
        for (long j = 0; j < 4; j += 1) s += c[i][j] * (i * 4 + j);
    return s;
}
