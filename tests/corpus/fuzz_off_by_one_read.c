// Promoted from the generative fuzzer: seed=0 case=23
// kind=off-by-one-read, model: sb=caught lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: violation
// CHECK lowfat: ok=0
// CHECK redzone: ok=0
// promoted fuzz mutant: off-by-one-read
long main(void) {
    long x = 67;
    long *h0 = (long*)malloc(43 * sizeof(long));
    for (long i = 0; i < 43; i += 1) h0[i] = (i * 1 + 7) & 255;
    long chk = 0;
    for (long i = 0; i < 43; i += 1) chk += h0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: off-by-one-read on h0 (sb=caught lf=missed rz=missed) */
    x += h0[43];
    print_i64(x);
    return 0;
}
