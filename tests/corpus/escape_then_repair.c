// §4.2: OOB pointer escapes to a callee which repairs it before the
// dereference. Legal by programmer intuition; UB by the standard.
// CHECK baseline: ok=7
// CHECK softbound: ok=7
// CHECK lowfat: violation
// CHECK redzone: ok=7
long use_it(long *oob) { return oob[-100]; }
long touch(long *p) { return use_it(p); }
long main(void) {
    long *a = (long*)malloc(64);
    a[0] = 7;
    return touch(a + 100);
}
