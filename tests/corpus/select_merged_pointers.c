// Same through the conditional operator (companion selects).
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 80 clears the guard zone)
long pick(long c) {
    long *small = (long*)malloc(2 * sizeof(long));
    long *large = (long*)malloc(64 * sizeof(long));
    long *p = c ? small : large;
    p[10] = 1;
    return p[10];
}
long main(void) {
    pick(0);
    return pick(1);
}
