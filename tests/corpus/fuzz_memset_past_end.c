// Promoted from the generative fuzzer: seed=0 case=36
// kind=memset-past-end, model: sb=missed lf=missed rz=caught
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: ok=0
// CHECK lowfat: ok=0
// CHECK redzone: violation
// promoted fuzz mutant: memset-past-end
long main(void) {
    long x = 24;
    long s0[10];
    for (long i = 0; i < 10; i += 1) s0[i] = (i * 1 + 5) & 255;
    long chk = 0;
    for (long i = 0; i < 10; i += 1) chk += s0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: memset-past-end on s0 (sb=missed lf=missed rz=caught) */
    memset((char*)&s0[0] + 76, 1, 8);
    return 0;
}
// Provenance assertions (hand-added; line numbers refer to this file):
// CHECKTRAP redzone: bulk write at fuzz_memset_past_end.c:18 overflows 80-byte stack object allocated at fuzz_memset_past_end.c:11
