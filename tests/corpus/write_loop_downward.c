// Descending loops underflow instead of overflow. The baseline walks
// off the bottom of the heap mapping and takes a raw fault.
// CHECK baseline: segfault
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long main(void) {
    long *a = (long*)malloc(8 * sizeof(long));
    for (long i = 7; i >= -8; i -= 1) a[i] = i;
    return 0;
}
