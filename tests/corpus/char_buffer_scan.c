// CHECK baseline: ok=6
// CHECK softbound: ok=6
// CHECK lowfat: ok=6
// CHECK redzone: ok=6
long main(void) {
    char buf[16];
    for (long i = 0; i < 6; i += 1) buf[i] = (char)('a' + i);
    buf[6] = '\0';
    long n = 0;
    for (char *p = buf; *p; p += 1) n += 1;
    return n;
}
