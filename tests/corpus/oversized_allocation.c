// > 1 GiB: falls back to the standard allocator under Low-Fat (unchecked).
// CHECK baseline: ok=9
// CHECK softbound: ok=9
// CHECK lowfat: ok=9
// CHECK redzone: ok=9
long main(void) {
    long *big = (long*)malloc(1200000000);
    big[100000000] = 9;
    return big[100000000];
}
