// Bounds follow a pointer returned from an instrumented function.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 96 clears the guard zone)
long *make(long n) { return (long*)malloc(n * sizeof(long)); }
long grab(long *p, long i) { return p[i]; }
long main(void) {
    long *a = make(4);
    return grab(a, 12);
}
