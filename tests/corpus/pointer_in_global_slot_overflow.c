// ... and the bounds survive the round trip through memory.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 256 clears the guard zone)
long *slot;
long main(void) {
    long *p = (long*)malloc(32);
    slot = p;
    long *q = slot;
    q[32] = 1;
    return 0;
}
