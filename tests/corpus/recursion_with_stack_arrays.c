// Each frame's array is a distinct protected object.
// CHECK baseline: ok=120
// CHECK softbound: ok=120
// CHECK lowfat: ok=120
// CHECK redzone: ok=120
long fact(long n) {
    long scratch[4];
    scratch[0] = n;
    if (n <= 1) return 1;
    return scratch[0] * fact(n - 1);
}
long main(void) { return fact(5); }
