// Promoted from the generative fuzzer: seed=0 case=3
// kind=oversized-overflow, model: sb=caught lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: segfault
// CHECK softbound: violation
// CHECK lowfat: segfault
// CHECK redzone: segfault
// promoted fuzz mutant: oversized-overflow
long main(void) {
    long x = 84;
    long *v0 = (long*)malloc(1073741824);
    for (long i = 0; i < 9; i += 1) v0[i] = (i * 3 + 0) & 255;
    long chk = 0;
    for (long i = 0; i < 9; i += 1) chk += v0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: oversized-overflow on v0 (sb=caught lf=missed rz=missed) */
    x += v0[134218752];
    print_i64(x);
    return 0;
}
