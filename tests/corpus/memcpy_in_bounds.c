// CHECK baseline: ok=36
// CHECK softbound: ok=36
// CHECK lowfat: ok=36
// CHECK redzone: ok=36
struct blob { long vals[8]; };
long main(void) {
    struct blob a;
    struct blob b;
    for (long i = 0; i < 8; i += 1) a.vals[i] = i + 1;
    b = a;
    long s = 0;
    for (long i = 0; i < 8; i += 1) s += b.vals[i];
    return s;
}
