// Two differently-typed views of one allocation share its bounds.
// CHECK baseline: ok=257
// CHECK softbound: ok=257
// CHECK lowfat: ok=257
// CHECK redzone: ok=257
long main(void) {
    long *words = (long*)malloc(4 * sizeof(long));
    char *bytes = (char*)words;
    bytes[0] = 1;
    bytes[1] = 1;
    return (long)(words[0] & 0xFFFF);   /* little endian: 0x0101 */
}
