// Overflow of a deep frame's array is still caught.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (lands in a neighbouring stack slab)
long deep(long n) {
    long scratch[2];
    scratch[0] = n;
    if (n == 3) { scratch[5] = 1; }
    if (n <= 1) return scratch[0];
    return deep(n - 1);
}
long main(void) { return deep(6); }
