// Long chains of pointer arithmetic keep the original witness (gep
// inheritance): the final out-of-bounds access is still attributed to the
// right object.
// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: ok    (offset 128 clears the guard zone)
long main(void) {
    long *a = (long*)malloc(8 * sizeof(long));
    long *p = a + 1;
    long *q = p + 2;
    long *r = q + 3;
    long *s = r + 2;       /* a + 8: one past */
    long *t = s + 8;       /* a + 16: beyond padding and guards */
    for (long *w = t; w < t + 4; w += 1) *w = 1;
    return 0;
}
