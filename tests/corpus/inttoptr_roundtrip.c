// §4.4: pointer laundered through an integer, then dereferenced in bounds.
// With the wide-bounds flag SoftBound tolerates this (unverified).
// CHECK baseline: ok=5
// CHECK softbound: ok=5
// CHECK lowfat: ok=5
// CHECK redzone: ok=5
long main(void) {
    long *p = (long*)malloc(16);
    *p = 5;
    long addr = (long)p;
    long *q = (long*)(addr + 8);
    q = q - 1;
    return *q;
}
