// Promoted from the generative fuzzer: seed=0 case=1
// kind=underflow-near, model: sb=caught lf=caught rz=caught
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: segfault
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
// promoted fuzz mutant: underflow-near
long main(void) {
    long x = 82;
    long *h0 = (long*)malloc(17 * sizeof(long));
    for (long i = 0; i < 17; i += 1) h0[i] = (i * 4 + 4) & 255;
    long chk = 0;
    for (long i = 0; i < 17; i += 1) chk += h0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: underflow-near on h0 (sb=caught lf=caught rz=caught) */
    {
        long *mu = &h0[1];
        x += mu[-2];
        print_i64(x);
    }
    return 0;
}
// Provenance assertions (hand-added; line numbers refer to this file):
// CHECKTRAP softbound: 8-byte read at fuzz_underflow_near.c:20 overflows 136-byte heap object allocated at fuzz_underflow_near.c:11
// CHECKTRAP lowfat: 8-byte read at fuzz_underflow_near.c:20 overflows 136-byte heap object allocated at fuzz_underflow_near.c:11
// CHECKTRAP redzone: 8-byte read at fuzz_underflow_near.c:20 overflows 136-byte heap object allocated at fuzz_underflow_near.c:11
