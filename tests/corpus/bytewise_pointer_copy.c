// §4.5: copying a struct with an embedded pointer byte by byte leaves
// SoftBound's metadata behind — a FALSE POSITIVE on a legal program.
// CHECK baseline: ok=3
// CHECK softbound: violation
// CHECK lowfat: ok=3
// CHECK redzone: ok=3
struct box { long *ptr; };
long main(void) {
    long *data = (long*)malloc(8);
    *data = 3;
    struct box a;
    struct box b;
    a.ptr = data;
    char *s = (char*)&a;
    char *d = (char*)&b;
    for (long i = 0; i < sizeof(struct box); i += 1) d[i] = s[i];
    return *(b.ptr);
}
