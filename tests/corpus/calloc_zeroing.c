// CHECK baseline: ok=0
// CHECK softbound: ok=0
// CHECK lowfat: ok=0
// CHECK redzone: ok=0
long main(void) {
    long *z = (long*)calloc(16, sizeof(long));
    long s = 0;
    for (long i = 0; i < 16; i += 1) s += z[i];
    return s;
}
