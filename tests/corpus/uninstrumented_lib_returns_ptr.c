// §4.3: SoftBound reads stale return bounds after an uninstrumented call.
// CHECK baseline: ok=2
// CHECK softbound: violation
// CHECK lowfat: ok=2
// CHECK redzone: ok=2
uninstrumented long *lib_alloc(long n) {
    long *p = (long*)malloc(n * sizeof(long));
    for (long i = 0; i < n; i += 1) p[i] = i;
    return p;
}
long main(void) {
    long *buf = lib_alloc(8);
    return buf[2];
}
