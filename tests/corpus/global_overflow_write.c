// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
int table[16];
long main(void) {
    for (long i = 0; i < 200; i += 1) table[i] = (int)i;
    return table[0];
}
