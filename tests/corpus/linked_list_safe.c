// CHECK baseline: ok=15
// CHECK softbound: ok=15
// CHECK lowfat: ok=15
// CHECK redzone: ok=15
struct node { long v; struct node *next; };
long main(void) {
    struct node *head = (struct node*)0;
    for (long i = 1; i <= 5; i += 1) {
        struct node *n = (struct node*)malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
    }
    long s = 0;
    while (head) { s += head->v; head = head->next; }
    return s;
}
