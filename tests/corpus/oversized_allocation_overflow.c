// ... and an overflow beyond the oversized allocation is only *reported*
// by SoftBound (exact bounds survive any size); everyone else runs into
// the unmapped page beyond the mapping and crashes raw.
// CHECK baseline: segfault
// CHECK softbound: violation
// CHECK lowfat: segfault
// CHECK redzone: segfault
long main(void) {
    long *big = (long*)malloc(1200000000);
    big[150001000] = 9;
    return 0;
}
