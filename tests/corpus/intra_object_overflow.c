// Appendix B: member-to-member overflow inside one struct. Whole-object
// bounds (all default configs) cannot see it.
// CHECK baseline: ok=11
// CHECK softbound: ok=11
// CHECK lowfat: ok=11
// CHECK redzone: ok=11
struct pair { int x; int y; };
struct pair P;
int peek(int *py, long off) { return py[off]; }
int chain(int *p, long off) { return peek(p, off); }
long main(void) {
    P.x = 11;
    P.y = 22;
    return chain(&P.y, -1);
}
