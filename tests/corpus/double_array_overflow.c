// CHECK baseline: ok
// CHECK softbound: violation
// CHECK lowfat: violation
// CHECK redzone: violation
long main(void) {
    double *xs = (double*)malloc(6 * sizeof(double));
    double s = 0.0;
    for (long i = 0; i < 60; i += 1) s = s + xs[i];
    return (long)s;
}
