// Promoted from the generative fuzzer: seed=0 case=4
// kind=escape-deref, model: sb=caught lf=missed rz=caught
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: violation
// CHECK lowfat: ok=0
// CHECK redzone: violation
// promoted fuzz mutant: escape-deref
long f_peek(long *p, long i) { return p[i]; }
long main(void) {
    long x = 17;
    long s0[33];
    for (long i = 0; i < 33; i += 1) s0[i] = (i * 6 + 1) & 255;
    long chk = 0;
    for (long i = 0; i < 33; i += 1) chk += s0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: escape-deref on s0 (sb=caught lf=missed rz=caught) */
    x += f_peek(&s0[0], 35);
    print_i64(x);
    return 0;
}
