// Library globals are unprotected under Low-Fat (wide bounds) but still
// work; overflowing INTO one from a checked object is caught by exact
// bounds only.
// CHECK baseline: ok=5
// CHECK softbound: ok=5
// CHECK lowfat: ok=5
// CHECK redzone: ok=5
__libglobal long ctx[8];
long main(void) {
    ctx[3] = 5;
    return ctx[3];
}
