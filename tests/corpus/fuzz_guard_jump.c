// Promoted from the generative fuzzer: seed=0 case=15
// kind=guard-jump, model: sb=caught lf=missed rz=missed
// (regenerate: cargo run -p fuzz --bin promote)
// CHECK baseline: ok=0
// CHECK softbound: violation
// CHECK lowfat: ok=0
// CHECK redzone: ok=0
// promoted fuzz mutant: guard-jump
long main(void) {
    long x = 33;
    long *h0 = (long*)malloc(17 * sizeof(long));
    for (long i = 0; i < 17; i += 1) h0[i] = (i * 3 + 8) & 255;
    long chk = 0;
    for (long i = 0; i < 17; i += 1) chk += h0[i] * (i + 1);
    print_i64(chk);
    print_i64(x);
    /* mutation: guard-jump on h0 (sb=caught lf=missed rz=missed) */
    x += h0[20];
    print_i64(x);
    return 0;
}
