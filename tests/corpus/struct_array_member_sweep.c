// Sweeping a member array beyond its struct stays inside the array-of-
// structs object: silent for all (intra-object), by design.
// CHECK baseline: ok=7
// CHECK softbound: ok=7
// CHECK lowfat: ok=7
// CHECK redzone: ok=7
struct rec { long tag; long vals[3]; };
struct rec table[4];
long main(void) {
    table[1].tag = 7;
    return table[0].vals[3];   /* = table[1].tag */
}
