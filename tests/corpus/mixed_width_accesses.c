// Sub-word and word accesses against the same object.
// CHECK baseline: ok=513
// CHECK softbound: ok=513
// CHECK lowfat: ok=513
// CHECK redzone: ok=513
long main(void) {
    char *raw = (char*)malloc(16);
    raw[0] = 1;
    raw[1] = 2;
    short *half = (short*)raw;
    return half[0];   /* little endian: 0x0201 */
}
