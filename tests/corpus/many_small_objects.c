// Allocator stress: many live objects, interleaved sizes, all checked.
// CHECK baseline: ok=4950
// CHECK softbound: ok=4950
// CHECK lowfat: ok=4950
// CHECK redzone: ok=4950
long main(void) {
    long *ptrs[100];
    for (long i = 0; i < 100; i += 1) {
        ptrs[i] = (long*)malloc(((i % 7) + 1) * sizeof(long));
        ptrs[i][0] = i;
    }
    long s = 0;
    for (long i = 0; i < 100; i += 1) s += ptrs[i][0];
    return s;
}
