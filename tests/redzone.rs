//! Tests for the red-zone (ASan-style) mechanism — the extensibility
//! demonstration: a third instrumentation hosted on the shared framework,
//! with the weaker guarantees §2.1 of the paper attributes to this class.

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::interp::Trap;
use memvm::VmConfig;

fn run(src: &str, mech: Mechanism) -> Result<memvm::interp::ExecOutcome, Trap> {
    let module = cfront::compile(src).unwrap();
    compile(module, &MiConfig::new(mech), BuildOptions::default()).run_main(VmConfig::default())
}

#[test]
fn correct_program_unaffected() {
    let src = r#"
        long sum_all(long *a, long n) {
            long s = 0;
            for (long i = 0; i < n; i += 1) s += a[i];
            return s;
        }
        long main(void) {
            long *a = (long*)malloc(16 * sizeof(long));
            for (long i = 0; i < 16; i += 1) a[i] = i;
            long stackbuf[4];
            for (long i = 0; i < 4; i += 1) stackbuf[i] = i * 100;
            return sum_all(a, 16) + stackbuf[3];
        }
    "#;
    let module = cfront::compile(src).unwrap();
    let base = compile_baseline(module.clone(), BuildOptions::default())
        .run_main(VmConfig::default())
        .unwrap();
    let rz = run(src, Mechanism::RedZone).unwrap();
    assert_eq!(rz.ret, base.ret);
    assert!(rz.stats.checks_executed > 0);
    assert_eq!(rz.stats.metadata_loads, 0, "red zones track no metadata");
    assert_eq!(rz.stats.invariant_checks_executed, 0);
}

#[test]
fn catches_adjacent_heap_overflow() {
    // Off-by-one lands in the red zone directly behind the object — the
    // case ASan is good at (and where Low-Fat's padding hides the bug).
    let src = r#"
        long main(void) {
            long *a = (long*)malloc(10 * sizeof(long));
            a[10] = 1;
            return 0;
        }
    "#;
    let r = run(src, Mechanism::RedZone);
    assert!(
        matches!(r, Err(Trap::MemSafetyViolation { ref mechanism, .. }) if mechanism == "redzone"),
        "{r:?}"
    );
    // Low-Fat misses this one (padding), as established elsewhere.
    assert!(run(src, Mechanism::LowFat).is_ok());
}

#[test]
fn catches_adjacent_stack_and_global_overflow() {
    let stack = r#"
        long main(void) {
            long a[4];
            a[4] = 1;
            return 0;
        }
    "#;
    assert!(run(stack, Mechanism::RedZone).is_err());
    let global = r#"
        long g[4];
        long main(void) {
            g[4] = 1;
            return 0;
        }
    "#;
    assert!(run(global, Mechanism::RedZone).is_err());
}

#[test]
fn misses_far_overflow_into_neighbouring_allocation() {
    // The inherent incompleteness of red-zone approaches (§2.1): jump far
    // enough to clear the guard zone and land in another live object.
    // Red-zone layout: a at base, 16-byte guard, then b — so a[16] (offset
    // 128) lands at b[4]. That offset also leaves a's 128-byte padded
    // low-fat object, so both paper mechanisms catch what red zones miss.
    let src = r#"
        long main(void) {
            long *a = (long*)malloc(10 * sizeof(long));
            long *b = (long*)malloc(10 * sizeof(long));
            b[4] = 7;
            a[16] = 1;        /* silently lands inside b */
            return b[4];
        }
    "#;
    let rz = run(src, Mechanism::RedZone);
    assert!(rz.is_ok(), "red zones must miss this by design: {rz:?}");
    assert_eq!(rz.unwrap().ret.unwrap().as_int(), 1, "the write corrupted b");
    // Both paper mechanisms catch it.
    assert!(run(src, Mechanism::SoftBound).is_err());
    assert!(run(src, Mechanism::LowFat).is_err());
}

#[test]
fn use_after_free_of_start_detected() {
    let src = r#"
        long main(void) {
            long *a = (long*)malloc(32);
            a[1] = 5;
            free(a);
            return a[0];   /* never accessed before: its check survives */
        }
    "#;
    let r = run(src, Mechanism::RedZone);
    assert!(r.is_err(), "freed-object start is poisoned: {r:?}");
}

#[test]
fn stack_frames_unwind_cleanly() {
    // Recursion through guarded stack slabs must reclaim space and leave
    // no stale poison behind.
    let src = r#"
        long deep(long n) {
            long local[4];
            local[0] = n;
            if (n <= 0) return local[0];
            return deep(n - 1) + local[0];
        }
        long main(void) {
            long first = deep(50);
            long second = deep(50);
            return first - second;   /* identical runs */
        }
    "#;
    let r = run(src, Mechanism::RedZone).unwrap();
    assert_eq!(r.ret.unwrap().as_int(), 0);
}

#[test]
fn overhead_is_below_the_paper_mechanisms() {
    // §2.1 positions ASan at 1.7x vs. SoftBound/Low-Fat at ~1.7-1.8x but
    // with weaker guarantees; with no metadata propagation at all, the
    // red-zone build must never be the most expensive of the three.
    for name in ["186crafty", "183equake", "197parser"] {
        let b = cbench::by_name(name).unwrap();
        let base = cbench::run_baseline(&b, BuildOptions::default()).unwrap();
        let cost = |mech| {
            cbench::run(&b, &MiConfig::new(mech), BuildOptions::default())
                .unwrap()
                .exec
                .stats
                .cost_total as f64
                / base.exec.stats.cost_total as f64
        };
        let rz = cost(Mechanism::RedZone);
        let sb = cost(Mechanism::SoftBound);
        let lf = cost(Mechanism::LowFat);
        assert!(rz <= sb.max(lf), "{name}: rz {rz:.2} vs sb {sb:.2} / lf {lf:.2}");
    }
}

#[test]
fn all_benchmarks_run_under_redzone() {
    for b in cbench::all() {
        let base = cbench::run_baseline(&b, BuildOptions::default()).unwrap();
        let rz = cbench::run(&b, &MiConfig::new(Mechanism::RedZone), BuildOptions::default())
            .unwrap_or_else(|t| panic!("{}: {t}", b.name));
        assert_eq!(rz.exec.output, base.exec.output, "{}", b.name);
    }
}
