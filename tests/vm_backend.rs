//! Differential gate for the bytecode VM backend.
//!
//! The tree-walking interpreter ([`memvm::interp`]) is the reference
//! semantics; the bytecode backend ([`memvm::bytecode`]) is an
//! optimization and must be observationally indistinguishable. This
//! suite sweeps every corpus program through the full 14-configuration
//! paper sweep under **both** backends and demands byte-identical
//! results: program output, return values, dynamic [`memvm::VmStats`]
//! (cost split, instruction/check counters, mapped bytes), per-site
//! [`memvm::SiteProfile`]s, and trap reports including their
//! ASan-style source provenance.

use bench::driver::{paper_sweep_configs, Driver, Program, Report};
use memvm::{VmBackend, VmConfig};

fn corpus_programs() -> Vec<Program> {
    let dir = format!("{}/tests/corpus", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| Program {
            name: p.file_name().unwrap().to_string_lossy().into_owned(),
            source: std::fs::read_to_string(p).unwrap(),
        })
        .collect()
}

fn sweep(backend: VmBackend) -> Report {
    Driver::new(corpus_programs(), paper_sweep_configs())
        .with_vm(VmConfig { backend, ..VmConfig::default() })
        .run()
}

/// The whole corpus × config matrix is byte-identical across backends:
/// the serialized reports match, and so does every structured cell
/// (stats, site profiles, trap kind + provenance text).
#[test]
fn bytecode_backend_matches_walker_on_full_corpus_sweep() {
    let programs = corpus_programs();
    assert!(programs.len() >= 57, "corpus shrank to {}", programs.len());
    let configs = paper_sweep_configs();
    assert_eq!(configs.len(), 14, "paper sweep is the 14-config matrix");

    let walk = sweep(VmBackend::Walk);
    let bytecode = sweep(VmBackend::Bytecode);

    // Structured comparison first: it localizes a divergence to a cell.
    assert_eq!(walk.cells.len(), bytecode.cells.len());
    let mut diverged = vec![];
    for (w, b) in walk.cells.iter().zip(&bytecode.cells) {
        assert_eq!((&w.program, &w.config), (&b.program, &b.config));
        let cell = format!("{} [{}]", w.program, w.config);
        match (&w.outcome, &b.outcome) {
            (Ok(wo), Ok(bo)) => {
                if wo != bo {
                    // CellOk equality covers ret, output, VmStats,
                    // InstrStats, and the full SiteProfile.
                    diverged.push(format!("{cell}: ok-cells differ:\n  {wo:?}\n  {bo:?}"));
                }
            }
            (Err(wt), Err(bt)) => {
                if wt != bt {
                    diverged.push(format!(
                        "{cell}: traps differ:\n  walk:     {} ({})\n  bytecode: {} ({})",
                        wt.message,
                        wt.kind.name(),
                        bt.message,
                        bt.kind.name()
                    ));
                }
            }
            (w, b) => diverged.push(format!("{cell}: verdicts differ: {w:?} vs {b:?}")),
        }
    }
    assert!(
        diverged.is_empty(),
        "{} backend divergences:\n{}",
        diverged.len(),
        diverged.join("\n")
    );

    // And the rendered artifact is byte-identical too (what `mi eval`
    // ships; timings excluded by contract).
    assert_eq!(walk.to_json(false), bytecode.to_json(false));
}

/// CHECKTRAP-style provenance survives the bytecode backend: every trap
/// message that carries source attribution under the walker carries the
/// exact same text under bytecode. (Subsumed by the full sweep above,
/// but asserted separately so a provenance regression names itself.)
#[test]
fn trap_provenance_is_identical_across_backends() {
    let walk = sweep(VmBackend::Walk);
    let bytecode = sweep(VmBackend::Bytecode);
    let traps = |r: &Report| -> Vec<(String, String, String)> {
        r.cells
            .iter()
            .filter_map(|c| {
                c.outcome
                    .as_ref()
                    .err()
                    .map(|t| (c.program.clone(), c.config.clone(), t.message.clone()))
            })
            .collect()
    };
    let (wt, bt) = (traps(&walk), traps(&bytecode));
    assert!(!wt.is_empty(), "corpus sweep should produce traps");
    assert_eq!(wt, bt);
}
