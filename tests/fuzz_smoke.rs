//! Smoke tests for the generative differential fuzzer (`crates/fuzz`).
//!
//! A bounded sweep with fixed seeds must find zero oracle violations —
//! every mechanism behaving exactly as the guarantee matrix predicts on
//! every generated program — and the report must be byte-identical
//! regardless of worker count, which is the fuzzer's replayability
//! contract (`mi fuzz --seed S --cases N` is deterministic).

use fuzz::{fuzz, FuzzOpts};

fn opts(seed: u64, cases: u64, jobs: usize) -> FuzzOpts {
    FuzzOpts { seed, cases, jobs, shrink: true, fail_dir: None, backend: Default::default() }
}

#[test]
fn bounded_sweep_is_clean() {
    let report = fuzz(&opts(1, 24, 4));
    assert_eq!(report.cases, 24);
    assert!(report.ok(), "oracle violations on seed 1:\n{}", report.render());
    // The sweep exercised a spread of the catalogue and predicted at
    // least one catch per mechanism (a degenerate sweep that predicts
    // nothing would vacuously pass).
    assert!(report.kind_counts.len() >= 5, "kinds: {:?}", report.kind_counts);
    for mech in ["softbound", "lowfat", "redzone"] {
        assert!(report.caught_counts[mech] > 0, "no predicted catches for {mech}");
    }
}

#[test]
fn report_is_deterministic_across_worker_counts() {
    let a = fuzz(&opts(2, 12, 1)).render();
    let b = fuzz(&opts(2, 12, 8)).render();
    assert_eq!(a, b, "report must not depend on --jobs");
}

#[test]
fn replay_matches_the_sweep() {
    // A case that passes in the sweep must also pass when replayed in
    // isolation (the replay contract: `(seed, index)` fully determines
    // the case).
    let (text, failed) = fuzz::replay(3, 5);
    assert!(!failed, "replay failed:\n{text}");
    assert!(text.contains("oracle: pass"));
    assert!(text.contains("--- mutant ---"));
}
