//! Appendix B: SoftBound bounds narrowing to struct members.
//!
//! The paper argues automatic narrowing is a double-edged sword: it is the
//! only way to detect intra-object overflows, but it breaks legal C idioms
//! (`&P == &P.x`, iterating an array of structs through a member pointer).
//! Both edges are demonstrated here against the optional
//! `sb_narrow_member_bounds` flag.

use meminstrument::runtime::{compile, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::interp::Trap;
use memvm::VmConfig;

fn narrow_cfg() -> MiConfig {
    let mut c = MiConfig::new(Mechanism::SoftBound);
    c.sb_narrow_member_bounds = true;
    c
}

fn run(src: &str, cfg: &MiConfig) -> Result<memvm::interp::ExecOutcome, Trap> {
    let module = cfront::compile(src).unwrap();
    compile(module, cfg, BuildOptions::default()).run_main(VmConfig::default())
}

/// The Figure 14 scenario, but written so the member arithmetic survives to
/// the access (via a pointer that the compiler cannot fold away).
const INTRA_OBJECT: &str = r#"
    struct simple_pair { int x; int y; };
    struct simple_pair P;
    int probe(int *py, long off) {
        return py[off];          /* off = -1 walks from y into x */
    }
    int helper(int *p, long off) { return probe(p, off); }
    long main(void) {
        P.x = 11;
        P.y = 22;
        return helper(&P.y, -1);
    }
"#;

#[test]
fn whole_object_bounds_miss_intra_object_overflow() {
    // Default SoftBound: &P.y's witness covers the whole struct; stepping
    // back into x is silent (Appendix B's starting point).
    let r = run(INTRA_OBJECT, &MiConfig::new(Mechanism::SoftBound));
    assert_eq!(r.unwrap().ret.unwrap().as_int(), 11);
}

#[test]
fn narrowing_detects_intra_object_overflow() {
    let r = run(INTRA_OBJECT, &narrow_cfg());
    assert!(
        matches!(r, Err(Trap::MemSafetyViolation { ref mechanism, .. }) if mechanism == "softbound"),
        "narrowed bounds must catch the member overflow: {r:?}"
    );
}

/// The appendix's counter-example: the standard guarantees `&P == &P.x`,
/// and programmers use a first-member pointer to reach the whole object.
const FIRST_MEMBER_IDIOM: &str = r#"
    struct simple_pair { int x; int y; };
    struct simple_pair P;
    int probe(int *px, long off) { return px[off]; }
    int helper(int *p, long off) { return probe(p, off); }
    long main(void) {
        P.x = 11;
        P.y = 22;
        /* legal: &P.x is the struct's address; y is within the object */
        return helper(&P.x, 1);
    }
"#;

#[test]
fn narrowing_false_positive_on_first_member_idiom() {
    // Without narrowing this legal program runs.
    let ok = run(FIRST_MEMBER_IDIOM, &MiConfig::new(Mechanism::SoftBound));
    assert_eq!(ok.unwrap().ret.unwrap().as_int(), 22);
    // With narrowing it is (falsely) rejected — the appendix's warning.
    let r = run(FIRST_MEMBER_IDIOM, &narrow_cfg());
    assert!(
        matches!(r, Err(Trap::MemSafetyViolation { .. })),
        "the appendix predicts a false positive here: {r:?}"
    );
}

#[test]
fn narrowing_leaves_plain_array_indexing_alone() {
    // Single-index geps (ordinary array indexing) are not narrowed.
    let src = r#"
        long main(void) {
            long a[8];
            long s = 0;
            for (long i = 0; i < 8; i += 1) { a[i] = i; s += a[i]; }
            return s;
        }
    "#;
    let module = cfront::compile(src).unwrap();
    let prog = compile(module, &narrow_cfg(), BuildOptions::default());
    assert_eq!(prog.stats.checks_narrowed, 0);
    assert_eq!(prog.run_main(VmConfig::default()).unwrap().ret.unwrap().as_int(), 28);
}

#[test]
fn narrowing_statistics_reported() {
    let module = cfront::compile(INTRA_OBJECT).unwrap();
    let prog = compile(module, &narrow_cfg(), BuildOptions::default());
    assert!(prog.stats.checks_narrowed > 0);
}
