//! The two-level bounds-metadata trie.
//!
//! Keys are pointer *locations* (the address a pointer value is stored at),
//! quantized to 8-byte slots. The primary level indexes fixed-size secondary
//! tables, mirroring the structure from Nagarakatte's runtime (and the
//! "trie data structure" of §3.2): a lookup is two dependent loads, which is
//! why it is charged more than a low-fat base recovery in the cost model.

use std::collections::HashMap;

/// A `(base, bound)` pair. `bound` is one past the last accessible byte.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Bounds {
    /// Lowest accessible address.
    pub base: u64,
    /// One past the highest accessible address.
    pub bound: u64,
}

impl Bounds {
    /// The "null" metadata: any access check against it fails.
    pub const NULL: Bounds = Bounds { base: 0, bound: 0 };
    /// Wide bounds: every access check against it succeeds (used for
    /// `inttoptr` results and size-unknown externals under the paper's
    /// `-mi-sb-*-wide-*` flags).
    pub const WIDE: Bounds = Bounds { base: 0, bound: u64::MAX };

    /// Whether these are the wide bounds.
    pub fn is_wide(self) -> bool {
        self == Bounds::WIDE
    }

    /// Whether an access of `width` bytes at `ptr` is within bounds
    /// (Figure 2 of the paper).
    pub fn allows(self, ptr: u64, width: u64) -> bool {
        ptr >= self.base && ptr.checked_add(width).is_some_and(|end| end <= self.bound)
    }
}

/// Entries per secondary-level table (covers 2^15 bytes of address space).
const SECONDARY_ENTRIES: usize = 1 << 12;

/// The two-level metadata trie.
#[derive(Default)]
pub struct MetadataTrie {
    primary: HashMap<u64, Box<[Bounds]>>,
    /// Number of secondary tables allocated (memory-overhead reporting).
    pub secondary_tables: u64,
}

impl MetadataTrie {
    /// An empty trie.
    pub fn new() -> MetadataTrie {
        MetadataTrie::default()
    }

    fn split(addr: u64) -> (u64, usize) {
        let slot = addr >> 3;
        (slot / SECONDARY_ENTRIES as u64, (slot % SECONDARY_ENTRIES as u64) as usize)
    }

    /// Records bounds for the pointer stored at `addr`.
    pub fn set(&mut self, addr: u64, bounds: Bounds) {
        let (hi, lo) = Self::split(addr);
        let table = self.primary.entry(hi).or_insert_with(|| {
            self.secondary_tables += 1;
            vec![Bounds::NULL; SECONDARY_ENTRIES].into_boxed_slice()
        });
        table[lo] = bounds;
    }

    /// Bounds recorded for the pointer stored at `addr` ([`Bounds::NULL`] if
    /// none were ever recorded — the "outdated or unavailable metadata"
    /// situation of the paper).
    pub fn get(&self, addr: u64) -> Bounds {
        let (hi, lo) = Self::split(addr);
        self.primary.get(&hi).map_or(Bounds::NULL, |t| t[lo])
    }

    /// Copies metadata for every 8-byte slot of `[src, src+len)` to the
    /// corresponding slot of `[dst, dst+len)` — the `copy_metadata` part of
    /// the `memcpy` wrapper (Figure 6 of the paper).
    pub fn copy_range(&mut self, dst: u64, src: u64, len: u64) {
        let slots = len / 8;
        if dst <= src {
            for i in 0..slots {
                let b = self.get(src + i * 8);
                self.set(dst + i * 8, b);
            }
        } else {
            for i in (0..slots).rev() {
                let b = self.get(src + i * 8);
                self.set(dst + i * 8, b);
            }
        }
    }
}

impl std::fmt::Debug for MetadataTrie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetadataTrie").field("secondary_tables", &self.secondary_tables).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_null_bounds() {
        let t = MetadataTrie::new();
        assert_eq!(t.get(0x1000), Bounds::NULL);
        assert!(!t.get(0x1000).allows(0x1000, 1));
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = MetadataTrie::new();
        let b = Bounds { base: 0x5000, bound: 0x5100 };
        t.set(0x1000, b);
        assert_eq!(t.get(0x1000), b);
        // Neighbouring slots are unaffected.
        assert_eq!(t.get(0x1008), Bounds::NULL);
        assert_eq!(t.get(0x0FF8), Bounds::NULL);
    }

    #[test]
    fn sub_slot_addresses_share_entry() {
        // Pointer locations are quantized to 8 bytes.
        let mut t = MetadataTrie::new();
        let b = Bounds { base: 1, bound: 2 };
        t.set(0x1000, b);
        assert_eq!(t.get(0x1007), b);
    }

    #[test]
    fn bounds_check_math() {
        let b = Bounds { base: 100, bound: 116 };
        assert!(b.allows(100, 8));
        assert!(b.allows(108, 8));
        assert!(!b.allows(109, 8)); // crosses the upper bound
        assert!(!b.allows(99, 1)); // below base
        assert!(b.allows(115, 1));
        assert!(!b.allows(116, 1)); // one-past-end may not be dereferenced
        assert!(Bounds::WIDE.allows(0xDEAD_BEEF, 4096));
        assert!(!Bounds::WIDE.allows(u64::MAX - 3, 8)); // overflow guarded
    }

    #[test]
    fn copy_range_moves_metadata() {
        let mut t = MetadataTrie::new();
        let b0 = Bounds { base: 10, bound: 20 };
        let b1 = Bounds { base: 30, bound: 40 };
        t.set(0x1000, b0);
        t.set(0x1008, b1);
        t.copy_range(0x2000, 0x1000, 16);
        assert_eq!(t.get(0x2000), b0);
        assert_eq!(t.get(0x2008), b1);
    }

    #[test]
    fn overlapping_copy_forward_and_backward() {
        let mut t = MetadataTrie::new();
        let b = |i: u64| Bounds { base: i, bound: i + 1 };
        for i in 0..4 {
            t.set(0x1000 + i * 8, b(i));
        }
        // Overlapping copy to a higher address (backward iteration needed).
        t.copy_range(0x1008, 0x1000, 32);
        for i in 0..4 {
            assert_eq!(t.get(0x1008 + i * 8), b(i));
        }
    }

    #[test]
    fn spans_secondary_tables() {
        let mut t = MetadataTrie::new();
        let far = 0x9999_0000_0000;
        t.set(far, Bounds { base: 1, bound: 2 });
        t.set(0x10, Bounds { base: 3, bound: 4 });
        assert_eq!(t.get(far).base, 1);
        assert_eq!(t.get(0x10).base, 3);
        assert_eq!(t.secondary_tables, 2);
    }
}
