//! The shadow stack for cross-call bounds propagation (§3.2).
//!
//! Operated in sync with the call stack: before a call, the caller pushes a
//! frame sized for the callee's pointer arguments and fills the argument
//! slots; the callee reads them by index (slot 1 is the first argument,
//! matching the `lookup_bs(1)` convention in Figure 6 of the paper); slot 0
//! carries the bounds of a returned pointer. *Uninstrumented* callers do not
//! maintain the stack — which is exactly how the stale-bounds problems of
//! §4.3 arise; this implementation reproduces that by simply reading
//! whatever the top frame holds.

use crate::trie::Bounds;

/// The shadow stack.
#[derive(Clone, Debug, Default)]
pub struct ShadowStack {
    slots: Vec<Bounds>,
    frames: Vec<usize>,
    /// High-water mark (memory-overhead reporting).
    pub max_depth: usize,
}

impl ShadowStack {
    /// An empty shadow stack with a sentinel frame (so that reads without
    /// any pushed frame see NULL bounds instead of panicking — this models
    /// an uninstrumented caller).
    pub fn new() -> ShadowStack {
        let mut ss = ShadowStack::default();
        ss.push_frame(8);
        ss
    }

    /// Pushes a frame with `nargs` argument slots (plus the return slot).
    pub fn push_frame(&mut self, nargs: usize) {
        self.frames.push(self.slots.len());
        self.slots.extend(std::iter::repeat_n(Bounds::NULL, nargs + 1));
        self.max_depth = self.max_depth.max(self.slots.len());
    }

    /// Pops the top frame.
    ///
    /// The sentinel frame is never popped; popping with only the sentinel
    /// left is a no-op (uninstrumented code may unbalance the stack — that
    /// is a modeled failure mode, not a bug).
    pub fn pop_frame(&mut self) {
        if self.frames.len() <= 1 {
            return;
        }
        let base = self.frames.pop().expect("frame");
        self.slots.truncate(base);
    }

    fn slot(&self, idx: usize) -> usize {
        let base = *self.frames.last().expect("sentinel frame");
        base + idx
    }

    /// Writes the bounds for argument `i` (1-based) of the frame being set
    /// up.
    pub fn set_arg(&mut self, i: usize, b: Bounds) {
        let s = self.slot(i);
        if s < self.slots.len() {
            self.slots[s] = b;
        }
    }

    /// Reads the bounds for argument `i` (1-based). Returns NULL bounds if
    /// the frame is too small (unbalanced, uninstrumented caller).
    pub fn arg(&self, i: usize) -> Bounds {
        self.slots.get(self.slot(i)).copied().unwrap_or(Bounds::NULL)
    }

    /// Writes the return-value bounds (slot 0).
    pub fn set_ret(&mut self, b: Bounds) {
        let s = self.slot(0);
        if s < self.slots.len() {
            self.slots[s] = b;
        }
    }

    /// Reads the return-value bounds (slot 0).
    pub fn ret(&self) -> Bounds {
        self.slots.get(self.slot(0)).copied().unwrap_or(Bounds::NULL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_roundtrip() {
        let mut ss = ShadowStack::new();
        ss.push_frame(2);
        let b1 = Bounds { base: 10, bound: 20 };
        let b2 = Bounds { base: 30, bound: 40 };
        ss.set_arg(1, b1);
        ss.set_arg(2, b2);
        assert_eq!(ss.arg(1), b1);
        assert_eq!(ss.arg(2), b2);
        ss.pop_frame();
    }

    #[test]
    fn ret_slot() {
        let mut ss = ShadowStack::new();
        ss.push_frame(0);
        let b = Bounds { base: 1, bound: 2 };
        ss.set_ret(b);
        assert_eq!(ss.ret(), b);
    }

    #[test]
    fn nested_frames_are_independent() {
        let mut ss = ShadowStack::new();
        ss.push_frame(1);
        ss.set_arg(1, Bounds { base: 1, bound: 2 });
        ss.push_frame(1);
        assert_eq!(ss.arg(1), Bounds::NULL, "new frame starts NULL");
        ss.set_arg(1, Bounds { base: 3, bound: 4 });
        ss.pop_frame();
        assert_eq!(ss.arg(1), Bounds { base: 1, bound: 2 });
    }

    #[test]
    fn stale_frame_models_uninstrumented_caller() {
        // An uninstrumented caller does not push a frame: the callee reads
        // whatever the previous (stale) frame contained — §4.3's failure.
        let mut ss = ShadowStack::new();
        ss.push_frame(1);
        ss.set_arg(1, Bounds { base: 111, bound: 222 });
        // ... imagine an uninstrumented call boundary here: no push ...
        assert_eq!(ss.arg(1), Bounds { base: 111, bound: 222 });
    }

    #[test]
    fn sentinel_survives_unbalanced_pops() {
        let mut ss = ShadowStack::new();
        ss.pop_frame();
        ss.pop_frame();
        assert_eq!(ss.arg(1), Bounds::NULL);
        ss.set_ret(Bounds { base: 5, bound: 6 });
        assert_eq!(ss.ret(), Bounds { base: 5, bound: 6 });
    }

    #[test]
    fn max_depth_tracks() {
        let mut ss = ShadowStack::new();
        ss.push_frame(3);
        ss.push_frame(3);
        let d = ss.max_depth;
        ss.pop_frame();
        ss.pop_frame();
        assert_eq!(ss.max_depth, d);
    }
}
