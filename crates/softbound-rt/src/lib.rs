#![warn(missing_docs)]

//! SoftBound runtime data structures.
//!
//! SoftBound (Nagarakatte et al., PLDI'09) keeps pointer bounds in
//! *disjoint metadata*: a [`trie::MetadataTrie`] maps in-memory pointer
//! locations to `(base, bound)` pairs, and a [`shadow_stack::ShadowStack`]
//! communicates bounds across function calls (§3.2 of the paper). This
//! crate implements both with the same observable semantics as the
//! reference runtime, including the failure modes the paper analyzes: the
//! trie is keyed by the *address the pointer is stored at*, so stores that
//! bypass pointer type (integer stores, byte-wise copies) silently leave
//! stale metadata behind (§§4.4–4.5).
//!
//! # Example
//!
//! ```
//! use softbound_rt::{Bounds, MetadataTrie};
//!
//! let mut trie = MetadataTrie::new();
//! // "A pointer with bounds [0x5000, 0x5040) is stored at 0x1000."
//! trie.set(0x1000, Bounds { base: 0x5000, bound: 0x5040 });
//!
//! let b = trie.get(0x1000);
//! assert!(b.allows(0x5000, 8));
//! assert!(!b.allows(0x5040, 1)); // one past the end: not dereferenceable
//!
//! // A location never written through a pointer type has NULL bounds —
//! // the §4.4/§4.5 stale-metadata failure mode.
//! assert_eq!(trie.get(0x2000), Bounds::NULL);
//! ```

pub mod shadow_stack;
pub mod trie;

pub use shadow_stack::ShadowStack;
pub use trie::{Bounds, MetadataTrie};
