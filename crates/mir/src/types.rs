//! The IR type system and target data layout.
//!
//! The type system matches the LLVM subset the paper's instrumentation deals
//! with: a handful of integer widths, `f64`, *opaque* pointers (like LLVM 15+;
//! `gep` therefore carries an explicit element type), and the aggregate types
//! (`array`, `struct`) needed to reproduce intra-object overflow scenarios
//! (Appendix B of the paper).
//!
//! The data layout is fixed to a 64-bit little-endian target with C-like
//! struct layout rules (each member aligned to its natural alignment, struct
//! size padded to the maximum member alignment).

use std::fmt;
use std::sync::Arc;

/// An IR type.
///
/// Aggregates are structural; two `struct { i32, i32 }` types compare equal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The type of instructions that produce no value (function return only).
    Void,
    /// 1-bit boolean, as produced by `icmp`/`fcmp`.
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 double.
    F64,
    /// An opaque pointer (8 bytes on the target).
    Ptr,
    /// A fixed-size array `[n x elem]`.
    Array(Arc<Type>, u64),
    /// A structure with C layout rules.
    Struct(Arc<Vec<Type>>),
}

/// Size of a pointer on the (only) supported target, in bytes.
pub const PTR_BYTES: u64 = 8;

impl Type {
    /// Convenience constructor for array types.
    pub fn array(elem: Type, len: u64) -> Type {
        Type::Array(Arc::new(elem), len)
    }

    /// Convenience constructor for struct types.
    pub fn structure(fields: Vec<Type>) -> Type {
        Type::Struct(Arc::new(fields))
    }

    /// Returns `true` for the integer types (`i1` through `i64`).
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64)
    }

    /// Returns `true` for `ptr`.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// Returns `true` for `f64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F64)
    }

    /// Returns `true` for types a `load`/`store` may operate on.
    pub fn is_first_class(&self) -> bool {
        !matches!(self, Type::Void)
    }

    /// Bit width of an integer type.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an integer type.
    pub fn int_bits(&self) -> u32 {
        match self {
            Type::I1 => 1,
            Type::I8 => 8,
            Type::I16 => 16,
            Type::I32 => 32,
            Type::I64 => 64,
            other => panic!("int_bits on non-integer type {other}"),
        }
    }

    /// Size of a value of this type in memory, in bytes.
    ///
    /// `i1` occupies one byte in memory. `void` has size 0.
    pub fn size_of(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 => 8,
            Type::F64 => 8,
            Type::Ptr => PTR_BYTES,
            Type::Array(elem, n) => elem.size_of() * n,
            Type::Struct(fields) => {
                let mut off = 0u64;
                let mut max_align = 1u64;
                for f in fields.iter() {
                    let a = f.align_of();
                    max_align = max_align.max(a);
                    off = round_up(off, a) + f.size_of();
                }
                round_up(off, max_align)
            }
        }
    }

    /// Natural alignment of this type in bytes.
    pub fn align_of(&self) -> u64 {
        match self {
            Type::Void => 1,
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
            Type::Array(elem, _) => elem.align_of(),
            Type::Struct(fields) => fields.iter().map(|f| f.align_of()).max().unwrap_or(1),
        }
    }

    /// Byte offset of struct field `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_offset(&self, idx: usize) -> u64 {
        match self {
            Type::Struct(fields) => {
                assert!(idx < fields.len(), "field index {idx} out of range");
                let mut off = 0u64;
                for (i, f) in fields.iter().enumerate() {
                    off = round_up(off, f.align_of());
                    if i == idx {
                        return off;
                    }
                    off += f.size_of();
                }
                unreachable!()
            }
            other => panic!("field_offset on non-struct type {other}"),
        }
    }

    /// The type of struct field `idx` or array element.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an aggregate or `idx` is out of range.
    pub fn element_type(&self, idx: usize) -> &Type {
        match self {
            Type::Struct(fields) => &fields[idx],
            Type::Array(elem, _) => elem,
            other => panic!("element_type on non-aggregate type {other}"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I16 => write!(f, "i16"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr => write!(f, "ptr"),
            Type::Array(elem, n) => write!(f, "[{n} x {elem}]"),
            Type::Struct(fields) => {
                write!(f, "{{")?;
                for (i, t) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {t}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

/// Rounds `v` up to the next multiple of `align` (`align` must be a power of
/// two greater than zero).
#[inline]
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::I1.size_of(), 1);
        assert_eq!(Type::I8.size_of(), 1);
        assert_eq!(Type::I16.size_of(), 2);
        assert_eq!(Type::I32.size_of(), 4);
        assert_eq!(Type::I64.size_of(), 8);
        assert_eq!(Type::F64.size_of(), 8);
        assert_eq!(Type::Ptr.size_of(), 8);
        assert_eq!(Type::Void.size_of(), 0);
    }

    #[test]
    fn array_layout() {
        let a = Type::array(Type::I32, 10);
        assert_eq!(a.size_of(), 40);
        assert_eq!(a.align_of(), 4);
        let nested = Type::array(Type::array(Type::I8, 3), 5);
        assert_eq!(nested.size_of(), 15);
        assert_eq!(nested.align_of(), 1);
    }

    #[test]
    fn struct_layout_with_padding() {
        // struct { i8, i64, i32 } -> offsets 0, 8, 16; size 24 (tail padded).
        let s = Type::structure(vec![Type::I8, Type::I64, Type::I32]);
        assert_eq!(s.field_offset(0), 0);
        assert_eq!(s.field_offset(1), 8);
        assert_eq!(s.field_offset(2), 16);
        assert_eq!(s.size_of(), 24);
        assert_eq!(s.align_of(), 8);
    }

    #[test]
    fn struct_simple_pair() {
        // The Appendix B `simple_pair`: struct { i32, i32 }.
        let s = Type::structure(vec![Type::I32, Type::I32]);
        assert_eq!(s.size_of(), 8);
        assert_eq!(s.field_offset(1), 4);
    }

    #[test]
    fn empty_struct() {
        let s = Type::structure(vec![]);
        assert_eq!(s.size_of(), 0);
        assert_eq!(s.align_of(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::array(Type::I8, 4).to_string(), "[4 x i8]");
        assert_eq!(Type::structure(vec![Type::I32, Type::Ptr]).to_string(), "{ i32, ptr }");
    }

    #[test]
    fn structural_equality() {
        let a = Type::structure(vec![Type::I32, Type::I32]);
        let b = Type::structure(vec![Type::I32, Type::I32]);
        assert_eq!(a, b);
    }

    #[test]
    fn round_up_works() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
    }
}
