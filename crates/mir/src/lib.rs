#![warn(missing_docs)]

//! A small LLVM-like SSA intermediate representation.
//!
//! `mir` is the compiler substrate of the MemInstrument reproduction: a typed
//! SSA IR with opaque pointers, a textual format (printer + parser), a
//! verifier, standard analyses (CFG, dominator tree, natural loops), and an
//! optimizing pass pipeline with the three *extension points* the paper
//! evaluates (`ModuleOptimizerEarly`, `ScalarOptimizerLate`,
//! `VectorizerStart`, cf. Figure 8 of the paper).
//!
//! The IR deliberately mirrors the LLVM subset the paper's instrumentation
//! operates on: `alloca`/`load`/`store` for memory, `gep` for pointer
//! arithmetic, `phi`/`select` for SSA joins, `inttoptr`/`ptrtoint`/`bitcast`
//! casts (the §4.4 pitfalls), and calls — including calls to *host functions*
//! that model the linked runtime library.
//!
//! # Example
//!
//! ```
//! use mir::builder::ModuleBuilder;
//! use mir::types::Type;
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut fb = mb.function("main", vec![], Type::I64);
//! let forty_two = fb.const_i64(42);
//! fb.ret(Some(forty_two));
//! fb.finish();
//! let module = mb.finish();
//! assert!(mir::verifier::verify_module(&module).is_ok());
//! ```

pub mod analysis;
pub mod builder;
pub mod function;
pub mod ids;
pub mod instr;
pub mod module;
pub mod parser;
pub mod passes;
pub mod pipeline;
pub mod printer;
pub mod srcloc;
pub mod trace;
pub mod types;
pub mod verifier;

pub use function::{Block, Function, Param, ValueDef, ValueInfo};
pub use ids::{BlockId, FuncId, GlobalId, InstrId, ValueId};
pub use instr::{BinOp, CastOp, FcmpPred, IcmpPred, Instr, InstrKind, Operand, Terminator};
pub use module::{Effect, Global, GlobalAttrs, HostDecl, Init, Module};
pub use pipeline::{ExtensionPoint, OptLevel, Pipeline};
pub use srcloc::{AllocKind, AllocSite, CheckSite, SiteKind, SrcLoc};
pub use types::Type;
