//! IR well-formedness verification.
//!
//! The verifier checks structural SSA invariants (defs dominate uses, phi
//! incoming lists match predecessors), type agreement of operands, and call
//! signatures against module/host declarations. Passes and instrumentation
//! are validated by running the verifier after every transformation in
//! tests.

use std::collections::BTreeSet;
use std::fmt;

use crate::analysis::{Cfg, DomTree};
use crate::function::{Function, ValueDef};
use crate::ids::{BlockId, ValueId};
use crate::instr::{CastOp, InstrKind, Operand, Terminator};
use crate::module::Module;
use crate::types::Type;

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Function in which the error occurred (if any).
    pub function: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "in @{func}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut names = BTreeSet::new();
    for f in &m.functions {
        if !names.insert(f.name.clone()) {
            return Err(VerifyError {
                function: None,
                message: format!("duplicate function @{}", f.name),
            });
        }
        verify_function(m, f)
            .map_err(|msg| VerifyError { function: Some(f.name.clone()), message: msg })?;
    }
    Ok(())
}

/// Verifies a single function against its module context.
fn verify_function(m: &Module, f: &Function) -> Result<(), String> {
    if f.is_declaration {
        if !f.blocks.is_empty() {
            return Err("declaration with body".into());
        }
        return Ok(());
    }
    if f.blocks.is_empty() {
        return Err("definition without blocks".into());
    }

    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);

    // Map each value to its defining block (for dominance checking).
    // Parameters are defined "before entry".
    let mut def_block: Vec<Option<BlockId>> = vec![None; f.values.len()];
    let mut def_pos: Vec<usize> = vec![0; f.values.len()];
    for (bid, block) in f.iter_blocks() {
        for (pos, &iid) in block.instrs.iter().enumerate() {
            let instr = &f.instrs[iid.index()];
            if matches!(instr.kind, InstrKind::Nop) {
                return Err(format!("tombstone instruction {iid} linked in {bid}"));
            }
            if let Some(r) = instr.result {
                if def_block[r.index()].is_some() {
                    return Err(format!("value {r} defined twice"));
                }
                if f.values[r.index()].def != ValueDef::Instr(iid) {
                    return Err(format!("value table def mismatch for {r}"));
                }
                let expect = instr.kind.result_type();
                if expect.as_ref() != Some(&f.values[r.index()].ty) {
                    return Err(format!("result type mismatch for {r}"));
                }
                def_block[r.index()] = Some(bid);
                def_pos[r.index()] = pos;
            } else if instr.kind.result_type().is_some() {
                return Err(format!("instruction {iid} should define a value but has no result"));
            }
        }
        for s in block.term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(format!("terminator of {bid} targets invalid block {s}"));
            }
        }
    }

    let check_operand_defined = |op: &Operand| -> Result<(), String> {
        if let Operand::Val(v) = op {
            if v.index() >= f.values.len() {
                return Err(format!("operand references invalid value {v}"));
            }
        }
        if let Operand::GlobalAddr(g) = op {
            if g.index() >= m.globals.len() {
                return Err(format!("operand references invalid global {g}"));
            }
        }
        if let Operand::FuncAddr(name) = op {
            if m.function_by_name(name).is_none() {
                return Err(format!("operand references unknown function @{name}"));
            }
        }
        Ok(())
    };

    // A use of value v at (block, position) must be dominated by its def.
    let dominates_use = |v: ValueId, use_block: BlockId, use_pos: usize| -> bool {
        match f.values[v.index()].def {
            ValueDef::Param(_) => true,
            ValueDef::Instr(_) => match def_block[v.index()] {
                None => false, // defined by unlinked instruction
                Some(db) => {
                    if db == use_block {
                        def_pos[v.index()] < use_pos
                    } else {
                        dom.strictly_dominates(db, use_block)
                    }
                }
            },
        }
    };

    for (bid, block) in f.iter_blocks() {
        if !cfg.is_reachable(bid) {
            continue; // dominance is undefined for unreachable code
        }
        let mut seen_non_phi = false;
        for (pos, &iid) in block.instrs.iter().enumerate() {
            let instr = &f.instrs[iid.index()];
            let mut err: Option<String> = None;
            instr.kind.for_each_operand(|op| {
                if err.is_some() {
                    return;
                }
                if let Err(e) = check_operand_defined(op) {
                    err = Some(e);
                }
            });
            if let Some(e) = err {
                return Err(e);
            }

            match &instr.kind {
                InstrKind::Phi { ty, incoming } => {
                    if seen_non_phi {
                        return Err(format!("phi {iid} after non-phi instruction in {bid}"));
                    }
                    let preds: BTreeSet<BlockId> = cfg.preds(bid).iter().copied().collect();
                    let inc: BTreeSet<BlockId> = incoming.iter().map(|(b, _)| *b).collect();
                    if preds != inc {
                        return Err(format!(
                            "phi {iid} incoming blocks {inc:?} do not match predecessors {preds:?} of {bid}"
                        ));
                    }
                    if incoming.len() != inc.len() {
                        return Err(format!("phi {iid} has duplicate incoming blocks"));
                    }
                    for (pred, op) in incoming {
                        let opty = f.operand_type(op);
                        if opty != *ty && !matches!(op, Operand::Undef(_)) {
                            return Err(format!(
                                "phi {iid} incoming from {pred} has type {opty}, expected {ty}"
                            ));
                        }
                        // Phi uses are checked at the end of the incoming block.
                        if let Operand::Val(v) = op {
                            if cfg.is_reachable(*pred)
                                && !dominates_use(*v, *pred, f.blocks[pred.index()].instrs.len())
                            {
                                return Err(format!(
                                    "phi {iid} operand {v} does not dominate edge from {pred}"
                                ));
                            }
                        }
                    }
                }
                other => {
                    seen_non_phi = true;
                    let mut err: Option<String> = None;
                    other.for_each_operand(|op| {
                        if err.is_some() {
                            return;
                        }
                        if let Operand::Val(v) = op {
                            if !dominates_use(*v, bid, pos) {
                                err = Some(format!(
                                    "use of {v} at {bid}:{pos} not dominated by its definition"
                                ));
                            }
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    verify_instr_types(m, f, other)?;
                }
            }
        }
        verify_terminator(f, bid, &block.term, &dominates_use)?;
    }
    Ok(())
}

fn verify_instr_types(m: &Module, f: &Function, kind: &InstrKind) -> Result<(), String> {
    let ty_of = |op: &Operand| f.operand_type(op);
    match kind {
        InstrKind::Load { ptr, .. } => {
            if !ty_of(ptr).is_ptr() {
                return Err("load pointer operand is not ptr".into());
            }
        }
        InstrKind::Store { ty, value, ptr } => {
            if !ty_of(ptr).is_ptr() {
                return Err("store pointer operand is not ptr".into());
            }
            let vt = ty_of(value);
            if vt != *ty && !matches!(value, Operand::Undef(_)) {
                return Err(format!("store value type {vt} does not match annotation {ty}"));
            }
        }
        InstrKind::Gep { base, indices, .. } => {
            if !ty_of(base).is_ptr() {
                return Err("gep base is not ptr".into());
            }
            if indices.is_empty() {
                return Err("gep without indices".into());
            }
            for idx in indices {
                if !ty_of(idx).is_int() {
                    return Err("gep index is not an integer".into());
                }
            }
        }
        InstrKind::Select { ty, cond, then_value, else_value } => {
            if ty_of(cond) != Type::I1 {
                return Err("select condition is not i1".into());
            }
            for v in [then_value, else_value] {
                let vt = ty_of(v);
                if vt != *ty && !matches!(v, Operand::Undef(_)) {
                    return Err(format!("select arm type {vt} does not match {ty}"));
                }
            }
        }
        InstrKind::Bin { op, ty, lhs, rhs } => {
            if op.is_float() {
                if *ty != Type::F64 {
                    return Err("float binop on non-f64".into());
                }
            } else if !ty.is_int() {
                return Err(format!("integer binop on non-integer type {ty}"));
            }
            for v in [lhs, rhs] {
                let vt = ty_of(v);
                if vt != *ty && !matches!(v, Operand::Undef(_)) {
                    return Err(format!("binop operand type {vt} does not match {ty}"));
                }
            }
        }
        InstrKind::Icmp { ty, lhs, rhs, .. } => {
            if !ty.is_int() && !ty.is_ptr() {
                return Err("icmp on non-integer, non-pointer type".into());
            }
            for v in [lhs, rhs] {
                let vt = ty_of(v);
                if vt != *ty && !matches!(v, Operand::Undef(_)) {
                    return Err(format!("icmp operand type {vt} does not match {ty}"));
                }
            }
        }
        InstrKind::Fcmp { lhs, rhs, .. } => {
            for v in [lhs, rhs] {
                if ty_of(v) != Type::F64 && !matches!(v, Operand::Undef(_)) {
                    return Err("fcmp operand is not f64".into());
                }
            }
        }
        InstrKind::Cast { op, value, from, to } => {
            let vt = ty_of(value);
            if vt != *from && !matches!(value, Operand::Undef(_)) {
                return Err(format!("cast source type {vt} does not match annotation {from}"));
            }
            let ok = match op {
                CastOp::Zext | CastOp::Sext => {
                    from.is_int() && to.is_int() && from.int_bits() < to.int_bits()
                }
                CastOp::Trunc => from.is_int() && to.is_int() && from.int_bits() > to.int_bits(),
                CastOp::PtrToInt => from.is_ptr() && to.is_int(),
                CastOp::IntToPtr => from.is_int() && to.is_ptr(),
                CastOp::Bitcast => from.size_of() == to.size_of(),
                CastOp::SiToFp => from.is_int() && *to == Type::F64,
                CastOp::FpToSi => *from == Type::F64 && to.is_int(),
            };
            if !ok {
                return Err(format!("invalid cast {} {from} to {to}", op.mnemonic()));
            }
        }
        InstrKind::Call { callee, args, ret } => {
            if let Some((_, callee_f)) = m.function_by_name(callee) {
                if callee_f.params.len() != args.len() {
                    return Err(format!(
                        "call to @{callee} with {} args, expected {}",
                        args.len(),
                        callee_f.params.len()
                    ));
                }
                if callee_f.ret_ty != *ret {
                    return Err(format!(
                        "call to @{callee} annotated {ret}, function returns {}",
                        callee_f.ret_ty
                    ));
                }
                for (arg, param) in args.iter().zip(&callee_f.params) {
                    let at = ty_of(arg);
                    if at != param.ty && !matches!(arg, Operand::Undef(_)) {
                        return Err(format!(
                            "call to @{callee}: arg type {at} does not match param {}",
                            param.ty
                        ));
                    }
                }
            } else if let Some(decl) = m.host_decls.get(callee) {
                if decl.params.len() != args.len() {
                    return Err(format!(
                        "host call @{callee} with {} args, expected {}",
                        args.len(),
                        decl.params.len()
                    ));
                }
                if decl.ret != *ret {
                    return Err(format!(
                        "host call @{callee} annotated {ret}, declared {}",
                        decl.ret
                    ));
                }
            } else {
                return Err(format!("call to undeclared callee @{callee}"));
            }
        }
        InstrKind::CallIndirect { callee, .. } => {
            if !ty_of(callee).is_ptr() {
                return Err("indirect call through non-pointer".into());
            }
        }
        InstrKind::MemCpy { dst, src, len } => {
            if !ty_of(dst).is_ptr() || !ty_of(src).is_ptr() {
                return Err("memcpy operands must be pointers".into());
            }
            if !ty_of(len).is_int() {
                return Err("memcpy length must be integer".into());
            }
        }
        InstrKind::MemSet { dst, byte, len } => {
            if !ty_of(dst).is_ptr() {
                return Err("memset destination must be a pointer".into());
            }
            if !ty_of(byte).is_int() || !ty_of(len).is_int() {
                return Err("memset byte/length must be integers".into());
            }
        }
        InstrKind::Alloca { count, .. } => {
            if !ty_of(count).is_int() {
                return Err("alloca count must be an integer".into());
            }
        }
        InstrKind::Phi { .. } | InstrKind::Nop => {}
    }
    Ok(())
}

fn verify_terminator(
    f: &Function,
    bid: BlockId,
    term: &Terminator,
    dominates_use: &dyn Fn(ValueId, BlockId, usize) -> bool,
) -> Result<(), String> {
    let end = f.blocks[bid.index()].instrs.len();
    match term {
        Terminator::Ret(op) => {
            match (op, &f.ret_ty) {
                (None, Type::Void) => {}
                (None, other) => {
                    return Err(format!("ret without value in function returning {other}"))
                }
                (Some(_), Type::Void) => return Err("ret with value in void function".into()),
                (Some(v), want) => {
                    let vt = f.operand_type(v);
                    if vt != *want && !matches!(v, Operand::Undef(_)) {
                        return Err(format!("ret type {vt} does not match function type {want}"));
                    }
                }
            }
            if let Some(Operand::Val(v)) = op {
                if !dominates_use(*v, bid, end) {
                    return Err(format!("ret uses {v} not dominated by its definition"));
                }
            }
        }
        Terminator::CondBr { cond, .. } => {
            if f.operand_type(cond) != Type::I1 {
                return Err("condbr condition is not i1".into());
            }
            if let Operand::Val(v) = cond {
                if !dominates_use(*v, bid, end) {
                    return Err(format!("condbr uses {v} not dominated by its definition"));
                }
            }
        }
        Terminator::Br(_) | Terminator::Unreachable => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{BinOp, Operand};
    use crate::types::Type;

    #[test]
    fn accepts_valid_module() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let x = fb.param(0);
        let y = fb.add(Type::I64, x, Operand::i64(1));
        fb.ret(Some(y));
        fb.finish();
        assert!(verify_module(&mb.finish()).is_ok());
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I32)], Type::I64);
        let x = fb.param(0);
        // i32 operand in an i64 add.
        let y = fb.bin(BinOp::Add, Type::I64, x, Operand::i64(1));
        fb.ret(Some(y));
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("binop operand type"), "{err}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        // Build a use of a value defined later in the same block by
        // assembling manually.
        let f = fb.func_mut();
        let entry = crate::ids::BlockId::new(0);
        let add1 = f.create_instr(InstrKind::Bin {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Operand::i64(1),
            rhs: Operand::i64(2),
        });
        let v1 = f.instr_result(add1).unwrap();
        let add2 = f.create_instr(InstrKind::Bin {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Operand::Val(v1),
            rhs: Operand::i64(3),
        });
        // Link in the wrong order: add2 first.
        f.blocks[0].instrs.push(add2);
        f.blocks[0].instrs.push(add1);
        let v2 = f.instr_result(add2).unwrap();
        let _ = entry;
        fb.ret(Some(Operand::Val(v2)));
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("not dominated"), "{err}");
    }

    #[test]
    fn rejects_call_to_unknown() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.call("missing", Type::Void, vec![]);
        fb.ret(None);
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("undeclared callee"), "{err}");
    }

    #[test]
    fn rejects_bad_phi_preds() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let next = fb.new_block("next");
        fb.br(next);
        fb.switch_to(next);
        // Phi claims an incoming edge from a non-predecessor.
        let v =
            fb.phi(Type::I64, vec![(BlockId::new(0), Operand::i64(1)), (next, Operand::i64(2))]);
        fb.ret(Some(v));
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("do not match predecessors"), "{err}");
    }

    #[test]
    fn rejects_duplicate_functions() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.ret(None);
        fb.finish();
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.ret(None);
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_invalid_cast() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let x = fb.param(0);
        let y = fb.cast(CastOp::Zext, x, Type::I64, Type::I64); // same width zext
        fb.ret(Some(y));
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("invalid cast"), "{err}");
    }

    #[test]
    fn accepts_ret_void() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.ret(None);
        fb.finish();
        assert!(verify_module(&mb.finish()).is_ok());
    }

    #[test]
    fn rejects_ret_type_mismatch() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        fb.ret(Some(Operand::i32(1)));
        fb.finish();
        let err = verify_module(&mb.finish()).unwrap_err();
        assert!(err.message.contains("ret type"), "{err}");
    }
}
