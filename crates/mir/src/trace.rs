//! Pass-pipeline trace recording.
//!
//! A [`TraceRecorder`] collects one [`PassSpan`] per executed pass: which
//! pipeline stage it ran in, how long it took (wall clock), and what it did
//! to the IR (live instruction/block counts before and after, whether it
//! reported a change). The recorder renders Chrome `trace_event` JSON
//! (loadable in Perfetto / `chrome://tracing`).
//!
//! **Determinism.** The emitted JSON is byte-for-byte reproducible for a
//! given module and pipeline: timestamps and durations are *logical* units
//! (one unit per live instruction the pass observed), not wall-clock, so
//! traces compare equal across machines, runs, and worker counts. The
//! measured wall-clock time is still recorded on each span
//! ([`PassSpan::wall_nanos`]) for in-process consumers such as the `bench`
//! driver's stage timings — it is deliberately excluded from the JSON.

use std::fmt::Write as _;

use crate::module::Module;

/// One executed pass: IR-delta counters plus wall-clock time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassSpan {
    /// Pass name (e.g. `gvn`, or the plugin's [`crate::passes::ModulePass::name`]).
    pub name: String,
    /// Stage label (e.g. `stage0`, `plugin@VectorizerStart`).
    pub stage: String,
    /// Wall-clock time the pass took, in nanoseconds. Not part of the
    /// serialized trace (see module docs).
    pub wall_nanos: u128,
    /// Live instructions before the pass ran.
    pub instrs_before: u64,
    /// Live instructions after the pass ran.
    pub instrs_after: u64,
    /// Basic blocks before the pass ran.
    pub blocks_before: u64,
    /// Basic blocks after the pass ran.
    pub blocks_after: u64,
    /// Whether the pass reported changing the module.
    pub changed: bool,
}

impl PassSpan {
    /// Logical duration of the span: one unit per live instruction the
    /// pass observed (minimum 1, so every span is visible in viewers).
    pub fn logical_dur(&self) -> u64 {
        self.instrs_before.max(1)
    }
}

/// Records the passes executed by a pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceRecorder {
    spans: Vec<PassSpan>,
}

/// Counts live (non-tombstoned) instructions in `m`.
fn live_instrs(m: &Module) -> u64 {
    m.functions.iter().flat_map(|f| f.blocks.iter()).map(|b| b.instrs.len() as u64).sum()
}

fn block_count(m: &Module) -> u64 {
    m.functions.iter().map(|f| f.blocks.len() as u64).sum()
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Runs `pass` on `m` and records a span for it under `stage`.
    /// `pass` returns whether it changed the module.
    pub fn record_pass(
        &mut self,
        stage: &str,
        name: &str,
        m: &mut Module,
        pass: impl FnOnce(&mut Module) -> bool,
    ) -> bool {
        let instrs_before = live_instrs(m);
        let blocks_before = block_count(m);
        let start = std::time::Instant::now();
        let changed = pass(m);
        let wall_nanos = start.elapsed().as_nanos();
        self.spans.push(PassSpan {
            name: name.to_string(),
            stage: stage.to_string(),
            wall_nanos,
            instrs_before,
            instrs_after: live_instrs(m),
            blocks_before,
            blocks_after: block_count(m),
            changed,
        });
        changed
    }

    /// The recorded spans, in execution order.
    pub fn spans(&self) -> &[PassSpan] {
        &self.spans
    }

    /// Total wall-clock time across all spans, in nanoseconds.
    pub fn total_wall_nanos(&self) -> u128 {
        self.spans.iter().map(|s| s.wall_nanos).sum()
    }

    /// Serializes the recorded spans as one complete-event (`"ph":"X"`)
    /// per pass on thread `tid`, appending to `out`. Returns the logical
    /// end time. Used by multi-track writers; most callers want
    /// [`TraceRecorder::to_chrome_trace`].
    pub fn write_chrome_events(&self, out: &mut Vec<String>, pid: u64, tid: u64) -> u64 {
        let mut ts = 0u64;
        for s in &self.spans {
            let dur = s.logical_dur();
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
                 \"pid\":{pid},\"tid\":{tid},\"args\":{{\
                 \"instrs_before\":{},\"instrs_after\":{},\
                 \"blocks_before\":{},\"blocks_after\":{},\
                 \"changed\":{}}}}}",
                json_string(&s.name),
                json_string(&s.stage),
                s.instrs_before,
                s.instrs_after,
                s.blocks_before,
                s.blocks_after,
                s.changed,
            );
            out.push(e);
            ts += dur;
        }
        ts
    }

    /// Renders the whole trace as a Chrome `trace_event` JSON document
    /// (an object with a `traceEvents` array), viewable in Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace_document(&[("pipeline".to_string(), self.clone())])
    }
}

/// Renders several named traces as one Chrome `trace_event` document, one
/// thread track per trace (in the given order). Deterministic: callers
/// wanting byte-stable output across parallel runs must order the tracks
/// themselves (e.g. sort by label).
pub fn chrome_trace_document(tracks: &[(String, TraceRecorder)]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, (label, rec)) in tracks.iter().enumerate() {
        let tid = i as u64 + 1;
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_string(label)
        ));
        rec.write_chrome_events(&mut events, 1, tid);
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Operand;
    use crate::types::Type;

    fn tiny_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.function("main", vec![], Type::I64);
        let v = fb.add(Type::I64, Operand::i64(1), Operand::i64(2));
        fb.ret(Some(v));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn records_spans_with_ir_deltas() {
        let mut m = tiny_module();
        let mut rec = TraceRecorder::new();
        let changed = rec.record_pass("stage0", "noop", &mut m, |_| false);
        assert!(!changed);
        assert_eq!(rec.spans().len(), 1);
        let s = &rec.spans()[0];
        assert_eq!(s.name, "noop");
        assert_eq!(s.stage, "stage0");
        assert_eq!(s.instrs_before, s.instrs_after);
        assert!(!s.changed);
    }

    #[test]
    fn chrome_trace_is_deterministic_and_excludes_wall_clock() {
        let render = || {
            let mut m = tiny_module();
            let mut rec = TraceRecorder::new();
            rec.record_pass("stage0", "a", &mut m, |_| false);
            rec.record_pass("stage1", "b", &mut m, |_| true);
            rec.to_chrome_trace()
        };
        let a = render();
        let b = render();
        // Wall-clock differs between the two runs, but the JSON must not.
        assert_eq!(a, b);
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(!a.contains("wall"));
    }

    #[test]
    fn logical_timestamps_accumulate() {
        let mut m = tiny_module();
        let mut rec = TraceRecorder::new();
        rec.record_pass("s", "a", &mut m, |_| false);
        rec.record_pass("s", "b", &mut m, |_| false);
        let mut events = Vec::new();
        let end = rec.write_chrome_events(&mut events, 1, 1);
        assert_eq!(events.len(), 2);
        let d0 = rec.spans()[0].logical_dur();
        assert!(events[1].contains(&format!("\"ts\":{d0}")));
        assert_eq!(end, d0 + rec.spans()[1].logical_dur());
    }

    #[test]
    fn multi_track_document_names_threads() {
        let mut m = tiny_module();
        let mut rec = TraceRecorder::new();
        rec.record_pass("s", "a", &mut m, |_| false);
        let doc = chrome_trace_document(&[("x".to_string(), rec.clone()), ("y".to_string(), rec)]);
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"name\":\"x\""));
        assert!(doc.contains("\"name\":\"y\""));
        assert!(doc.contains("\"tid\":2"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
