//! Textual printing of modules in an LLVM-flavoured syntax.
//!
//! The format round-trips through [`crate::parser`]; the test-suite checks
//! `parse(print(m))` structural equality for representative modules.

use std::fmt::Write as _;

use crate::function::Function;
use crate::ids::BlockId;
use crate::instr::{InstrKind, Operand, Terminator};
use crate::module::{Effect, Init, Module};

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module @{}", m.name);
    if let Some(file) = &m.src_file {
        let escaped = file.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(out, "source \"{escaped}\"");
    }
    for (name, decl) in &m.host_decls {
        let params = decl.params.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let eff = match decl.effect {
            Effect::Pure => " pure",
            Effect::ReadOnly => " readonly",
            Effect::Effectful => "",
        };
        let _ = writeln!(out, "hostdecl {} @{}({}){}", decl.ret, name, params, eff);
    }
    for g in &m.globals {
        let mut attrs = String::new();
        if g.attrs.external {
            attrs.push_str(" external");
        }
        if g.attrs.size_unknown {
            attrs.push_str(" size_unknown");
        }
        if g.attrs.uninstrumented_lib {
            attrs.push_str(" uninstrumented_lib");
        }
        if g.attrs.lowfat {
            attrs.push_str(" lowfat");
        }
        match &g.init {
            Init::Zero => {
                let _ = writeln!(out, "global @{} : {} = zero{}", g.name, g.ty, attrs);
            }
            Init::Bytes(b) => {
                let bytes = b.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ");
                let _ = writeln!(out, "global @{} : {} = bytes [{}]{}", g.name, g.ty, bytes, attrs);
            }
        }
    }
    for site in &m.check_sites {
        out.push_str(&format_check_site(site));
        out.push('\n');
    }
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

fn format_check_site(site: &crate::srcloc::CheckSite) -> String {
    let mut s = format!(
        "checksite @{} {} {}",
        site.func,
        site.kind.keyword(),
        if site.is_store { "write" } else { "read" }
    );
    if let Some(w) = site.width {
        let _ = write!(s, " width {w}");
    }
    if let Some(l) = site.line {
        let _ = write!(s, " line {l}");
    }
    if let Some(a) = &site.alloc {
        let _ = write!(s, " obj {}", a.kind.keyword());
        if let Some(name) = &a.name {
            let _ = write!(s, " @{name}");
        }
        if let Some(sz) = a.size {
            let _ = write!(s, " size {sz}");
        }
        if let Some(l) = a.line {
            let _ = write!(s, " line {l}");
        }
    }
    s
}

/// Renders one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params = f
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{} %v{}", p.ty, i))
        .collect::<Vec<_>>()
        .join(", ");
    let mut attrs = String::new();
    if f.attrs.uninstrumented {
        attrs.push_str(" uninstrumented");
    }
    if f.attrs.no_instrument {
        attrs.push_str(" no_instrument");
    }
    if f.is_declaration {
        let _ = writeln!(out, "declare {} @{}({}){}", f.ret_ty, f.name, params, attrs);
        return out;
    }
    let _ = writeln!(out, "define {} @{}({}){} {{", f.ret_ty, f.name, params, attrs);
    for (bid, block) in f.iter_blocks() {
        let _ = writeln!(out, "{}:", bid);
        for &iid in &block.instrs {
            let instr = &f.instrs[iid.index()];
            let _ = writeln!(out, "  {}", format_instr(f, instr));
        }
        let _ = writeln!(out, "  {}", format_term(&block.term));
    }
    out.push_str("}\n");
    out
}

fn fmt_op(op: &Operand) -> String {
    match op {
        Operand::Val(v) => v.to_string(),
        Operand::ConstInt { ty, value } => format!("{ty} {value}"),
        Operand::ConstFloat(v) => {
            // Bit-exact float printing for round-trips.
            format!("f64 0x{:016x}", v.to_bits())
        }
        Operand::Null => "null".to_string(),
        Operand::GlobalAddr(g) => g.to_string(),
        Operand::FuncAddr(name) => format!("@fn:{name}"),
        Operand::Undef(ty) => format!("undef {ty}"),
    }
}

fn fmt_ops(ops: &[Operand]) -> String {
    ops.iter().map(fmt_op).collect::<Vec<_>>().join(", ")
}

fn format_instr(f: &Function, instr: &crate::instr::Instr) -> String {
    let lhs = match instr.result {
        Some(v) => format!("{v} = "),
        None => String::new(),
    };
    let rhs = match &instr.kind {
        InstrKind::Alloca { ty, count } => format!("alloca {}, {}", ty, fmt_op(count)),
        InstrKind::Load { ty, ptr } => format!("load {}, {}", ty, fmt_op(ptr)),
        InstrKind::Store { ty, value, ptr } => {
            format!("store {}, {}, {}", ty, fmt_op(value), fmt_op(ptr))
        }
        InstrKind::Gep { elem_ty, base, indices } => {
            format!("gep {}, {}, [{}]", elem_ty, fmt_op(base), fmt_ops(indices))
        }
        InstrKind::Phi { ty, incoming } => {
            let inc = incoming
                .iter()
                .map(|(b, op)| format!("[{b}: {}]", fmt_op(op)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("phi {ty}, {inc}")
        }
        InstrKind::Select { ty, cond, then_value, else_value } => format!(
            "select {}, {}, {}, {}",
            ty,
            fmt_op(cond),
            fmt_op(then_value),
            fmt_op(else_value)
        ),
        InstrKind::Bin { op, ty, lhs: a, rhs: b } => {
            format!("{} {}, {}, {}", op.mnemonic(), ty, fmt_op(a), fmt_op(b))
        }
        InstrKind::Icmp { pred, ty, lhs: a, rhs: b } => {
            format!("icmp {} {}, {}, {}", pred.mnemonic(), ty, fmt_op(a), fmt_op(b))
        }
        InstrKind::Fcmp { pred, lhs: a, rhs: b } => {
            format!("fcmp {} {}, {}", pred.mnemonic(), fmt_op(a), fmt_op(b))
        }
        InstrKind::Cast { op, value, from, to } => {
            format!("{} {}, {} to {}", op.mnemonic(), fmt_op(value), from, to)
        }
        InstrKind::Call { callee, args, ret } => {
            format!("call {} @{}({})", ret, callee, fmt_ops(args))
        }
        InstrKind::CallIndirect { callee, args, ret } => {
            format!("call_indirect {} {}({})", ret, fmt_op(callee), fmt_ops(args))
        }
        InstrKind::MemCpy { dst, src, len } => {
            format!("memcpy {}, {}, {}", fmt_op(dst), fmt_op(src), fmt_op(len))
        }
        InstrKind::MemSet { dst, byte, len } => {
            format!("memset {}, {}, {}", fmt_op(dst), fmt_op(byte), fmt_op(len))
        }
        InstrKind::Nop => "nop".to_string(),
    };
    let _ = f; // reserved for richer name printing
    match instr.loc {
        Some(loc) => format!("{lhs}{rhs} !{loc}"),
        None => format!("{lhs}{rhs}"),
    }
}

fn format_term(t: &Terminator) -> String {
    match t {
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Ret(Some(op)) => format!("ret {}", fmt_op(op)),
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr { cond, then_bb, else_bb } => {
            format!("condbr {}, {}, {}", fmt_op(cond), then_bb, else_bb)
        }
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

/// Renders a single block id as used in printed output (for diagnostics).
pub fn block_label(b: BlockId) -> String {
    b.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    #[test]
    fn prints_function_shell() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let x = fb.param(0);
        fb.ret(Some(x));
        fb.finish();
        let s = print_module(&mb.finish());
        assert!(s.contains("define i64 @f(i64 %v0)"), "got: {s}");
        assert!(s.contains("ret %v0"));
    }

    #[test]
    fn prints_globals_and_hosts() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("print_i64", vec![Type::I64], Type::Void, crate::module::Effect::Effectful);
        mb.global("g", Type::array(Type::I32, 4));
        let s = print_module(&mb.finish());
        assert!(s.contains("hostdecl void @print_i64(i64)"));
        assert!(s.contains("global @g : [4 x i32] = zero"));
    }

    #[test]
    fn float_constants_print_bit_exact() {
        let op = Operand::ConstFloat(1.5);
        let s = fmt_op(&op);
        assert!(s.starts_with("f64 0x"), "got {s}");
    }
}
