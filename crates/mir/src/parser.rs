//! Parser for the textual IR format produced by [`crate::printer`].
//!
//! The format is value-numbered (`%name`), block-labelled (`bbN:`), and
//! type-annotated enough that a single forward pass plus one name-resolution
//! pass suffices. Round-trip guarantee: `print(parse(print(m)))` is
//! idempotent (checked by tests and a property test).

use std::collections::BTreeMap;
use std::fmt;

use crate::function::{FnAttrs, Function, Param};
use crate::ids::{BlockId, GlobalId, ValueId};
use crate::instr::{BinOp, CastOp, FcmpPred, IcmpPred, InstrKind, Operand, Terminator};
use crate::module::{Effect, Global, GlobalAttrs, HostDecl, Init, Module};
use crate::types::Type;

/// A parse failure with line information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    Parser::new(src).parse_module()
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    /// `%name`
    Local(String),
    /// `@name`
    At(String),
    /// `@fn:name`
    FuncRef(String),
    Int(i64),
    /// `"..."` (source file names).
    Str(String),
    /// `!` (source-location suffix).
    Bang,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Eq,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == b';' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if c == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(Tok::Eof);
        }
        let c = self.src[self.pos];
        match c {
            b'(' => {
                self.pos += 1;
                Ok(Tok::LParen)
            }
            b')' => {
                self.pos += 1;
                Ok(Tok::RParen)
            }
            b'[' => {
                self.pos += 1;
                Ok(Tok::LBracket)
            }
            b']' => {
                self.pos += 1;
                Ok(Tok::RBracket)
            }
            b'{' => {
                self.pos += 1;
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(Tok::RBrace)
            }
            b',' => {
                self.pos += 1;
                Ok(Tok::Comma)
            }
            b':' => {
                self.pos += 1;
                Ok(Tok::Colon)
            }
            b'=' => {
                self.pos += 1;
                Ok(Tok::Eq)
            }
            b'!' => {
                self.pos += 1;
                Ok(Tok::Bang)
            }
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    if self.pos >= self.src.len() {
                        return Err(self.error("unterminated string literal"));
                    }
                    match self.src[self.pos] {
                        b'"' => {
                            self.pos += 1;
                            break;
                        }
                        b'\\' if self.pos + 1 < self.src.len() => {
                            s.push(self.src[self.pos + 1] as char);
                            self.pos += 2;
                        }
                        b'\n' => return Err(self.error("unterminated string literal")),
                        c => {
                            s.push(c as char);
                            self.pos += 1;
                        }
                    }
                }
                Ok(Tok::Str(s))
            }
            b'%' => {
                self.pos += 1;
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.error("expected name after '%'"));
                }
                Ok(Tok::Local(name))
            }
            b'@' => {
                self.pos += 1;
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.error("expected name after '@'"));
                }
                if name == "fn" && self.pos < self.src.len() && self.src[self.pos] == b':' {
                    self.pos += 1;
                    let target = self.ident();
                    if target.is_empty() {
                        return Err(self.error("expected function name after '@fn:'"));
                    }
                    return Ok(Tok::FuncRef(target));
                }
                Ok(Tok::At(name))
            }
            b'-' | b'0'..=b'9' => {
                let neg = c == b'-';
                if neg {
                    self.pos += 1;
                }
                // Hex?
                if self.pos + 1 < self.src.len()
                    && self.src[self.pos] == b'0'
                    && (self.src[self.pos + 1] == b'x' || self.src[self.pos + 1] == b'X')
                {
                    self.pos += 2;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_hexdigit() {
                        self.pos += 1;
                    }
                    let digits = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                    let v = u64::from_str_radix(digits, 16)
                        .map_err(|e| self.error(format!("bad hex literal: {e}")))?;
                    let v = v as i64;
                    return Ok(Tok::Int(if neg { -v } else { v }));
                }
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let digits = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                let v: i64 = digits
                    .parse::<u64>()
                    .map(|u| u as i64)
                    .map_err(|e| self.error(format!("bad integer literal: {e}")))?;
                Ok(Tok::Int(if neg { v.wrapping_neg() } else { v }))
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => Ok(Tok::Ident(self.ident())),
            other => Err(self.error(format!("unexpected character '{}'", other as char))),
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Operand before name resolution.
#[derive(Clone, Debug)]
enum POp {
    Local(String),
    ConstInt(Type, i64),
    ConstFloat(f64),
    Null,
    Global(String),
    Func(String),
    Undef(Type),
}

#[derive(Clone, Debug)]
enum PKindOp {
    Kind(InstrKindP),
    Term(TermP),
}

/// Parsed instruction with unresolved operands.
#[derive(Clone, Debug)]
enum InstrKindP {
    Alloca(Type, POp),
    Load(Type, POp),
    Store(Type, POp, POp),
    Gep(Type, POp, Vec<POp>),
    Phi(Type, Vec<(String, POp)>),
    Select(Type, POp, POp, POp),
    Bin(BinOp, Type, POp, POp),
    Icmp(IcmpPred, Type, POp, POp),
    Fcmp(FcmpPred, POp, POp),
    Cast(CastOp, POp, Type, Type),
    Call(String, Vec<POp>, Type),
    CallIndirect(POp, Vec<POp>, Type),
    MemCpy(POp, POp, POp),
    MemSet(POp, POp, POp),
}

#[derive(Clone, Debug)]
enum TermP {
    Ret(Option<POp>),
    Br(String),
    CondBr(POp, String, String),
    Unreachable,
}

impl InstrKindP {
    fn result_type(&self) -> Option<Type> {
        match self {
            InstrKindP::Alloca(..) | InstrKindP::Gep(..) => Some(Type::Ptr),
            InstrKindP::Load(ty, _) => Some(ty.clone()),
            InstrKindP::Store(..) => None,
            InstrKindP::Phi(ty, _) | InstrKindP::Select(ty, ..) => Some(ty.clone()),
            InstrKindP::Bin(_, ty, ..) => Some(ty.clone()),
            InstrKindP::Icmp(..) | InstrKindP::Fcmp(..) => Some(Type::I1),
            InstrKindP::Cast(_, _, _, to) => Some(to.clone()),
            InstrKindP::Call(_, _, ret) | InstrKindP::CallIndirect(_, _, ret) => {
                if *ret == Type::Void {
                    None
                } else {
                    Some(ret.clone())
                }
            }
            InstrKindP::MemCpy(..) | InstrKindP::MemSet(..) => None,
        }
    }
}

/// A parsed block before resolution: label, instructions (result name,
/// kind, source line), terminator.
type PBlock = (String, Vec<(Option<String>, InstrKindP, Option<u32>)>, TermP);

struct Parser<'a> {
    lex: Lexer<'a>,
    peeked: Option<Tok>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser { lex: Lexer::new(src), peeked: None }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        self.lex.error(message)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lex.next(),
        }
    }

    fn peek(&mut self) -> Result<&Tok, ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex.next()?);
        }
        Ok(self.peeked.as_ref().unwrap())
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(self.error(format!("expected {tok:?}, found {t:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(self.error(format!("expected identifier, found {t:?}"))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            t => Err(self.error(format!("expected integer, found {t:?}"))),
        }
    }

    fn eat(&mut self, tok: &Tok) -> Result<bool, ParseError> {
        if self.peek()? == tok {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.next()? {
            Tok::Ident(s) => match s.as_str() {
                "void" => Ok(Type::Void),
                "i1" => Ok(Type::I1),
                "i8" => Ok(Type::I8),
                "i16" => Ok(Type::I16),
                "i32" => Ok(Type::I32),
                "i64" => Ok(Type::I64),
                "f64" => Ok(Type::F64),
                "ptr" => Ok(Type::Ptr),
                other => Err(self.error(format!("unknown type '{other}'"))),
            },
            Tok::LBracket => {
                let n = self.expect_int()?;
                if n < 0 {
                    return Err(self.error("negative array length"));
                }
                let x = self.expect_ident()?;
                if x != "x" {
                    return Err(self.error("expected 'x' in array type"));
                }
                let elem = self.parse_type()?;
                self.expect(Tok::RBracket)?;
                Ok(Type::array(elem, n as u64))
            }
            Tok::LBrace => {
                let mut fields = vec![];
                if !self.eat(&Tok::RBrace)? {
                    loop {
                        fields.push(self.parse_type()?);
                        if self.eat(&Tok::RBrace)? {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                Ok(Type::structure(fields))
            }
            t => Err(self.error(format!("expected type, found {t:?}"))),
        }
    }

    fn parse_operand(&mut self) -> Result<POp, ParseError> {
        match self.peek()?.clone() {
            Tok::Local(name) => {
                self.next()?;
                Ok(POp::Local(name))
            }
            Tok::At(name) => {
                self.next()?;
                Ok(POp::Global(name))
            }
            Tok::FuncRef(name) => {
                self.next()?;
                Ok(POp::Func(name))
            }
            Tok::Ident(s) if s == "null" => {
                self.next()?;
                Ok(POp::Null)
            }
            Tok::Ident(s) if s == "undef" => {
                self.next()?;
                let ty = self.parse_type()?;
                Ok(POp::Undef(ty))
            }
            Tok::Ident(s) if s == "f64" => {
                self.next()?;
                let bits = self.expect_int()?;
                Ok(POp::ConstFloat(f64::from_bits(bits as u64)))
            }
            Tok::Ident(_) | Tok::LBracket | Tok::LBrace => {
                let ty = self.parse_type()?;
                let v = self.expect_int()?;
                Ok(POp::ConstInt(ty, v))
            }
            t => Err(self.error(format!("expected operand, found {t:?}"))),
        }
    }

    fn parse_module(mut self) -> Result<Module, ParseError> {
        let mut module = Module::new("parsed");
        loop {
            match self.next()? {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "module" => match self.next()? {
                        Tok::At(name) => module.name = name,
                        t => return Err(self.error(format!("expected module name, found {t:?}"))),
                    },
                    "source" => match self.next()? {
                        Tok::Str(file) => module.src_file = Some(file),
                        t => {
                            return Err(
                                self.error(format!("expected source file name, found {t:?}"))
                            )
                        }
                    },
                    "checksite" => self.parse_checksite(&mut module)?,
                    "hostdecl" => self.parse_hostdecl(&mut module)?,
                    "global" => self.parse_global(&mut module)?,
                    "define" => self.parse_function(&mut module, false)?,
                    "declare" => self.parse_function(&mut module, true)?,
                    other => {
                        return Err(self.error(format!("unexpected top-level keyword '{other}'")))
                    }
                },
                t => return Err(self.error(format!("unexpected top-level token {t:?}"))),
            }
        }
        Ok(module)
    }

    fn parse_checksite(&mut self, module: &mut Module) -> Result<(), ParseError> {
        use crate::srcloc::{AllocKind, AllocSite, CheckSite, SiteKind};
        let func = match self.next()? {
            Tok::At(n) => n,
            t => return Err(self.error(format!("expected function name, found {t:?}"))),
        };
        let kind = match self.expect_ident()?.as_str() {
            "deref" => SiteKind::Deref,
            "wrapper" => SiteKind::Wrapper,
            "invariant" => SiteKind::Invariant,
            other => return Err(self.error(format!("unknown check-site kind '{other}'"))),
        };
        let is_store = match self.expect_ident()?.as_str() {
            "write" => true,
            "read" => false,
            other => return Err(self.error(format!("expected read/write, found '{other}'"))),
        };
        let mut site = CheckSite { func, kind, is_store, width: None, line: None, alloc: None };
        loop {
            match self.peek()? {
                Tok::Ident(s) if s == "width" => {
                    self.next()?;
                    site.width = Some(self.expect_int()? as u64);
                }
                Tok::Ident(s) if s == "line" => {
                    self.next()?;
                    site.line = Some(self.expect_int()? as u32);
                }
                Tok::Ident(s) if s == "obj" => {
                    self.next()?;
                    let kind = match self.expect_ident()?.as_str() {
                        "heap" => AllocKind::Heap,
                        "stack" => AllocKind::Stack,
                        "global" => AllocKind::Global,
                        other => return Err(self.error(format!("unknown object kind '{other}'"))),
                    };
                    let mut alloc = AllocSite { kind, line: None, name: None, size: None };
                    loop {
                        match self.peek()? {
                            Tok::At(_) => {
                                let Tok::At(name) = self.next()? else { unreachable!() };
                                alloc.name = Some(name);
                            }
                            Tok::Ident(s) if s == "size" => {
                                self.next()?;
                                alloc.size = Some(self.expect_int()? as u64);
                            }
                            Tok::Ident(s) if s == "line" => {
                                self.next()?;
                                alloc.line = Some(self.expect_int()? as u32);
                            }
                            _ => break,
                        }
                    }
                    site.alloc = Some(alloc);
                }
                _ => break,
            }
        }
        module.check_sites.push(site);
        Ok(())
    }

    /// Parses an optional ` !N` source-location suffix after an instruction.
    fn parse_loc_suffix(&mut self) -> Result<Option<u32>, ParseError> {
        if self.eat(&Tok::Bang)? {
            Ok(Some(self.expect_int()? as u32))
        } else {
            Ok(None)
        }
    }

    fn parse_hostdecl(&mut self, module: &mut Module) -> Result<(), ParseError> {
        let ret = self.parse_type()?;
        let name = match self.next()? {
            Tok::At(n) => n,
            t => return Err(self.error(format!("expected host name, found {t:?}"))),
        };
        self.expect(Tok::LParen)?;
        let mut params = vec![];
        if !self.eat(&Tok::RParen)? {
            loop {
                params.push(self.parse_type()?);
                if self.eat(&Tok::RParen)? {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        let effect = match self.peek()? {
            Tok::Ident(s) if s == "pure" => {
                self.next()?;
                Effect::Pure
            }
            Tok::Ident(s) if s == "readonly" => {
                self.next()?;
                Effect::ReadOnly
            }
            _ => Effect::Effectful,
        };
        module.declare_host(name, HostDecl { params, ret, effect });
        Ok(())
    }

    fn parse_global(&mut self, module: &mut Module) -> Result<(), ParseError> {
        let name = match self.next()? {
            Tok::At(n) => n,
            t => return Err(self.error(format!("expected global name, found {t:?}"))),
        };
        self.expect(Tok::Colon)?;
        let ty = self.parse_type()?;
        self.expect(Tok::Eq)?;
        let init = match self.next()? {
            Tok::Ident(s) if s == "zero" => Init::Zero,
            Tok::Ident(s) if s == "bytes" => {
                self.expect(Tok::LBracket)?;
                let mut bytes = vec![];
                while !self.eat(&Tok::RBracket)? {
                    let v = self.expect_int()?;
                    if !(0..=255).contains(&v) {
                        return Err(self.error("byte out of range"));
                    }
                    bytes.push(v as u8);
                }
                Init::Bytes(bytes)
            }
            t => return Err(self.error(format!("expected initializer, found {t:?}"))),
        };
        let mut attrs = GlobalAttrs::default();
        loop {
            match self.peek()? {
                Tok::Ident(s) if s == "external" => {
                    self.next()?;
                    attrs.external = true;
                }
                Tok::Ident(s) if s == "size_unknown" => {
                    self.next()?;
                    attrs.size_unknown = true;
                }
                Tok::Ident(s) if s == "uninstrumented_lib" => {
                    self.next()?;
                    attrs.uninstrumented_lib = true;
                }
                Tok::Ident(s) if s == "lowfat" => {
                    self.next()?;
                    attrs.lowfat = true;
                }
                _ => break,
            }
        }
        module.add_global(Global { name, ty, init, attrs });
        Ok(())
    }

    fn parse_function(
        &mut self,
        module: &mut Module,
        is_declaration: bool,
    ) -> Result<(), ParseError> {
        let ret_ty = self.parse_type()?;
        let name = match self.next()? {
            Tok::At(n) => n,
            t => return Err(self.error(format!("expected function name, found {t:?}"))),
        };
        self.expect(Tok::LParen)?;
        let mut params = vec![];
        let mut param_names = vec![];
        if !self.eat(&Tok::RParen)? {
            loop {
                let ty = self.parse_type()?;
                let pname = match self.next()? {
                    Tok::Local(n) => n,
                    t => return Err(self.error(format!("expected parameter name, found {t:?}"))),
                };
                params.push(Param { name: pname.clone(), ty });
                param_names.push(pname);
                if self.eat(&Tok::RParen)? {
                    break;
                }
                self.expect(Tok::Comma)?;
            }
        }
        let mut attrs = FnAttrs::default();
        loop {
            match self.peek()? {
                Tok::Ident(s) if s == "uninstrumented" => {
                    self.next()?;
                    attrs.uninstrumented = true;
                }
                Tok::Ident(s) if s == "no_instrument" => {
                    self.next()?;
                    attrs.no_instrument = true;
                }
                _ => break,
            }
        }

        if is_declaration {
            let mut f = Function::declaration(name, params, ret_ty);
            f.attrs = attrs;
            module.add_function(f);
            return Ok(());
        }

        self.expect(Tok::LBrace)?;
        // Parse blocks into intermediate form.
        let mut blocks: Vec<PBlock> = vec![];
        let mut cur_label: Option<String> = None;
        let mut cur_instrs: Vec<(Option<String>, InstrKindP, Option<u32>)> = vec![];
        loop {
            match self.next()? {
                Tok::RBrace => {
                    if cur_label.is_some() {
                        return Err(self.error("block without terminator"));
                    }
                    break;
                }
                Tok::Ident(word) => {
                    // Either a label "name:" or an instruction keyword.
                    if self.peek()? == &Tok::Colon {
                        self.next()?;
                        if cur_label.is_some() {
                            return Err(self.error("previous block missing terminator"));
                        }
                        cur_label = Some(word);
                        cur_instrs = vec![];
                    } else {
                        // No-result instruction or terminator.
                        match self.parse_stmt(&word)? {
                            PKindOp::Kind(k) => {
                                if cur_label.is_none() {
                                    return Err(self.error("instruction outside block"));
                                }
                                let loc = self.parse_loc_suffix()?;
                                cur_instrs.push((None, k, loc));
                            }
                            PKindOp::Term(t) => {
                                let label = cur_label
                                    .take()
                                    .ok_or_else(|| self.error("terminator outside block"))?;
                                blocks.push((label, std::mem::take(&mut cur_instrs), t));
                            }
                        }
                    }
                }
                Tok::Local(result) => {
                    self.expect(Tok::Eq)?;
                    let word = self.expect_ident()?;
                    match self.parse_stmt(&word)? {
                        PKindOp::Kind(k) => {
                            if cur_label.is_none() {
                                return Err(self.error("instruction outside block"));
                            }
                            if k.result_type().is_none() {
                                return Err(self.error("instruction cannot produce a result"));
                            }
                            let loc = self.parse_loc_suffix()?;
                            cur_instrs.push((Some(result), k, loc));
                        }
                        PKindOp::Term(_) => {
                            return Err(self.error("terminator cannot have a result"))
                        }
                    }
                }
                t => return Err(self.error(format!("unexpected token in function body: {t:?}"))),
            }
        }

        // Resolve.
        let mut f = Function::new(name, params, ret_ty);
        f.attrs = attrs;
        f.blocks.clear();
        let mut block_ids: BTreeMap<String, BlockId> = BTreeMap::new();
        for (label, _, _) in &blocks {
            if block_ids.contains_key(label) {
                return Err(self.error(format!("duplicate block label {label}")));
            }
            let id = f.add_block(label.clone());
            block_ids.insert(label.clone(), id);
        }
        if f.blocks.is_empty() {
            return Err(self.error("function definition with no blocks"));
        }

        // Pre-allocate value ids in creation order (params already exist).
        let mut value_ids: BTreeMap<String, ValueId> = BTreeMap::new();
        for (i, pname) in param_names.iter().enumerate() {
            value_ids.insert(pname.clone(), ValueId::new(i));
        }
        let mut next_value = param_names.len();
        for (_, instrs, _) in &blocks {
            for (result, kind, _) in instrs {
                if let Some(rname) = result {
                    if kind.result_type().is_some() {
                        if value_ids.contains_key(rname) {
                            return Err(self.error(format!("duplicate value definition %{rname}")));
                        }
                        value_ids.insert(rname.clone(), ValueId::new(next_value));
                        next_value += 1;
                    }
                }
            }
        }

        let resolve_op = |p: &Parser<'_>, op: &POp| -> Result<Operand, ParseError> {
            Ok(match op {
                POp::Local(n) => Operand::Val(
                    *value_ids.get(n).ok_or_else(|| p.error(format!("unknown value %{n}")))?,
                ),
                POp::ConstInt(ty, v) => Operand::ConstInt { ty: ty.clone(), value: *v },
                POp::ConstFloat(v) => Operand::ConstFloat(*v),
                POp::Null => Operand::Null,
                POp::Global(n) => {
                    if let Some((gid, _)) = module.global_by_name(n) {
                        Operand::GlobalAddr(gid)
                    } else if let Some(idx) =
                        n.strip_prefix('g').and_then(|s| s.parse::<usize>().ok())
                    {
                        if idx >= module.globals.len() {
                            return Err(p.error(format!("global index @{n} out of range")));
                        }
                        Operand::GlobalAddr(GlobalId::new(idx))
                    } else {
                        return Err(p.error(format!("unknown global @{n}")));
                    }
                }
                POp::Func(n) => Operand::FuncAddr(n.clone()),
                POp::Undef(ty) => Operand::Undef(ty.clone()),
            })
        };
        let resolve_block = |p: &Parser<'_>, label: &str| -> Result<BlockId, ParseError> {
            block_ids
                .get(label)
                .copied()
                .ok_or_else(|| p.error(format!("unknown block label {label}")))
        };

        for (bi, (_, instrs, term)) in blocks.iter().enumerate() {
            let bid = BlockId::new(bi);
            for (result, kind, loc) in instrs {
                let real = match kind {
                    InstrKindP::Alloca(ty, count) => {
                        InstrKind::Alloca { ty: ty.clone(), count: resolve_op(self, count)? }
                    }
                    InstrKindP::Load(ty, ptr) => {
                        InstrKind::Load { ty: ty.clone(), ptr: resolve_op(self, ptr)? }
                    }
                    InstrKindP::Store(ty, value, ptr) => InstrKind::Store {
                        ty: ty.clone(),
                        value: resolve_op(self, value)?,
                        ptr: resolve_op(self, ptr)?,
                    },
                    InstrKindP::Gep(ty, base, idxs) => InstrKind::Gep {
                        elem_ty: ty.clone(),
                        base: resolve_op(self, base)?,
                        indices: idxs
                            .iter()
                            .map(|i| resolve_op(self, i))
                            .collect::<Result<_, _>>()?,
                    },
                    InstrKindP::Phi(ty, inc) => InstrKind::Phi {
                        ty: ty.clone(),
                        incoming: inc
                            .iter()
                            .map(|(b, op)| Ok((resolve_block(self, b)?, resolve_op(self, op)?)))
                            .collect::<Result<_, ParseError>>()?,
                    },
                    InstrKindP::Select(ty, c, a, b) => InstrKind::Select {
                        ty: ty.clone(),
                        cond: resolve_op(self, c)?,
                        then_value: resolve_op(self, a)?,
                        else_value: resolve_op(self, b)?,
                    },
                    InstrKindP::Bin(op, ty, a, b) => InstrKind::Bin {
                        op: *op,
                        ty: ty.clone(),
                        lhs: resolve_op(self, a)?,
                        rhs: resolve_op(self, b)?,
                    },
                    InstrKindP::Icmp(pred, ty, a, b) => InstrKind::Icmp {
                        pred: *pred,
                        ty: ty.clone(),
                        lhs: resolve_op(self, a)?,
                        rhs: resolve_op(self, b)?,
                    },
                    InstrKindP::Fcmp(pred, a, b) => InstrKind::Fcmp {
                        pred: *pred,
                        lhs: resolve_op(self, a)?,
                        rhs: resolve_op(self, b)?,
                    },
                    InstrKindP::Cast(op, v, from, to) => InstrKind::Cast {
                        op: *op,
                        value: resolve_op(self, v)?,
                        from: from.clone(),
                        to: to.clone(),
                    },
                    InstrKindP::Call(callee, args, ret) => InstrKind::Call {
                        callee: callee.clone(),
                        args: args.iter().map(|a| resolve_op(self, a)).collect::<Result<_, _>>()?,
                        ret: ret.clone(),
                    },
                    InstrKindP::CallIndirect(callee, args, ret) => InstrKind::CallIndirect {
                        callee: resolve_op(self, callee)?,
                        args: args.iter().map(|a| resolve_op(self, a)).collect::<Result<_, _>>()?,
                        ret: ret.clone(),
                    },
                    InstrKindP::MemCpy(d, s, l) => InstrKind::MemCpy {
                        dst: resolve_op(self, d)?,
                        src: resolve_op(self, s)?,
                        len: resolve_op(self, l)?,
                    },
                    InstrKindP::MemSet(d, b, l) => InstrKind::MemSet {
                        dst: resolve_op(self, d)?,
                        byte: resolve_op(self, b)?,
                        len: resolve_op(self, l)?,
                    },
                };
                let iid = f.push_instr(bid, real);
                f.set_instr_loc(iid, loc.map(crate::srcloc::SrcLoc::line));
                if let (Some(rname), Some(rv)) = (result, f.instr_result(iid)) {
                    debug_assert_eq!(value_ids.get(rname), Some(&rv), "value numbering drift");
                }
            }
            f.blocks[bi].term = match term {
                TermP::Ret(None) => Terminator::Ret(None),
                TermP::Ret(Some(op)) => Terminator::Ret(Some(resolve_op(self, op)?)),
                TermP::Br(label) => Terminator::Br(resolve_block(self, label)?),
                TermP::CondBr(c, a, b) => Terminator::CondBr {
                    cond: resolve_op(self, c)?,
                    then_bb: resolve_block(self, a)?,
                    else_bb: resolve_block(self, b)?,
                },
                TermP::Unreachable => Terminator::Unreachable,
            };
        }
        module.add_function(f);
        Ok(())
    }

    fn parse_stmt(&mut self, word: &str) -> Result<PKindOp, ParseError> {
        let binop = |s: &str| -> Option<BinOp> {
            Some(match s {
                "add" => BinOp::Add,
                "sub" => BinOp::Sub,
                "mul" => BinOp::Mul,
                "sdiv" => BinOp::SDiv,
                "udiv" => BinOp::UDiv,
                "srem" => BinOp::SRem,
                "urem" => BinOp::URem,
                "and" => BinOp::And,
                "or" => BinOp::Or,
                "xor" => BinOp::Xor,
                "shl" => BinOp::Shl,
                "lshr" => BinOp::LShr,
                "ashr" => BinOp::AShr,
                "fadd" => BinOp::FAdd,
                "fsub" => BinOp::FSub,
                "fmul" => BinOp::FMul,
                "fdiv" => BinOp::FDiv,
                _ => return None,
            })
        };
        let castop = |s: &str| -> Option<CastOp> {
            Some(match s {
                "zext" => CastOp::Zext,
                "sext" => CastOp::Sext,
                "trunc" => CastOp::Trunc,
                "ptrtoint" => CastOp::PtrToInt,
                "inttoptr" => CastOp::IntToPtr,
                "bitcast" => CastOp::Bitcast,
                "sitofp" => CastOp::SiToFp,
                "fptosi" => CastOp::FpToSi,
                _ => return None,
            })
        };

        if let Some(op) = binop(word) {
            let ty = self.parse_type()?;
            self.expect(Tok::Comma)?;
            let a = self.parse_operand()?;
            self.expect(Tok::Comma)?;
            let b = self.parse_operand()?;
            return Ok(PKindOp::Kind(InstrKindP::Bin(op, ty, a, b)));
        }
        if let Some(op) = castop(word) {
            let v = self.parse_operand()?;
            self.expect(Tok::Comma)?;
            let from = self.parse_type()?;
            let to_kw = self.expect_ident()?;
            if to_kw != "to" {
                return Err(self.error("expected 'to' in cast"));
            }
            let to = self.parse_type()?;
            return Ok(PKindOp::Kind(InstrKindP::Cast(op, v, from, to)));
        }

        match word {
            "alloca" => {
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let count = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::Alloca(ty, count)))
            }
            "load" => {
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let ptr = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::Load(ty, ptr)))
            }
            "store" => {
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let value = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let ptr = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::Store(ty, value, ptr)))
            }
            "gep" => {
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let base = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                self.expect(Tok::LBracket)?;
                let mut idxs = vec![];
                if !self.eat(&Tok::RBracket)? {
                    loop {
                        idxs.push(self.parse_operand()?);
                        if self.eat(&Tok::RBracket)? {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                Ok(PKindOp::Kind(InstrKindP::Gep(ty, base, idxs)))
            }
            "phi" => {
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let mut incoming = vec![];
                loop {
                    self.expect(Tok::LBracket)?;
                    let label = self.expect_ident()?;
                    self.expect(Tok::Colon)?;
                    let op = self.parse_operand()?;
                    self.expect(Tok::RBracket)?;
                    incoming.push((label, op));
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
                Ok(PKindOp::Kind(InstrKindP::Phi(ty, incoming)))
            }
            "select" => {
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let c = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let a = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::Select(ty, c, a, b)))
            }
            "icmp" => {
                let pred = match self.expect_ident()?.as_str() {
                    "eq" => IcmpPred::Eq,
                    "ne" => IcmpPred::Ne,
                    "slt" => IcmpPred::Slt,
                    "sle" => IcmpPred::Sle,
                    "sgt" => IcmpPred::Sgt,
                    "sge" => IcmpPred::Sge,
                    "ult" => IcmpPred::Ult,
                    "ule" => IcmpPred::Ule,
                    "ugt" => IcmpPred::Ugt,
                    "uge" => IcmpPred::Uge,
                    p => return Err(self.error(format!("unknown icmp predicate '{p}'"))),
                };
                let ty = self.parse_type()?;
                self.expect(Tok::Comma)?;
                let a = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::Icmp(pred, ty, a, b)))
            }
            "fcmp" => {
                let pred = match self.expect_ident()?.as_str() {
                    "oeq" => FcmpPred::Oeq,
                    "one" => FcmpPred::One,
                    "olt" => FcmpPred::Olt,
                    "ole" => FcmpPred::Ole,
                    "ogt" => FcmpPred::Ogt,
                    "oge" => FcmpPred::Oge,
                    p => return Err(self.error(format!("unknown fcmp predicate '{p}'"))),
                };
                let a = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::Fcmp(pred, a, b)))
            }
            "call" => {
                let ret = self.parse_type()?;
                let callee = match self.next()? {
                    Tok::At(n) => n,
                    t => return Err(self.error(format!("expected callee, found {t:?}"))),
                };
                self.expect(Tok::LParen)?;
                let mut args = vec![];
                if !self.eat(&Tok::RParen)? {
                    loop {
                        args.push(self.parse_operand()?);
                        if self.eat(&Tok::RParen)? {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                Ok(PKindOp::Kind(InstrKindP::Call(callee, args, ret)))
            }
            "call_indirect" => {
                let ret = self.parse_type()?;
                let callee = self.parse_operand()?;
                self.expect(Tok::LParen)?;
                let mut args = vec![];
                if !self.eat(&Tok::RParen)? {
                    loop {
                        args.push(self.parse_operand()?);
                        if self.eat(&Tok::RParen)? {
                            break;
                        }
                        self.expect(Tok::Comma)?;
                    }
                }
                Ok(PKindOp::Kind(InstrKindP::CallIndirect(callee, args, ret)))
            }
            "memcpy" => {
                let d = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let s = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let l = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::MemCpy(d, s, l)))
            }
            "memset" => {
                let d = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let b = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let l = self.parse_operand()?;
                Ok(PKindOp::Kind(InstrKindP::MemSet(d, b, l)))
            }
            "ret" => {
                // A value follows unless the next token starts a new statement.
                let has_value = matches!(
                    self.peek()?,
                    Tok::Local(_) | Tok::At(_) | Tok::FuncRef(_) | Tok::LBracket | Tok::LBrace
                ) || matches!(self.peek()?, Tok::Ident(s) if is_operand_start(s));
                if has_value {
                    let op = self.parse_operand()?;
                    Ok(PKindOp::Term(TermP::Ret(Some(op))))
                } else {
                    Ok(PKindOp::Term(TermP::Ret(None)))
                }
            }
            "br" => {
                let label = self.expect_ident()?;
                Ok(PKindOp::Term(TermP::Br(label)))
            }
            "condbr" => {
                let c = self.parse_operand()?;
                self.expect(Tok::Comma)?;
                let a = self.expect_ident()?;
                self.expect(Tok::Comma)?;
                let b = self.expect_ident()?;
                Ok(PKindOp::Term(TermP::CondBr(c, a, b)))
            }
            "unreachable" => Ok(PKindOp::Term(TermP::Unreachable)),
            other => Err(self.error(format!("unknown instruction '{other}'"))),
        }
    }
}

fn is_operand_start(ident: &str) -> bool {
    matches!(ident, "null" | "undef" | "i1" | "i8" | "i16" | "i32" | "i64" | "f64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;
    use crate::verifier::verify_module;

    #[test]
    fn parses_minimal_function() {
        let src = r#"
            define i64 @main() {
            entry:
              ret i64 42
            }
        "#;
        let m = parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
        let (_, f) = m.function_by_name("main").unwrap();
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn parses_arithmetic_and_memory() {
        let src = r#"
            define i64 @f(i64 %x) {
            entry:
              %p = alloca i64, i64 1
              store i64, %x, %p
              %y = load i64, %p
              %z = add i64, %y, i64 5
              ret %z
            }
        "#;
        let m = parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn parses_control_flow_with_phi() {
        let src = r#"
            define i64 @f(i1 %c) {
            entry:
              condbr %c, then, else
            then:
              br join
            else:
              br join
            join:
              %v = phi i64, [then: i64 1], [else: i64 2]
              ret %v
            }
        "#;
        let m = parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn parses_back_edge_phi_forward_ref() {
        let src = r#"
            define i64 @count(i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %next = add i64, %i, i64 1
              br header
            exit:
              ret %i
            }
        "#;
        let m = parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn parses_globals_and_hostdecls() {
        let src = r#"
            hostdecl void @print_i64(i64)
            hostdecl i64 @pure_thing(i64) pure
            global @buf : [16 x i8] = zero
            global @ext_arr : [0 x i32] = zero external size_unknown
            define void @main() {
            entry:
              %p = gep i8, @buf, [i64 3]
              store i8, i8 7, %p
              call void @print_i64(i64 1)
              ret
            }
        "#;
        let m = parse_module(src).unwrap();
        assert!(verify_module(&m).is_ok());
        assert_eq!(m.host_decls["pure_thing"].effect, Effect::Pure);
        let (_, g) = m.global_by_name("ext_arr").unwrap();
        assert!(g.attrs.size_unknown);
    }

    #[test]
    fn roundtrip_is_idempotent() {
        let src = r#"
            hostdecl void @sink(ptr) readonly
            global @data : [8 x i64] = zero
            define i64 @f(i64 %n, ptr %p) {
            entry:
              %a = alloca [4 x i32], i64 1
              %q = gep i32, %a, [i64 2]
              store i32, i32 9, %q
              %i = ptrtoint %p, ptr to i64
              %r = inttoptr %i, i64 to ptr
              call void @sink(%r)
              %c = icmp sgt i64, %n, i64 0
              condbr %c, pos, neg
            pos:
              ret i64 1
            neg:
              %f1 = sitofp %n, i64 to f64
              %f2 = fmul f64, %f1, %f1
              %b = fcmp olt %f2, f64 100
              %s = select i64, %b, i64 5, i64 6
              ret %s
            }
        "#;
        let m1 = parse_module(src).unwrap();
        verify_module(&m1).unwrap();
        let t1 = print_module(&m1);
        let m2 = parse_module(&t1).unwrap();
        verify_module(&m2).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn roundtrips_provenance() {
        let src = r#"
            module @prov
            source "dir/prog.c"
            checksite @main deref write width 8 line 12 obj heap size 40 line 7
            checksite @main wrapper read line 3 obj global @buf size 16
            checksite @f invariant write
            global @buf : [16 x i8] = zero
            define i64 @main() {
            entry:
              %p = alloca i64, i64 1 !7
              store i64, i64 5, %p !12
              %x = load i64, %p
              ret %x
            }
        "#;
        let m1 = parse_module(src).unwrap();
        assert_eq!(m1.src_file.as_deref(), Some("dir/prog.c"));
        assert_eq!(m1.check_sites.len(), 3);
        assert_eq!(m1.check_sites[0].width, Some(8));
        assert_eq!(m1.check_sites[0].alloc.as_ref().unwrap().size, Some(40));
        assert_eq!(m1.check_sites[1].alloc.as_ref().unwrap().name.as_deref(), Some("buf"));
        let (_, f) = m1.function_by_name("main").unwrap();
        assert_eq!(f.instrs[0].loc, Some(crate::srcloc::SrcLoc::line(7)));
        assert_eq!(f.instrs[1].loc, Some(crate::srcloc::SrcLoc::line(12)));
        assert_eq!(f.instrs[2].loc, None);
        let t1 = print_module(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn error_reports_line() {
        let src = "define i64 @f() {\nentry:\n  %x = bogus i64\n  ret i64 0\n}\n";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn rejects_unknown_value() {
        let src = "define i64 @f() {\nentry:\n  ret %nope\n}\n";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown value"));
    }

    #[test]
    fn parses_float_literals_bit_exact() {
        let pi = std::f64::consts::PI;
        let src = format!(
            "define f64 @f() {{\nentry:\n  %x = fadd f64, f64 0x{:016x}, f64 0x{:016x}\n  ret %x\n}}\n",
            pi.to_bits(),
            1.0f64.to_bits()
        );
        let m = parse_module(&src).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        let InstrKind::Bin { lhs, .. } = &f.instrs[0].kind else { panic!() };
        assert_eq!(lhs, &Operand::ConstFloat(pi));
    }

    #[test]
    fn parses_declarations() {
        let src = "declare ptr @ext_alloc(i64 %sz) uninstrumented\n";
        let m = parse_module(src).unwrap();
        let (_, f) = m.function_by_name("ext_alloc").unwrap();
        assert!(f.is_declaration);
        assert!(f.attrs.uninstrumented);
    }
}
