//! Functions, basic blocks, and SSA value bookkeeping.

use crate::ids::{BlockId, InstrId, ValueId};
use crate::instr::{Instr, InstrKind, Operand, Terminator};
use crate::srcloc::SrcLoc;
use crate::types::Type;

/// A formal function parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    /// Name used by the printer (purely cosmetic).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// How a [`ValueId`] is defined.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ValueDef {
    /// The `n`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Instr(InstrId),
}

/// Type and definition site of an SSA value.
#[derive(Clone, PartialEq, Debug)]
pub struct ValueInfo {
    /// The value's type.
    pub ty: Type,
    /// Where the value is defined.
    pub def: ValueDef,
}

/// A basic block: a straight-line instruction list plus one terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Label used by the printer (cosmetic; `BlockId` is authoritative).
    pub name: String,
    /// Instructions in execution order (indices into the function arena).
    pub instrs: Vec<InstrId>,
    /// The block terminator.
    pub term: Terminator,
}

/// Function attributes relevant to instrumentation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FnAttrs {
    /// Models code from an *uninstrumented external library* (§4.3 of the
    /// paper): the function executes normally but no instrumentation is
    /// applied, and for SoftBound it does not maintain metadata.
    pub uninstrumented: bool,
    /// Marks runtime-internal helpers that instrumentation must never touch.
    pub no_instrument: bool,
}

/// A function definition or declaration.
///
/// SSA values are kept in a dense side table: ids `0..params.len()` are the
/// parameters, later ids are instruction results. Instructions live in an
/// append-only arena (`instrs`) and are linked into blocks by id, which makes
/// the insert-before/after operations instrumentation needs cheap and keeps
/// ids stable across edits.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type.
    pub ret_ty: Type,
    /// Basic blocks; `BlockId(0)` is the entry block of a definition.
    pub blocks: Vec<Block>,
    /// Instruction arena.
    pub instrs: Vec<Instr>,
    /// SSA value table.
    pub values: Vec<ValueInfo>,
    /// `true` if this is a declaration without a body (external symbol).
    pub is_declaration: bool,
    /// Instrumentation-relevant attributes.
    pub attrs: FnAttrs,
}

impl Function {
    /// Creates an empty function definition with an entry block.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Function {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, p)| ValueInfo { ty: p.ty.clone(), def: ValueDef::Param(i as u32) })
            .collect();
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: vec![Block {
                name: "entry".into(),
                instrs: vec![],
                term: Terminator::Unreachable,
            }],
            instrs: vec![],
            values,
            is_declaration: false,
            attrs: FnAttrs::default(),
        }
    }

    /// Creates a body-less declaration.
    pub fn declaration(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Function {
        let mut f = Function::new(name, params, ret_ty);
        f.blocks.clear();
        f.is_declaration = true;
        f
    }

    /// The [`ValueId`] of parameter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn param_value(&self, idx: usize) -> ValueId {
        assert!(idx < self.params.len(), "parameter index out of range");
        ValueId::new(idx)
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> &Type {
        &self.values[v.index()].ty
    }

    /// The type of an operand in the context of this function.
    pub fn operand_type(&self, op: &Operand) -> Type {
        match op {
            Operand::Val(v) => self.value_type(*v).clone(),
            Operand::ConstInt { ty, .. } => ty.clone(),
            Operand::ConstFloat(_) => Type::F64,
            Operand::Null | Operand::GlobalAddr(_) | Operand::FuncAddr(_) => Type::Ptr,
            Operand::Undef(ty) => ty.clone(),
        }
    }

    /// Appends a fresh basic block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(Block {
            name: name.into(),
            instrs: vec![],
            term: Terminator::Unreachable,
        });
        id
    }

    /// Creates an instruction in the arena (not yet linked into any block)
    /// and allocates its result value if it produces one.
    pub fn create_instr(&mut self, kind: InstrKind) -> InstrId {
        let id = InstrId::new(self.instrs.len());
        let result = kind.result_type().map(|ty| {
            let v = ValueId::new(self.values.len());
            self.values.push(ValueInfo { ty, def: ValueDef::Instr(id) });
            v
        });
        self.instrs.push(Instr { kind, result, loc: None });
        id
    }

    /// Sets the source location of instruction `id`.
    pub fn set_instr_loc(&mut self, id: InstrId, loc: Option<SrcLoc>) {
        self.instrs[id.index()].loc = loc;
    }

    /// The source location of instruction `id`, if any.
    pub fn instr_loc(&self, id: InstrId) -> Option<SrcLoc> {
        self.instrs[id.index()].loc
    }

    /// Creates an instruction and appends it to `block`.
    pub fn push_instr(&mut self, block: BlockId, kind: InstrKind) -> InstrId {
        let id = self.create_instr(kind);
        self.blocks[block.index()].instrs.push(id);
        id
    }

    /// Creates an instruction and inserts it into `block` at `pos`.
    pub fn insert_instr(&mut self, block: BlockId, pos: usize, kind: InstrKind) -> InstrId {
        let id = self.create_instr(kind);
        self.blocks[block.index()].instrs.insert(pos, id);
        id
    }

    /// Unlinks instruction `id` from `block` and tombstones it.
    ///
    /// The caller must guarantee the instruction's result (if any) has no
    /// remaining uses.
    pub fn remove_instr(&mut self, block: BlockId, id: InstrId) {
        self.blocks[block.index()].instrs.retain(|&i| i != id);
        self.instrs[id.index()].kind = InstrKind::Nop;
    }

    /// The result value of instruction `id`, if it defines one.
    pub fn instr_result(&self, id: InstrId) -> Option<ValueId> {
        self.instrs[id.index()].result
    }

    /// Replaces every use of value `from` (in instructions and terminators)
    /// with operand `to`.
    pub fn replace_all_uses(&mut self, from: ValueId, to: &Operand) {
        for instr in &mut self.instrs {
            instr.kind.for_each_operand_mut(|op| {
                if op.as_value() == Some(from) {
                    *op = to.clone();
                }
            });
        }
        for block in &mut self.blocks {
            block.term.for_each_operand_mut(|op| {
                if op.as_value() == Some(from) {
                    *op = to.clone();
                }
            });
        }
    }

    /// Counts the uses of a value across the whole function.
    pub fn count_uses(&self, v: ValueId) -> usize {
        let mut n = 0;
        for block in &self.blocks {
            for &iid in &block.instrs {
                self.instrs[iid.index()].kind.for_each_operand(|op| {
                    if op.as_value() == Some(v) {
                        n += 1;
                    }
                });
            }
            block.term.for_each_operand(|op| {
                if op.as_value() == Some(v) {
                    n += 1;
                }
            });
        }
        n
    }

    /// Iterates over `(BlockId, &Block)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId::new(i), b))
    }

    /// Number of non-tombstone instructions currently linked into blocks.
    pub fn live_instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Returns the block that contains instruction `id`, if it is linked.
    pub fn block_of_instr(&self, id: InstrId) -> Option<BlockId> {
        for (bid, block) in self.iter_blocks() {
            if block.instrs.contains(&id) {
                return Some(bid);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Function {
        let mut f = Function::new("f", vec![Param { name: "x".into(), ty: Type::I64 }], Type::I64);
        let entry = BlockId::new(0);
        let x = Operand::Val(f.param_value(0));
        let add = f.push_instr(
            entry,
            InstrKind::Bin {
                op: crate::instr::BinOp::Add,
                ty: Type::I64,
                lhs: x.clone(),
                rhs: Operand::i64(1),
            },
        );
        let res = f.instr_result(add).unwrap();
        f.blocks[0].term = Terminator::Ret(Some(Operand::Val(res)));
        f
    }

    #[test]
    fn params_become_values() {
        let f = sample();
        assert_eq!(f.param_value(0), ValueId::new(0));
        assert_eq!(*f.value_type(ValueId::new(0)), Type::I64);
    }

    #[test]
    fn instruction_results_are_typed() {
        let f = sample();
        let add_result = f.instr_result(InstrId::new(0)).unwrap();
        assert_eq!(*f.value_type(add_result), Type::I64);
        assert_eq!(f.values[add_result.index()].def, ValueDef::Instr(InstrId::new(0)));
    }

    #[test]
    fn replace_all_uses_rewrites_terminators() {
        let mut f = sample();
        let add_result = f.instr_result(InstrId::new(0)).unwrap();
        f.replace_all_uses(add_result, &Operand::i64(99));
        assert_eq!(f.blocks[0].term, Terminator::Ret(Some(Operand::i64(99))));
    }

    #[test]
    fn count_uses_counts_instrs_and_terms() {
        let f = sample();
        assert_eq!(f.count_uses(ValueId::new(0)), 1); // x used by add
        let add_result = f.instr_result(InstrId::new(0)).unwrap();
        assert_eq!(f.count_uses(add_result), 1); // used by ret
    }

    #[test]
    fn remove_instr_tombstones() {
        let mut f = sample();
        f.blocks[0].term = Terminator::Ret(Some(Operand::i64(0)));
        f.remove_instr(BlockId::new(0), InstrId::new(0));
        assert_eq!(f.live_instr_count(), 0);
        assert_eq!(f.instrs[0].kind, InstrKind::Nop);
    }

    #[test]
    fn insert_positions() {
        let mut f = sample();
        let entry = BlockId::new(0);
        let first = f.insert_instr(
            entry,
            0,
            InstrKind::Bin {
                op: crate::instr::BinOp::Mul,
                ty: Type::I64,
                lhs: Operand::i64(2),
                rhs: Operand::i64(3),
            },
        );
        assert_eq!(f.blocks[0].instrs[0], first);
        assert_eq!(f.block_of_instr(first), Some(entry));
    }

    #[test]
    fn declaration_has_no_blocks() {
        let d = Function::declaration("ext", vec![], Type::Void);
        assert!(d.is_declaration);
        assert!(d.blocks.is_empty());
    }
}
