//! The optimization pipeline with instrumentation extension points.
//!
//! This mirrors the clang/LLVM legacy pass-manager setup from Figure 8 of
//! the paper: a fixed `-O` pipeline into which a module pass (the
//! instrumentation) can be inserted at one of three *extension points*:
//!
//! * [`ExtensionPoint::ModuleOptimizerEarly`] — after the initial
//!   per-function simplification (`mem2reg` etc.) but before the main
//!   scalar optimizations;
//! * [`ExtensionPoint::ScalarOptimizerLate`] — after scalar optimizations,
//!   before loop optimizations;
//! * [`ExtensionPoint::VectorizerStart`] — after loop optimizations, right
//!   before (hypothetical) vectorization; only cleanup runs afterwards.
//!
//! §5.5 of the paper shows the choice matters by roughly 30 % of overhead;
//! the `bench` crate's `fig12`/`fig13` binaries reproduce that with this
//! pipeline.

use crate::module::Module;
use crate::passes::{
    constfold::ConstFold, dce::Dce, dse::Dse, gvn::Gvn, inline::Inline, licm::Licm,
    mem2reg::Mem2Reg, promote::PromoteLoopScalars, run_on_module, simplifycfg::SimplifyCfg,
    FunctionPass, ModulePass,
};
use crate::trace::TraceRecorder;

/// Where an instrumentation pass is inserted into the pipeline.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExtensionPoint {
    /// Before the main optimizations (the artifact's default, §A.6).
    ModuleOptimizerEarly,
    /// After scalar optimizations.
    ScalarOptimizerLate,
    /// Before the vectorizer (the configuration used for Figure 9).
    VectorizerStart,
}

impl ExtensionPoint {
    /// All extension points, in pipeline order.
    pub const ALL: [ExtensionPoint; 3] = [
        ExtensionPoint::ModuleOptimizerEarly,
        ExtensionPoint::ScalarOptimizerLate,
        ExtensionPoint::VectorizerStart,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ExtensionPoint::ModuleOptimizerEarly => "ModuleOptimizerEarly",
            ExtensionPoint::ScalarOptimizerLate => "ScalarOptimizerLate",
            ExtensionPoint::VectorizerStart => "VectorizerStart",
        }
    }
}

impl std::fmt::Display for ExtensionPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ExtensionPoint {
    type Err = String;

    /// Accepts the full report name or the CLI short forms
    /// (`early`, `scalar`, `vectorizer`/`vec`), case-sensitively.
    fn from_str(s: &str) -> Result<ExtensionPoint, String> {
        match s {
            "ModuleOptimizerEarly" | "early" => Ok(ExtensionPoint::ModuleOptimizerEarly),
            "ScalarOptimizerLate" | "scalar" => Ok(ExtensionPoint::ScalarOptimizerLate),
            "VectorizerStart" | "vectorizer" | "vec" => Ok(ExtensionPoint::VectorizerStart),
            other => Err(format!("unknown extension point `{other}`")),
        }
    }
}

/// Optimization level of the pipeline.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OptLevel {
    /// No optimization: only the extension-point plugin runs.
    O0,
    /// The full pipeline (the paper's `-O3` baseline).
    O3,
}

impl OptLevel {
    /// Short name used in reports (`O0`/`O3`).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O3 => "O3",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s {
            "O0" => Ok(OptLevel::O0),
            "O3" => Ok(OptLevel::O3),
            other => Err(format!("unknown opt level `{other}`")),
        }
    }
}

/// The compiler pipeline.
#[derive(Copy, Clone, Debug)]
pub struct Pipeline {
    /// Optimization level.
    pub opt: OptLevel,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline { opt: OptLevel::O3 }
    }
}

impl Pipeline {
    /// Creates a pipeline at the given level.
    pub fn new(opt: OptLevel) -> Pipeline {
        Pipeline { opt }
    }

    /// Runs the pipeline without any plugin (the uninstrumented baseline).
    pub fn run(&self, m: &mut Module) {
        self.run_to(m, ExtensionPoint::VectorizerStart);
        self.resume_at(m, ExtensionPoint::VectorizerStart, None);
    }

    /// Like [`Pipeline::run`], recording a span per executed pass in `rec`.
    pub fn run_traced(&self, m: &mut Module, rec: &mut TraceRecorder) {
        self.run_to_traced(m, ExtensionPoint::VectorizerStart, rec);
        self.resume_at_traced(m, ExtensionPoint::VectorizerStart, None, rec);
    }

    /// Runs the pipeline, inserting `plugin` at extension point `ep`.
    pub fn run_at(&self, m: &mut Module, ep: ExtensionPoint, plugin: &mut dyn ModulePass) {
        self.run_to(m, ep);
        self.resume_at(m, ep, Some(plugin));
    }

    /// Like [`Pipeline::run_at`], recording a span per executed pass
    /// (including the plugin) in `rec`.
    pub fn run_at_traced(
        &self,
        m: &mut Module,
        ep: ExtensionPoint,
        plugin: &mut dyn ModulePass,
        rec: &mut TraceRecorder,
    ) {
        self.run_to_traced(m, ep, rec);
        self.resume_at_traced(m, ep, Some(plugin), rec);
    }

    /// Runs every stage that precedes extension point `ep`, leaving `m` in
    /// exactly the state a plugin inserted at `ep` would observe.
    ///
    /// The module at this point is a reusable *snapshot*: callers may clone
    /// it and complete compilation any number of times with
    /// [`Pipeline::resume_at`] under different plugins (or none). The
    /// evaluation driver in the `bench` crate relies on this to compile the
    /// shared pipeline prefix once per (program, opt level, extension
    /// point) instead of once per sweep cell.
    pub fn run_to(&self, m: &mut Module, ep: ExtensionPoint) {
        self.run_to_rec(m, ep, None);
    }

    /// Like [`Pipeline::run_to`], recording a span per executed pass.
    pub fn run_to_traced(&self, m: &mut Module, ep: ExtensionPoint, rec: &mut TraceRecorder) {
        self.run_to_rec(m, ep, Some(rec));
    }

    fn run_to_rec(&self, m: &mut Module, ep: ExtensionPoint, mut rec: Option<&mut TraceRecorder>) {
        if self.opt == OptLevel::O0 {
            // No optimization: there is nothing before any extension point.
            return;
        }
        for stage in 0..=ep_index(ep) {
            self.run_stage(m, stage, rec.as_deref_mut());
        }
    }

    /// Completes a pipeline previously advanced by `run_to(m, ep)`: fires
    /// `plugin` at `ep` (if any), then runs the remaining stages.
    ///
    /// `run_to(m, ep)` followed by `resume_at(m, ep, p)` is exactly
    /// equivalent to `run_at(m, ep, p)` (or to `run(m)` when `p` is
    /// `None`, for any `ep`).
    pub fn resume_at(
        &self,
        m: &mut Module,
        ep: ExtensionPoint,
        plugin: Option<&mut dyn ModulePass>,
    ) {
        self.resume_at_rec(m, ep, plugin, None);
    }

    /// Like [`Pipeline::resume_at`], recording a span per executed pass
    /// (including the plugin, under the stage label `plugin@<ep>`).
    pub fn resume_at_traced(
        &self,
        m: &mut Module,
        ep: ExtensionPoint,
        plugin: Option<&mut dyn ModulePass>,
        rec: &mut TraceRecorder,
    ) {
        self.resume_at_rec(m, ep, plugin, Some(rec));
    }

    fn resume_at_rec(
        &self,
        m: &mut Module,
        ep: ExtensionPoint,
        plugin: Option<&mut dyn ModulePass>,
        mut rec: Option<&mut TraceRecorder>,
    ) {
        if let Some(pass) = plugin {
            // Under O0 only the plugin runs (any EP behaves the same way).
            match rec.as_deref_mut() {
                Some(r) => {
                    let stage = format!("plugin@{}", ep.name());
                    r.record_pass(&stage, pass.name(), m, |m| pass.run(m));
                }
                None => {
                    pass.run(m);
                }
            }
        }
        if self.opt == OptLevel::O0 {
            return;
        }
        for stage in ep_index(ep) + 1..=LAST_STAGE {
            self.run_stage(m, stage, rec.as_deref_mut());
        }
    }

    /// Runs one pipeline stage. Stage `i` ends at `ExtensionPoint::ALL[i]`;
    /// the final stage has no extension point after it.
    fn run_stage(&self, m: &mut Module, stage: usize, mut rec: Option<&mut TraceRecorder>) {
        let label = ["stage0", "stage1", "stage2", "stage3"][stage];
        match stage {
            // Stage 0: per-function simplification (like clang's always-on
            // early passes: SROA/mem2reg + cleanup).
            0 => run_seq(m, label, &[&SimplifyCfg, &Mem2Reg, &ConstFold, &Dce], rec),
            // Stage 1: inlining + scalar optimizations (like clang, the
            // inliner runs in the module optimizer, *after* the early
            // extension point — a key driver of the §5.5 gap).
            1 => {
                match rec.as_deref_mut() {
                    Some(r) => {
                        let mut inline = Inline;
                        r.record_pass(label, inline.name(), m, |m| inline.run(m));
                    }
                    None => {
                        Inline.run(m);
                    }
                }
                run_seq(m, label, &[&ConstFold, &Gvn, &Dse, &Dce, &SimplifyCfg, &Gvn, &Dce], rec);
            }
            // Stage 2: loop optimizations (LICM hoisting + scalar
            // promotion, completed by a mem2reg round).
            2 => run_seq(
                m,
                label,
                &[&Licm, &PromoteLoopScalars, &Mem2Reg, &Gvn, &Dse, &Dce, &SimplifyCfg],
                rec,
            ),
            // Stage 3: late cleanup (runs after every instrumentation
            // point, like the LTO-time cleanups in the paper's setup).
            3 => run_seq(m, label, &[&ConstFold, &Dce, &SimplifyCfg], rec),
            _ => unreachable!("no pipeline stage {stage}"),
        }
    }
}

/// Index of the stage that ends at `ep` (extension points are in pipeline
/// order, so this is also the position in [`ExtensionPoint::ALL`]).
fn ep_index(ep: ExtensionPoint) -> usize {
    match ep {
        ExtensionPoint::ModuleOptimizerEarly => 0,
        ExtensionPoint::ScalarOptimizerLate => 1,
        ExtensionPoint::VectorizerStart => 2,
    }
}

/// The late-cleanup stage, after the last extension point.
const LAST_STAGE: usize = 3;

fn run_seq(
    m: &mut Module,
    stage: &str,
    passes: &[&dyn FunctionPass],
    mut rec: Option<&mut TraceRecorder>,
) {
    for pass in passes {
        match rec.as_deref_mut() {
            Some(r) => {
                r.record_pass(stage, pass.name(), m, |m| run_on_module(*pass, m));
            }
            None => {
                run_on_module(*pass, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{IcmpPred, InstrKind, Operand};
    use crate::types::Type;
    use crate::verifier::verify_module;

    /// Counts live instructions matching a predicate across the module.
    fn count_instrs(m: &Module, pred: impl Fn(&InstrKind) -> bool) -> usize {
        m.functions
            .iter()
            .flat_map(|f| {
                f.blocks.iter().flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
            })
            .filter(|k| pred(k))
            .count()
    }

    fn sample_module() -> Module {
        // Local accumulator in memory + a loop: O3 should strip the memory
        // traffic entirely.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("sum", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let acc = fb.alloca(Type::I64);
        let iv = fb.alloca(Type::I64);
        fb.store(Type::I64, Operand::i64(0), acc.clone());
        fb.store(Type::I64, Operand::i64(0), iv.clone());
        fb.br(header);
        fb.switch_to(header);
        let i = fb.load(Type::I64, iv.clone());
        let c = fb.icmp(IcmpPred::Slt, Type::I64, i.clone(), fb.param(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let a = fb.load(Type::I64, acc.clone());
        let a2 = fb.add(Type::I64, a, i.clone());
        fb.store(Type::I64, a2, acc.clone());
        let i2 = fb.add(Type::I64, i, Operand::i64(1));
        fb.store(Type::I64, i2, iv.clone());
        fb.br(header);
        fb.switch_to(exit);
        let r = fb.load(Type::I64, acc);
        fb.ret(Some(r));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn o3_removes_local_memory_traffic() {
        let mut m = sample_module();
        Pipeline::new(OptLevel::O3).run(&mut m);
        verify_module(&m).unwrap();
        assert_eq!(count_instrs(&m, |k| k.accesses_memory()), 0);
    }

    #[test]
    fn o0_keeps_everything() {
        let mut m = sample_module();
        let before = count_instrs(&m, |_| true);
        Pipeline::new(OptLevel::O0).run(&mut m);
        assert_eq!(count_instrs(&m, |_| true), before);
    }

    #[test]
    fn plugin_fires_at_requested_point() {
        struct Spy {
            fired: bool,
            loads_seen: usize,
        }
        impl ModulePass for Spy {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn run(&mut self, m: &mut Module) -> bool {
                self.fired = true;
                self.loads_seen = m
                    .functions
                    .iter()
                    .flat_map(|f| {
                        f.blocks
                            .iter()
                            .flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
                    })
                    .filter(|k| matches!(k, InstrKind::Load { .. }))
                    .count();
                false
            }
        }
        let mut early = Spy { fired: false, loads_seen: 0 };
        let mut m = sample_module();
        Pipeline::default().run_at(&mut m, ExtensionPoint::ModuleOptimizerEarly, &mut early);
        assert!(early.fired);

        let mut late = Spy { fired: false, loads_seen: 0 };
        let mut m = sample_module();
        Pipeline::default().run_at(&mut m, ExtensionPoint::VectorizerStart, &mut late);
        assert!(late.fired);
        // After mem2reg the loads are gone at both points here, but the
        // early spy must see at least as many loads as the late one.
        assert!(early.loads_seen >= late.loads_seen);
    }

    #[test]
    fn split_pipeline_equals_monolithic_run() {
        // run_to + resume_at with no plugin must reproduce run() exactly,
        // no matter where the pipeline is split.
        let mut reference = sample_module();
        Pipeline::default().run(&mut reference);
        let want = crate::printer::print_module(&reference);
        for ep in ExtensionPoint::ALL {
            let mut m = sample_module();
            let p = Pipeline::default();
            p.run_to(&mut m, ep);
            p.resume_at(&mut m, ep, None);
            assert_eq!(crate::printer::print_module(&m), want, "split at {}", ep.name());
        }
        // Same under O0 (both stages are no-ops without a plugin).
        let mut reference = sample_module();
        Pipeline::new(OptLevel::O0).run(&mut reference);
        let want = crate::printer::print_module(&reference);
        let mut m = sample_module();
        let p = Pipeline::new(OptLevel::O0);
        p.run_to(&mut m, ExtensionPoint::ModuleOptimizerEarly);
        p.resume_at(&mut m, ExtensionPoint::ModuleOptimizerEarly, None);
        assert_eq!(crate::printer::print_module(&m), want);
    }

    #[test]
    fn snapshot_is_reusable_across_plugins() {
        // A cloned run_to snapshot completed twice (with and without a
        // plugin) must match from-scratch compilations — the caching
        // contract of the evaluation driver.
        struct AddNote;
        impl ModulePass for AddNote {
            fn name(&self) -> &'static str {
                "add-note"
            }
            fn run(&mut self, m: &mut Module) -> bool {
                // A visible, optimization-surviving change: rename the
                // module (the printer emits the name).
                m.name = format!("{}+instrumented", m.name);
                true
            }
        }
        for ep in ExtensionPoint::ALL {
            let p = Pipeline::default();
            let mut snapshot = sample_module();
            p.run_to(&mut snapshot, ep);

            let mut plain = snapshot.clone();
            p.resume_at(&mut plain, ep, None);
            let mut with_plugin = snapshot.clone();
            p.resume_at(&mut with_plugin, ep, Some(&mut AddNote));

            let mut want_plain = sample_module();
            p.run(&mut want_plain);
            let mut want_plugin = sample_module();
            p.run_at(&mut want_plugin, ep, &mut AddNote);

            assert_eq!(
                crate::printer::print_module(&plain),
                crate::printer::print_module(&want_plain),
                "plain resume at {}",
                ep.name()
            );
            assert_eq!(
                crate::printer::print_module(&with_plugin),
                crate::printer::print_module(&want_plugin),
                "plugin resume at {}",
                ep.name()
            );
        }
    }

    #[test]
    fn extension_point_names() {
        assert_eq!(ExtensionPoint::ALL.len(), 3);
        assert_eq!(ExtensionPoint::VectorizerStart.name(), "VectorizerStart");
    }

    #[test]
    fn extension_point_and_opt_level_round_trip() {
        for ep in ExtensionPoint::ALL {
            assert_eq!(ep.to_string().parse::<ExtensionPoint>(), Ok(ep));
        }
        assert_eq!("early".parse::<ExtensionPoint>(), Ok(ExtensionPoint::ModuleOptimizerEarly));
        assert_eq!("scalar".parse::<ExtensionPoint>(), Ok(ExtensionPoint::ScalarOptimizerLate));
        assert_eq!("vec".parse::<ExtensionPoint>(), Ok(ExtensionPoint::VectorizerStart));
        assert!("bogus".parse::<ExtensionPoint>().is_err());
        for o in [OptLevel::O0, OptLevel::O3] {
            assert_eq!(o.to_string().parse::<OptLevel>(), Ok(o));
        }
        assert!("O2".parse::<OptLevel>().is_err());
    }
}
