//! Modules, global variables, and host-function declarations.

use std::collections::BTreeMap;

use crate::function::Function;
use crate::ids::{FuncId, GlobalId};
use crate::srcloc::CheckSite;
use crate::types::Type;

/// Initializer of a global variable.
#[derive(Clone, PartialEq, Debug)]
pub enum Init {
    /// Zero-initialized.
    Zero,
    /// Explicit bytes (padded with zeros to the global's size).
    Bytes(Vec<u8>),
}

/// Attributes of a global variable that matter to instrumentation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct GlobalAttrs {
    /// Declared in another translation unit; the definition is not visible.
    pub external: bool,
    /// Declared *without* size information (`extern int arr[];`) — the §4.3
    /// pattern that forces SoftBound to fall back to NULL or wide bounds.
    pub size_unknown: bool,
    /// Belongs to an uninstrumented external library: Low-Fat Pointers
    /// cannot mirror it into a low-fat region, so accesses get wide bounds.
    pub uninstrumented_lib: bool,
    /// Set by the Low-Fat instrumentation: the loader must place this global
    /// in the matching low-fat size-class region ("mirror, replace").
    pub lowfat: bool,
}

/// A global variable.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Value type. For `size_unknown` externals this is the type visible in
    /// this translation unit (typically a zero-length array).
    pub ty: Type,
    /// Initializer (ignored for externals — the "definition" elsewhere wins).
    pub init: Init,
    /// Instrumentation-relevant attributes.
    pub attrs: GlobalAttrs,
}

impl Global {
    /// Size of the global as visible in this translation unit, in bytes.
    pub fn size(&self) -> u64 {
        self.ty.size_of()
    }
}

/// Side-effect contract of a host function, used by optimization passes.
///
/// This reproduces the distinction §5.4 of the paper depends on: metadata
/// *loads* (trie lookups, shadow-stack reads) are `ReadOnly` and can be
/// dead-code-eliminated when their result is unused, while checks may abort
/// the program and therefore block code motion and elimination.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Effect {
    /// No memory access, result depends only on arguments (e.g. low-fat base
    /// recovery, which is pure address arithmetic plus a constant table).
    Pure,
    /// Reads program-visible state but writes nothing (e.g. trie lookups).
    /// Removable when unused; killed by intervening writes for CSE purposes.
    ReadOnly,
    /// May write state or abort (checks, allocator, trie stores).
    Effectful,
}

/// Declaration of a host function provided by the linked runtime library.
#[derive(Clone, PartialEq, Debug)]
pub struct HostDecl {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Effect contract for the optimizer.
    pub effect: Effect,
}

/// A translation unit: globals, functions, and host declarations.
#[derive(Clone, PartialEq, Debug)]
pub struct Module {
    /// Module name (cosmetic).
    pub name: String,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions and declarations.
    pub functions: Vec<Function>,
    /// Host functions the module may call (the runtime library interface).
    pub host_decls: BTreeMap<String, HostDecl>,
    /// Name of the source file this module was compiled from, used to
    /// render `file:line` provenance (one file per translation unit).
    pub src_file: Option<String>,
    /// Check sites registered by the instrumentation; a check call's
    /// trailing `i64` argument indexes this table.
    pub check_sites: Vec<CheckSite>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            globals: vec![],
            functions: vec![],
            host_decls: BTreeMap::new(),
            src_file: None,
            check_sites: vec![],
        }
    }

    /// Adds a global and returns its id.
    pub fn add_global(&mut self, global: Global) -> GlobalId {
        let id = GlobalId::new(self.globals.len());
        self.globals.push(global);
        id
    }

    /// Adds a function and returns its id.
    pub fn add_function(&mut self, function: Function) -> FuncId {
        let id = FuncId::new(self.functions.len());
        self.functions.push(function);
        id
    }

    /// Declares a host function (idempotent; re-declaration must match).
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared with a different signature.
    pub fn declare_host(&mut self, name: impl Into<String>, decl: HostDecl) {
        let name = name.into();
        if let Some(existing) = self.host_decls.get(&name) {
            assert_eq!(existing, &decl, "conflicting host declaration for {name}");
            return;
        }
        self.host_decls.insert(name, decl);
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Looks up a function by name, mutably.
    pub fn function_by_name_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GlobalId::new(i), g))
    }

    /// The effect contract of a callee name: internal functions are
    /// conservatively effectful, host functions report their declaration.
    pub fn callee_effect(&self, name: &str) -> Effect {
        if self.function_by_name(name).is_some() {
            Effect::Effectful
        } else if let Some(decl) = self.host_decls.get(name) {
            decl.effect
        } else {
            Effect::Effectful
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Param;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("t");
        m.add_function(Function::new("main", vec![], Type::I64));
        m.add_global(Global {
            name: "buf".into(),
            ty: Type::array(Type::I8, 16),
            init: Init::Zero,
            attrs: GlobalAttrs::default(),
        });
        assert!(m.function_by_name("main").is_some());
        assert!(m.function_by_name("nope").is_none());
        let (gid, g) = m.global_by_name("buf").unwrap();
        assert_eq!(gid, GlobalId::new(0));
        assert_eq!(g.size(), 16);
    }

    #[test]
    fn host_decl_idempotent() {
        let mut m = Module::new("t");
        let d = HostDecl { params: vec![Type::Ptr], ret: Type::Void, effect: Effect::Effectful };
        m.declare_host("check", d.clone());
        m.declare_host("check", d);
        assert_eq!(m.host_decls.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting host declaration")]
    fn host_decl_conflict_panics() {
        let mut m = Module::new("t");
        m.declare_host("f", HostDecl { params: vec![], ret: Type::Void, effect: Effect::Pure });
        m.declare_host("f", HostDecl { params: vec![], ret: Type::I64, effect: Effect::Pure });
    }

    #[test]
    fn callee_effects() {
        let mut m = Module::new("t");
        m.add_function(Function::declaration(
            "ext",
            vec![Param { name: "p".into(), ty: Type::Ptr }],
            Type::Void,
        ));
        m.declare_host(
            "pure_helper",
            HostDecl { params: vec![Type::I64], ret: Type::I64, effect: Effect::Pure },
        );
        assert_eq!(m.callee_effect("ext"), Effect::Effectful);
        assert_eq!(m.callee_effect("pure_helper"), Effect::Pure);
        assert_eq!(m.callee_effect("unknown"), Effect::Effectful);
    }

    #[test]
    fn size_unknown_global_models_extern_array() {
        let g = Global {
            name: "file_table".into(),
            ty: Type::array(Type::I32, 0),
            init: Init::Zero,
            attrs: GlobalAttrs { external: true, size_unknown: true, ..Default::default() },
        };
        assert_eq!(g.size(), 0);
        assert!(g.attrs.size_unknown);
    }
}
