//! Source provenance: per-instruction source locations and check-site
//! descriptors.
//!
//! [`SrcLoc`] is the IR-level analogue of an LLVM debug location: an
//! optional side-channel on every [`crate::instr::Instr`], set by the
//! frontend, preserved (or legally dropped) by optimization passes, and
//! consumed by the VM for trap reports and per-site profiles. The module
//! records the originating file name once ([`crate::module::Module::src_file`])
//! instead of per instruction — the mini-C frontend compiles single
//! translation units, so `file:line` factors into a module-level file and
//! a per-instruction line.
//!
//! [`CheckSite`] describes one check inserted by the instrumentation: the
//! access it guards (location, width, read/write) and, where statically
//! derivable, the allocation site of the checked object. The
//! instrumentation appends the site's index as a trailing constant
//! argument on every emitted check call, so the runtime can attribute
//! dynamic hits, wide-bound hits, and cost back to source lines and can
//! render ASan-style violation reports ("8-byte write at prog.c:12
//! overflows 40-byte heap object allocated at prog.c:7").

use std::fmt;

/// A source location attached to an instruction (1-based line).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SrcLoc {
    /// 1-based source line in the module's source file.
    pub line: u32,
}

impl SrcLoc {
    /// Creates a location for `line`.
    pub fn line(line: u32) -> SrcLoc {
        SrcLoc { line }
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.line)
    }
}

/// What kind of check a [`CheckSite`] describes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SiteKind {
    /// A dereference check guarding one load or store.
    Deref,
    /// A range check guarding a `memcpy`/`memset` endpoint.
    Wrapper,
    /// A pointer-escape invariant check (Low-Fat stores/calls/returns).
    Invariant,
}

impl SiteKind {
    /// Keyword used by the printer/parser.
    pub fn keyword(self) -> &'static str {
        match self {
            SiteKind::Deref => "deref",
            SiteKind::Wrapper => "wrapper",
            SiteKind::Invariant => "invariant",
        }
    }
}

/// Storage class of a statically-identified allocation site.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// `malloc`/`calloc` result.
    Heap,
    /// `alloca` (or a mechanism's stack-alloc replacement).
    Stack,
    /// A module global.
    Global,
}

impl AllocKind {
    /// Keyword used by the printer/parser and in trap reports.
    pub fn keyword(self) -> &'static str {
        match self {
            AllocKind::Heap => "heap",
            AllocKind::Stack => "stack",
            AllocKind::Global => "global",
        }
    }
}

/// The allocation site of a checked object, where the instrumentation
/// could derive it statically by walking the pointer's def chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllocSite {
    /// Storage class.
    pub kind: AllocKind,
    /// Source line of the allocation, if the allocating instruction
    /// carried one (globals have none).
    pub line: Option<u32>,
    /// Global name, for [`AllocKind::Global`] sites.
    pub name: Option<String>,
    /// Statically-known object size in bytes, if constant.
    pub size: Option<u64>,
}

/// One check inserted by the instrumentation, identified by its index in
/// [`crate::module::Module::check_sites`]. The index is passed to the
/// runtime as the check call's trailing `i64` argument.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckSite {
    /// Name of the function containing the check.
    pub func: String,
    /// What the check guards.
    pub kind: SiteKind,
    /// `true` for stores (and memset/memcpy destinations).
    pub is_store: bool,
    /// Access width in bytes; `None` when dynamic (wrapper ranges).
    pub width: Option<u64>,
    /// Source line of the guarded access.
    pub line: Option<u32>,
    /// Allocation site of the checked object, when statically derivable.
    pub alloc: Option<AllocSite>,
}

impl CheckSite {
    /// Renders `file:line` (or a placeholder) for a line in `src_file`.
    fn at(src_file: Option<&str>, line: Option<u32>) -> String {
        match (src_file, line) {
            (Some(f), Some(l)) => format!("{f}:{l}"),
            (None, Some(l)) => format!("line {l}"),
            (_, None) => "<unknown>".to_string(),
        }
    }

    /// Renders this site's `file:line` (or a placeholder).
    pub fn source(&self, src_file: Option<&str>) -> String {
        CheckSite::at(src_file, self.line)
    }

    /// Short description of the guarded access without its location,
    /// e.g. `8-byte write`, `bulk read`, `pointer escape`.
    pub fn access_kind(&self) -> String {
        let rw = if self.is_store { "write" } else { "read" };
        match (self.kind, self.width) {
            (SiteKind::Deref, Some(w)) => format!("{w}-byte {rw}"),
            (SiteKind::Deref, None) => rw.to_string(),
            (SiteKind::Wrapper, _) => format!("bulk {rw}"),
            (SiteKind::Invariant, _) => "pointer escape".to_string(),
        }
    }

    /// Short description of the guarded access, e.g. `8-byte write at
    /// prog.c:12`.
    pub fn describe_access(&self, src_file: Option<&str>) -> String {
        format!("{} at {}", self.access_kind(), self.source(src_file))
    }

    /// Description of the checked object's allocation site, e.g.
    /// `40-byte heap object allocated at prog.c:7`, if known.
    pub fn describe_alloc(&self, src_file: Option<&str>) -> Option<String> {
        let a = self.alloc.as_ref()?;
        let size = match a.size {
            Some(s) => format!("{s}-byte "),
            None => String::new(),
        };
        let mut s = format!("{size}{} object", a.kind.keyword());
        if let Some(name) = &a.name {
            s.push_str(&format!(" @{name}"));
        }
        if a.line.is_some() {
            s.push_str(&format!(" allocated at {}", CheckSite::at(src_file, a.line)));
        }
        Some(s)
    }

    /// Full ASan-style provenance sentence for a violation at this site:
    /// `8-byte write at prog.c:12 overflows 40-byte heap object allocated
    /// at prog.c:7`.
    pub fn describe_violation(&self, src_file: Option<&str>) -> String {
        let access = self.describe_access(src_file);
        match self.describe_alloc(src_file) {
            Some(alloc) => format!("{access} overflows {alloc}"),
            None => access,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_full_violation() {
        let site = CheckSite {
            func: "main".into(),
            kind: SiteKind::Deref,
            is_store: true,
            width: Some(8),
            line: Some(12),
            alloc: Some(AllocSite {
                kind: AllocKind::Heap,
                line: Some(7),
                name: None,
                size: Some(40),
            }),
        };
        assert_eq!(
            site.describe_violation(Some("prog.c")),
            "8-byte write at prog.c:12 overflows 40-byte heap object allocated at prog.c:7"
        );
    }

    #[test]
    fn describe_without_file_or_alloc() {
        let site = CheckSite {
            func: "f".into(),
            kind: SiteKind::Deref,
            is_store: false,
            width: Some(4),
            line: Some(3),
            alloc: None,
        };
        assert_eq!(site.describe_violation(None), "4-byte read at line 3");
    }

    #[test]
    fn describe_global_alloc() {
        let site = CheckSite {
            func: "f".into(),
            kind: SiteKind::Wrapper,
            is_store: true,
            width: None,
            line: Some(9),
            alloc: Some(AllocSite {
                kind: AllocKind::Global,
                line: None,
                name: Some("buf".into()),
                size: Some(16),
            }),
        };
        assert_eq!(
            site.describe_violation(Some("t.c")),
            "bulk write at t.c:9 overflows 16-byte global object @buf"
        );
    }
}
