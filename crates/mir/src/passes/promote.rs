//! Loop scalar promotion (LICM store promotion).
//!
//! When a loop repeatedly loads and stores one loop-invariant memory
//! location, the location is promoted to a register: load once in the
//! preheader, run the loop on SSA values, store back at the exits. This is
//! LLVM's `licm` store-promotion — the optimization responsible for
//! accumulator loops (`y[j] += ...`) having *no* memory accesses, and
//! therefore no bounds checks, by the time instrumentation runs at a late
//! extension point (§5.5). Inserted checks are effectful calls and block
//! this transformation, which is part of the early-extension-point penalty.
//!
//! Implementation strategy: rewrite the promoted location's accesses to a
//! fresh `alloca` and let a subsequent `mem2reg` build the SSA form.

use crate::analysis::{Cfg, DomTree, LoopForest};
use crate::function::Function;
use crate::ids::{BlockId, InstrId, ValueId};
use crate::instr::{InstrKind, Operand, Terminator};
use crate::passes::{EffectInfo, FunctionPass};
use crate::types::Type;

/// The loop-scalar-promotion pass. Run `mem2reg` afterwards to complete
/// the register promotion.
#[derive(Debug, Default)]
pub struct PromoteLoopScalars;

impl FunctionPass for PromoteLoopScalars {
    fn name(&self) -> &'static str {
        "promote-loop-scalars"
    }

    fn run(&self, effects: &EffectInfo, f: &mut Function) -> bool {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let _ = &dom;
        let forest = LoopForest::compute(&cfg, &dom);
        let mut changed = false;
        for l in &forest.loops {
            let Some(pre) = l.preheader(&cfg) else { continue };
            if !matches!(f.blocks[pre.index()].term, Terminator::Br(t) if t == l.header) {
                continue;
            }
            changed |= promote_in_loop(effects, f, &cfg, l, pre);
        }
        changed
    }
}

/// Structural identity/no-alias key for a pointer operand.
#[derive(Clone, PartialEq, Debug)]
enum PtrKey {
    /// A global's address (optionally with constant gep offsets).
    Global(u32, Vec<i64>),
    /// gep with constant indices off a base SSA value.
    Gep(ValueId, String, Vec<i64>),
    /// A plain SSA value.
    Val(ValueId),
    /// Anything else — unanalyzable.
    Unknown,
}

fn ptr_key(f: &Function, op: &Operand) -> PtrKey {
    match op {
        Operand::GlobalAddr(g) => PtrKey::Global(g.0, vec![]),
        Operand::Val(v) => {
            if let crate::function::ValueDef::Instr(iid) = f.values[v.index()].def {
                if let InstrKind::Gep { elem_ty, base, indices } = &f.instrs[iid.index()].kind {
                    let consts: Option<Vec<i64>> =
                        indices.iter().map(|i| i.as_const_int()).collect();
                    if let Some(consts) = consts {
                        return match base {
                            Operand::GlobalAddr(g) => PtrKey::Global(g.0, consts),
                            Operand::Val(bv) => PtrKey::Gep(*bv, elem_ty.to_string(), consts),
                            _ => PtrKey::Unknown,
                        };
                    }
                }
            }
            PtrKey::Val(*v)
        }
        _ => PtrKey::Unknown,
    }
}

/// Can two keyed locations be proven disjoint?
fn no_alias(a: &PtrKey, b: &PtrKey) -> bool {
    match (a, b) {
        (PtrKey::Global(g1, i1), PtrKey::Global(g2, i2)) => g1 != g2 || i1 != i2,
        (PtrKey::Gep(b1, t1, i1), PtrKey::Gep(b2, t2, i2)) => b1 == b2 && t1 == t2 && i1 != i2,
        _ => false,
    }
}

/// The identified object a pointer provably derives from: a global, an
/// alloca, or a fresh allocator call, reached through `gep` chains only.
/// Two accesses rooted in *distinct* identified objects never alias.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Root {
    Global(u32),
    Obj(usize),
}

fn ptr_root(f: &Function, op: &Operand) -> Option<Root> {
    match op {
        Operand::GlobalAddr(g) => Some(Root::Global(g.0)),
        Operand::Val(v) => match f.values[v.index()].def {
            crate::function::ValueDef::Instr(iid) => match &f.instrs[iid.index()].kind {
                InstrKind::Gep { base, .. } => ptr_root(f, base),
                InstrKind::Alloca { .. } => Some(Root::Obj(iid.index())),
                InstrKind::Call { callee, .. } if callee == "malloc" || callee == "calloc" => {
                    Some(Root::Obj(iid.index()))
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

fn promote_in_loop(
    effects: &EffectInfo,
    f: &mut Function,
    cfg: &Cfg,
    l: &crate::analysis::Loop,
    pre: BlockId,
) -> bool {
    // Values defined inside the loop (their pointers are loop-variant).
    let mut defined_in = std::collections::BTreeSet::new();
    for &b in &l.blocks {
        for &iid in &f.blocks[b.index()].instrs {
            if let Some(v) = f.instrs[iid.index()].result {
                defined_in.insert(v);
            }
        }
    }
    let invariant =
        |f: &Function, op: &Operand, defined_in: &std::collections::BTreeSet<ValueId>| -> bool {
            // The operand itself, and — for the const-gep case — its base,
            // must be defined outside the loop, OR be a const-gep of an
            // outside base (the gep instruction may sit inside the loop).
            match op.as_value() {
                None => true,
                Some(v) => {
                    if !defined_in.contains(&v) {
                        return true;
                    }
                    if let crate::function::ValueDef::Instr(iid) = f.values[v.index()].def {
                        if let InstrKind::Gep { base, indices, .. } = &f.instrs[iid.index()].kind {
                            return indices.iter().all(|i| i.as_const_int().is_some())
                                && base.as_value().is_none_or(|bv| !defined_in.contains(&bv));
                        }
                    }
                    false
                }
            }
        };

    // Collect per-key loads/stores and disqualifying instructions.
    struct Cand {
        key: PtrKey,
        root: Option<Root>,
        ptr: Operand,
        ty: Type,
        loads: Vec<(BlockId, InstrId)>,
        stores: Vec<(BlockId, InstrId)>,
    }
    let mut cands: Vec<Cand> = Vec::new();
    // Every load and store in the loop is an aliasing hazard for the
    // candidates — a store clobbers a promoted register's memory image,
    // and a load observes it (promotion would leave it reading a stale
    // value), so both sides must be provably disjoint.
    let mut store_hazards: Vec<(PtrKey, Option<Root>)> = Vec::new();
    let mut load_hazards: Vec<(PtrKey, Option<Root>)> = Vec::new();
    let mut has_barrier = false;
    for &b in &l.blocks {
        for &iid in &f.blocks[b.index()].instrs {
            let kind = &f.instrs[iid.index()].kind;
            match kind {
                InstrKind::Load { ty, ptr } | InstrKind::Store { ty, ptr, .. } => {
                    let is_store = matches!(kind, InstrKind::Store { .. });
                    let key = ptr_key(f, ptr);
                    let root = ptr_root(f, ptr);
                    if is_store {
                        store_hazards.push((key.clone(), root));
                    } else {
                        load_hazards.push((key.clone(), root));
                    }
                    if key == PtrKey::Unknown || !invariant(f, ptr, &defined_in) {
                        continue;
                    }
                    if !matches!(
                        ty,
                        Type::I1
                            | Type::I8
                            | Type::I16
                            | Type::I32
                            | Type::I64
                            | Type::F64
                            | Type::Ptr
                    ) {
                        continue;
                    }
                    let entry = cands.iter_mut().find(|c| c.key == key && c.ty == *ty);
                    let c = match entry {
                        Some(c) => c,
                        None => {
                            cands.push(Cand {
                                key,
                                root,
                                ptr: ptr.clone(),
                                ty: ty.clone(),
                                loads: vec![],
                                stores: vec![],
                            });
                            cands.last_mut().unwrap()
                        }
                    };
                    if is_store {
                        c.stores.push((b, iid));
                    } else {
                        c.loads.push((b, iid));
                    }
                }
                other
                    if effects.writes_or_aborts(other)
                        && !matches!(other, InstrKind::Store { .. }) =>
                {
                    has_barrier = true;
                }
                _ => {}
            }
        }
    }
    if has_barrier {
        return false;
    }

    // Exits: outside blocks fed only from inside the loop.
    let mut exits: Vec<BlockId> = Vec::new();
    for &b in &l.blocks {
        for s in f.blocks[b.index()].term.successors() {
            if !l.contains(s) && !exits.contains(&s) {
                exits.push(s);
            }
        }
    }
    if exits.iter().any(|&e| cfg.preds(e).iter().any(|p| !l.contains(*p))) {
        return false; // an exit is reachable without the loop
    }

    let mut changed = false;
    for c in &cands {
        if c.stores.is_empty() {
            continue; // plain loads are handled by LICM load hoisting
        }
        // Every other access in the loop must provably not alias: equal
        // keys are the candidate's own accesses (or a mixed-type clone,
        // rejected below), disjoint structural keys or distinct
        // identified objects are safe, anything else may observe or
        // clobber the promoted location through another pointer.
        let disjoint = |(k, r): &(PtrKey, Option<Root>)| {
            *k == c.key
                || no_alias(k, &c.key)
                || matches!((r, &c.root), (Some(a), Some(b)) if *a != *b)
        };
        let safe = store_hazards.iter().all(disjoint) && load_hazards.iter().all(disjoint);
        if !safe {
            continue;
        }
        // A mixed-type alias to the same key would break the rewrite.
        let mixed = cands.iter().any(|o| o.key == c.key && o.ty != c.ty);
        if mixed {
            continue;
        }

        // The pointer operand must be available in the preheader. Const-gep
        // pointers defined inside the loop are rematerialized there.
        let pre_ptr = match c.ptr.as_value() {
            Some(v) if defined_in.contains(&v) => {
                let crate::function::ValueDef::Instr(iid) = f.values[v.index()].def else {
                    continue;
                };
                let kind = f.instrs[iid.index()].kind.clone();
                let loc = f.instrs[iid.index()].loc;
                let new = f.create_instr(kind);
                f.set_instr_loc(new, loc);
                let pos = f.blocks[pre.index()].instrs.len();
                f.blocks[pre.index()].instrs.insert(pos, new);
                Operand::Val(f.instr_result(new).expect("gep result"))
            }
            _ => c.ptr.clone(),
        };

        // The rewrite's loads and stores inherit the source locations of
        // the accesses they stand in for, so a check on the hoisted load
        // still attributes to the original source line.
        let load_loc = c.loads.first().unwrap_or(&c.stores[0]);
        let load_loc = f.instrs[load_loc.1.index()].loc;
        let store_loc = f.instrs[c.stores[0].1.index()].loc;

        // tmp = alloca; tmp <- load ptr (preheader)
        let alloca = f.create_instr(InstrKind::Alloca { ty: c.ty.clone(), count: Operand::i64(1) });
        let tmp = Operand::Val(f.instr_result(alloca).expect("alloca result"));
        let init_load = f.create_instr(InstrKind::Load { ty: c.ty.clone(), ptr: pre_ptr.clone() });
        f.set_instr_loc(init_load, load_loc);
        let init_val = Operand::Val(f.instr_result(init_load).expect("load result"));
        let init_store = f.create_instr(InstrKind::Store {
            ty: c.ty.clone(),
            value: init_val,
            ptr: tmp.clone(),
        });
        f.set_instr_loc(init_store, load_loc);
        let pre_len = f.blocks[pre.index()].instrs.len();
        f.blocks[pre.index()].instrs.splice(pre_len..pre_len, [alloca, init_load, init_store]);

        // Rewrite the loop's accesses to go through tmp.
        for &(_, iid) in &c.loads {
            if let InstrKind::Load { ptr, .. } = &mut f.instrs[iid.index()].kind {
                *ptr = tmp.clone();
            }
        }
        for &(_, iid) in &c.stores {
            if let InstrKind::Store { ptr, .. } = &mut f.instrs[iid.index()].kind {
                *ptr = tmp.clone();
            }
        }

        // Store back at every exit (before its phis' consumers — i.e. at
        // the head of the exit block, after phis).
        for &e in &exits {
            let back_load = f.create_instr(InstrKind::Load { ty: c.ty.clone(), ptr: tmp.clone() });
            f.set_instr_loc(back_load, store_loc);
            let back_val = Operand::Val(f.instr_result(back_load).expect("load result"));
            let back_store = f.create_instr(InstrKind::Store {
                ty: c.ty.clone(),
                value: back_val,
                ptr: pre_ptr.clone(),
            });
            f.set_instr_loc(back_store, store_loc);
            let pos = f.blocks[e.index()]
                .instrs
                .iter()
                .position(|&i| !matches!(f.instrs[i.index()].kind, InstrKind::Phi { .. }))
                .unwrap_or(f.blocks[e.index()].instrs.len());
            f.blocks[e.index()].instrs.splice(pos..pos, [back_load, back_store]);
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::mem2reg::Mem2Reg;
    use crate::passes::run_on_module;
    use crate::verifier::verify_module;

    fn promote_and_mem2reg(src: &str) -> crate::module::Module {
        let mut m = crate::parser::parse_module(src).unwrap();
        run_on_module(&PromoteLoopScalars, &mut m);
        verify_module(&m)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", crate::printer::print_module(&m)));
        run_on_module(&Mem2Reg, &mut m);
        verify_module(&m).unwrap();
        m
    }

    fn loop_mem_ops(m: &crate::module::Module, func: &str) -> usize {
        let (_, f) = m.function_by_name(func).unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        forest
            .loops
            .iter()
            .flat_map(|l| l.blocks.iter())
            .flat_map(|b| f.blocks[b.index()].instrs.iter())
            .filter(|&&i| {
                matches!(f.instrs[i.index()].kind, InstrKind::Load { .. } | InstrKind::Store { .. })
            })
            .count()
    }

    const ACCUMULATOR: &str = r#"
        define i64 @f(ptr %acc, i64 %n) {
        entry:
          br header
        header:
          %i = phi i64, [entry: i64 0], [body: %next]
          %c = icmp slt i64, %i, %n
          condbr %c, body, exit
        body:
          %cur = load i64, %acc
          %sum = add i64, %cur, %i
          store i64, %sum, %acc
          %next = add i64, %i, i64 1
          br header
        exit:
          %r = load i64, %acc
          ret %r
        }
    "#;

    #[test]
    fn promotes_accumulator_out_of_loop() {
        let m = promote_and_mem2reg(ACCUMULATOR);
        assert_eq!(loop_mem_ops(&m, "f"), 0, "\n{}", crate::printer::print_module(&m));
    }

    #[test]
    fn promotion_keeps_source_locations() {
        // The preheader load and exit store-back stand in for the loop's
        // accesses; a bounds check placed on them must still attribute to
        // the original source lines (the hoisted load once showed up as
        // `<unknown>` in `mi profile`).
        let src = r#"
            define i64 @f(ptr %acc, i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %cur = load i64, %acc !7
              %sum = add i64, %cur, %i !7
              store i64, %sum, %acc !9
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let mut m = crate::parser::parse_module(src).unwrap();
        run_on_module(&PromoteLoopScalars, &mut m);
        let (_, f) = m.function_by_name("f").unwrap();
        let loc_of = |bid: usize, pred: &dyn Fn(&InstrKind) -> bool| {
            f.blocks[bid]
                .instrs
                .iter()
                .map(|&i| &f.instrs[i.index()])
                .find(|i| pred(&i.kind))
                .map(|i| i.loc.expect("instr has a loc").line)
        };
        // entry (preheader): the hoisted load carries the loop load's line.
        let pre_load =
            loc_of(0, &|k| matches!(k, InstrKind::Load { ptr, .. } if ptr.as_value().is_some()));
        assert_eq!(pre_load, Some(7));
        // exit: the store-back carries the loop store's line.
        let back_store = loc_of(3, &|k| matches!(k, InstrKind::Store { .. }));
        assert_eq!(back_store, Some(9));
    }

    #[test]
    fn promoted_loop_computes_same_value() {
        // Run both versions in a quick structural sanity check: the final
        // store-back must exist in the exit block.
        let m = promote_and_mem2reg(ACCUMULATOR);
        let (_, f) = m.function_by_name("f").unwrap();
        let exit_stores = f.blocks[3]
            .instrs
            .iter()
            .filter(|&&i| matches!(f.instrs[i.index()].kind, InstrKind::Store { .. }))
            .count();
        assert_eq!(exit_stores, 1);
    }

    #[test]
    fn effectful_call_blocks_promotion() {
        let src = r#"
            hostdecl void @check(ptr)
            define i64 @f(ptr %acc, i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              call void @check(%acc)
              %cur = load i64, %acc
              %sum = add i64, %cur, %i
              store i64, %sum, %acc
              %next = add i64, %i, i64 1
              br header
            exit:
              %r = load i64, %acc
              ret %r
            }
        "#;
        let m = promote_and_mem2reg(src);
        assert!(loop_mem_ops(&m, "f") >= 2, "checked loop must keep its accesses");
    }

    #[test]
    fn aliasing_store_blocks_promotion() {
        let src = r#"
            define i64 @f(ptr %acc, ptr %other, i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %cur = load i64, %acc
              %sum = add i64, %cur, %i
              store i64, %sum, %acc
              store i64, %i, %other
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let m = promote_and_mem2reg(src);
        assert!(loop_mem_ops(&m, "f") >= 2, "possible alias must block promotion");
    }

    #[test]
    fn aliasing_load_blocks_promotion() {
        // The loop stores through a const gep but *loads* the same array
        // with a variable index: promoting the store would leave the
        // loads reading a stale element. This exact shape (inlined
        // `h[3] = x; x += sum(h, n)` loop) once miscompiled under O3.
        let src = r#"
            define i64 @f(ptr %h, i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %pv = gep i64, %h, [%i]
              %v = load i64, %pv
              %p3 = gep i64, %h, [i64 3]
              store i64, %v, %p3
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let m = promote_and_mem2reg(src);
        assert!(loop_mem_ops(&m, "f") >= 2, "aliasing load must block promotion");
    }

    #[test]
    fn load_from_distinct_object_permits_promotion() {
        // Same shape, but the loads walk a *different alloca*: distinct
        // identified objects cannot alias, so the accumulator store
        // still promotes.
        let src = r#"
            define i64 @f(i64 %n) {
            entry:
              %h = alloca i64, i64 8
              %a = alloca i64, i64 8
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %pv = gep i64, %a, [%i]
              %v = load i64, %pv
              %p3 = gep i64, %h, [i64 3]
              %cur = load i64, %p3
              %sum = add i64, %cur, %v
              store i64, %sum, %p3
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let m = promote_and_mem2reg(src);
        // Only the variable-index loads from %a remain in the loop.
        assert_eq!(loop_mem_ops(&m, "f"), 1, "\n{}", crate::printer::print_module(&m));
    }

    #[test]
    fn distinct_global_slots_promote_together() {
        // Two global accumulators with provably disjoint const-gep keys.
        let src = r#"
            global @a : [4 x i64] = zero
            define void @f(i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, body, exit
            body:
              %p0 = gep i64, @a, [i64 0]
              %v0 = load i64, %p0
              %s0 = add i64, %v0, i64 1
              store i64, %s0, %p0
              %p1 = gep i64, @a, [i64 1]
              %v1 = load i64, %p1
              %s1 = add i64, %v1, i64 2
              store i64, %s1, %p1
              %next = add i64, %i, i64 1
              br header
            exit:
              ret
            }
        "#;
        let m = promote_and_mem2reg(src);
        assert_eq!(loop_mem_ops(&m, "f"), 0, "\n{}", crate::printer::print_module(&m));
    }
}
