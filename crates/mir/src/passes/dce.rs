//! Dead code elimination.
//!
//! Removes instructions whose results are unused and which cannot observe or
//! affect program state. Calls to `Pure`/`ReadOnly` host functions are
//! removable — this reproduces the §5.4 observation that SoftBound's
//! metadata loads vanish when the checks that would consume them are not
//! generated.

use std::collections::BTreeMap;

use crate::function::Function;
use crate::ids::ValueId;
use crate::passes::{EffectInfo, FunctionPass};

/// The dead code elimination pass.
#[derive(Debug, Default)]
pub struct Dce;

impl FunctionPass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, effects: &EffectInfo, f: &mut Function) -> bool {
        let mut changed_any = false;
        loop {
            // Count uses of every value.
            let mut uses: BTreeMap<ValueId, usize> = BTreeMap::new();
            for block in &f.blocks {
                for &iid in &block.instrs {
                    f.instrs[iid.index()].kind.for_each_operand(|op| {
                        if let Some(v) = op.as_value() {
                            *uses.entry(v).or_insert(0) += 1;
                        }
                    });
                }
                block.term.for_each_operand(|op| {
                    if let Some(v) = op.as_value() {
                        *uses.entry(v).or_insert(0) += 1;
                    }
                });
            }
            let mut changed = false;
            for bi in 0..f.blocks.len() {
                let ids = f.blocks[bi].instrs.clone();
                for iid in ids {
                    let instr = &f.instrs[iid.index()];
                    let dead = match instr.result {
                        Some(v) => uses.get(&v).copied().unwrap_or(0) == 0,
                        None => false,
                    };
                    if dead && effects.is_removable_if_unused(&instr.kind) {
                        f.remove_instr(crate::ids::BlockId::new(bi), iid);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            changed_any = true;
        }
        changed_any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Operand;
    use crate::module::Effect;
    use crate::passes::run_on_module;
    use crate::types::Type;
    use crate::verifier::verify_module;

    #[test]
    fn removes_unused_chain() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let a = fb.add(Type::I64, Operand::i64(1), Operand::i64(2));
        let _b = fb.mul(Type::I64, a, Operand::i64(3));
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Dce, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 0);
    }

    #[test]
    fn keeps_effectful_calls() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("check", vec![Type::I64], Type::I64, Effect::Effectful);
        let mut fb = mb.function("f", vec![], Type::I64);
        let _unused = fb.call("check", Type::I64, vec![Operand::i64(1)]);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&Dce, &mut m);
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 1);
    }

    #[test]
    fn removes_unused_readonly_calls() {
        // This is the §5.4 effect: metadata loads without consumers vanish.
        let mut mb = ModuleBuilder::new("m");
        mb.host("trie_load", vec![Type::Ptr], Type::Ptr, Effect::ReadOnly);
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let _meta = fb.call("trie_load", Type::Ptr, vec![p]);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Dce, &mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 0);
    }

    #[test]
    fn keeps_stores() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::Void);
        let p = fb.param(0);
        fb.store(Type::I64, Operand::i64(1), p);
        fb.ret(None);
        fb.finish();
        let mut m = mb.finish();
        assert!(!run_on_module(&Dce, &mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 1);
    }

    #[test]
    fn removes_dead_loads() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let _v = fb.load(Type::I64, p);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Dce, &mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 0);
    }

    #[test]
    fn transitively_dead_phi_cycle_stays() {
        // Self-referential phis are not removed by this simple DCE (they
        // count as uses); GVN/simplifycfg handle those separately.
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("h");
        let exit = fb.new_block("x");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::i64(0)), (header, Operand::i64(0))]);
        let c = fb.icmp(crate::instr::IcmpPred::Slt, Type::I64, i, fb.param(0));
        fb.cond_br(c, header, exit);
        fb.switch_to(exit);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&Dce, &mut m);
        verify_module(&m).unwrap();
    }
}
