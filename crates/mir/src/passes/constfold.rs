//! Constant folding and trivial algebraic simplification.
//!
//! Folds integer/float arithmetic, comparisons, casts, and selects whose
//! operands are constants, plus a few identities (`x+0`, `x*1`, `x&x`, ...).
//! Folding is iterated until a fixpoint within the pass.

use crate::function::Function;
use crate::instr::{BinOp, CastOp, FcmpPred, IcmpPred, InstrKind, Operand};
use crate::passes::{EffectInfo, FunctionPass};
use crate::types::Type;

/// The constant-folding pass.
#[derive(Debug, Default)]
pub struct ConstFold;

impl FunctionPass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, _effects: &EffectInfo, f: &mut Function) -> bool {
        let mut changed_any = false;
        loop {
            let mut changed = false;
            for bi in 0..f.blocks.len() {
                let bid = crate::ids::BlockId::new(bi);
                let ids = f.blocks[bi].instrs.clone();
                for iid in ids {
                    let instr = &f.instrs[iid.index()];
                    if instr.result.is_none() {
                        continue;
                    }
                    // Re-read the (possibly rewritten) instruction each time
                    // so chains like `add x,0` feeding `mul _,1` fold within
                    // one round.
                    if let Some(rep) = fold(&f.instrs[iid.index()].kind) {
                        if let Some(v) = f.instrs[iid.index()].result {
                            f.replace_all_uses(v, &rep);
                        }
                        f.remove_instr(bid, iid);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            changed_any = true;
        }
        changed_any
    }
}

/// Truncates `v` to the width of integer type `ty`, preserving two's
/// complement semantics (result is sign-extended back to `i64` storage).
pub fn truncate_to(ty: &Type, v: i64) -> i64 {
    match ty {
        Type::I1 => v & 1,
        Type::I8 => v as i8 as i64,
        Type::I16 => v as i16 as i64,
        Type::I32 => v as i32 as i64,
        Type::I64 => v,
        _ => v,
    }
}

fn zext_bits(ty: &Type, v: i64) -> u64 {
    match ty {
        Type::I1 => (v as u64) & 1,
        Type::I8 => v as u8 as u64,
        Type::I16 => v as u16 as u64,
        Type::I32 => v as u32 as u64,
        _ => v as u64,
    }
}

fn fold(kind: &InstrKind) -> Option<Operand> {
    match kind {
        InstrKind::Bin { op, ty, lhs, rhs } => fold_bin(*op, ty, lhs, rhs),
        InstrKind::Icmp { pred, ty, lhs, rhs } => {
            let (a, b) = (lhs.as_const_int()?, rhs.as_const_int()?);
            let (ua, ub) = (zext_bits(ty, a), zext_bits(ty, b));
            let (sa, sb) = (truncate_to(ty, a), truncate_to(ty, b));
            let r = match pred {
                IcmpPred::Eq => ua == ub,
                IcmpPred::Ne => ua != ub,
                IcmpPred::Slt => sa < sb,
                IcmpPred::Sle => sa <= sb,
                IcmpPred::Sgt => sa > sb,
                IcmpPred::Sge => sa >= sb,
                IcmpPred::Ult => ua < ub,
                IcmpPred::Ule => ua <= ub,
                IcmpPred::Ugt => ua > ub,
                IcmpPred::Uge => ua >= ub,
            };
            Some(Operand::bool(r))
        }
        InstrKind::Fcmp { pred, lhs, rhs } => {
            let (a, b) = match (lhs, rhs) {
                (Operand::ConstFloat(a), Operand::ConstFloat(b)) => (*a, *b),
                _ => return None,
            };
            let r = match pred {
                FcmpPred::Oeq => a == b,
                FcmpPred::One => a != b,
                FcmpPred::Olt => a < b,
                FcmpPred::Ole => a <= b,
                FcmpPred::Ogt => a > b,
                FcmpPred::Oge => a >= b,
            };
            Some(Operand::bool(r))
        }
        InstrKind::Select { cond, then_value, else_value, .. } => {
            let c = cond.as_const_int()?;
            Some(if c != 0 { then_value.clone() } else { else_value.clone() })
        }
        InstrKind::Cast { op, value, from, to } => fold_cast(*op, value, from, to),
        InstrKind::Phi { incoming, .. } => {
            // A phi whose incoming values are all identical (and not the phi
            // itself) folds to that value.
            let first = incoming.first()?.1.clone();
            if !incoming.is_empty() && incoming.iter().all(|(_, op)| *op == first) {
                Some(first)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn fold_bin(op: BinOp, ty: &Type, lhs: &Operand, rhs: &Operand) -> Option<Operand> {
    // Float folding.
    if op.is_float() {
        if let (Operand::ConstFloat(a), Operand::ConstFloat(b)) = (lhs, rhs) {
            let r = match op {
                BinOp::FAdd => a + b,
                BinOp::FSub => a - b,
                BinOp::FMul => a * b,
                BinOp::FDiv => a / b,
                _ => unreachable!(),
            };
            return Some(Operand::ConstFloat(r));
        }
        return None;
    }

    // Identities with one constant side.
    match (op, lhs.as_const_int(), rhs.as_const_int()) {
        (BinOp::Add, Some(0), _) => return Some(rhs.clone()),
        (BinOp::Add, _, Some(0)) => return Some(lhs.clone()),
        (BinOp::Sub, _, Some(0)) => return Some(lhs.clone()),
        (BinOp::Mul, _, Some(1)) => return Some(lhs.clone()),
        (BinOp::Mul, Some(1), _) => return Some(rhs.clone()),
        (BinOp::Mul, _, Some(0)) | (BinOp::Mul, Some(0), _) => {
            return Some(Operand::ConstInt { ty: ty.clone(), value: 0 })
        }
        (BinOp::And, _, Some(0)) | (BinOp::And, Some(0), _) => {
            return Some(Operand::ConstInt { ty: ty.clone(), value: 0 })
        }
        (BinOp::Or, _, Some(0)) => return Some(lhs.clone()),
        (BinOp::Or, Some(0), _) => return Some(rhs.clone()),
        (BinOp::Xor, _, Some(0)) => return Some(lhs.clone()),
        (BinOp::Shl, _, Some(0)) | (BinOp::LShr, _, Some(0)) | (BinOp::AShr, _, Some(0)) => {
            return Some(lhs.clone())
        }
        _ => {}
    }

    let (a, b) = (lhs.as_const_int()?, rhs.as_const_int()?);
    let bits = ty.int_bits();
    let ua = zext_bits(ty, a);
    let ub = zext_bits(ty, b);
    let value = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return None; // preserve the trap
            }
            truncate_to(ty, a).checked_div(truncate_to(ty, b))?
        }
        BinOp::UDiv => {
            if ub == 0 {
                return None;
            }
            (ua / ub) as i64
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            truncate_to(ty, a).checked_rem(truncate_to(ty, b))?
        }
        BinOp::URem => {
            if ub == 0 {
                return None;
            }
            (ua % ub) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            let sh = (ub as u32) % bits.max(1);
            (ua << sh) as i64
        }
        BinOp::LShr => {
            let sh = (ub as u32) % bits.max(1);
            (ua >> sh) as i64
        }
        BinOp::AShr => {
            let sh = (ub as u32) % bits.max(1);
            truncate_to(ty, a) >> sh
        }
        _ => unreachable!(),
    };
    Some(Operand::ConstInt { ty: ty.clone(), value: truncate_to(ty, value) })
}

fn fold_cast(op: CastOp, value: &Operand, from: &Type, to: &Type) -> Option<Operand> {
    match op {
        CastOp::Zext => {
            let v = value.as_const_int()?;
            Some(Operand::ConstInt { ty: to.clone(), value: zext_bits(from, v) as i64 })
        }
        CastOp::Sext => {
            let v = value.as_const_int()?;
            Some(Operand::ConstInt { ty: to.clone(), value: truncate_to(from, v) })
        }
        CastOp::Trunc => {
            let v = value.as_const_int()?;
            Some(Operand::ConstInt { ty: to.clone(), value: truncate_to(to, v) })
        }
        CastOp::SiToFp => {
            let v = value.as_const_int()?;
            Some(Operand::ConstFloat(truncate_to(from, v) as f64))
        }
        CastOp::FpToSi => match value {
            Operand::ConstFloat(x) => {
                Some(Operand::ConstInt { ty: to.clone(), value: truncate_to(to, *x as i64) })
            }
            _ => None,
        },
        // Pointer casts and bitcasts are never folded: inttoptr/ptrtoint
        // identity is exactly what instrumentation must be able to see
        // (§4.4 of the paper).
        CastOp::PtrToInt | CastOp::IntToPtr | CastOp::Bitcast => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Terminator;
    use crate::passes::run_on_module;
    use crate::verifier::verify_module;

    fn fold_single(
        mk: impl FnOnce(&mut crate::builder::FunctionBuilder<'_>) -> Operand,
        ret_ty: Type,
    ) -> Terminator {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], ret_ty);
        let v = mk(&mut fb);
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&ConstFold, &mut m);
        verify_module(&m).unwrap();
        m.function_by_name("f").unwrap().1.blocks[0].term.clone()
    }

    #[test]
    fn folds_arithmetic() {
        let t = fold_single(|fb| fb.add(Type::I64, Operand::i64(40), Operand::i64(2)), Type::I64);
        assert_eq!(t, Terminator::Ret(Some(Operand::i64(42))));
    }

    #[test]
    fn folds_wrapping_i8() {
        let t = fold_single(
            |fb| {
                fb.add(
                    Type::I8,
                    Operand::ConstInt { ty: Type::I8, value: 127 },
                    Operand::ConstInt { ty: Type::I8, value: 1 },
                )
            },
            Type::I8,
        );
        assert_eq!(t, Terminator::Ret(Some(Operand::ConstInt { ty: Type::I8, value: -128 })));
    }

    #[test]
    fn folds_icmp_unsigned() {
        let t = fold_single(
            |fb| {
                fb.icmp(
                    IcmpPred::Ult,
                    Type::I8,
                    Operand::ConstInt { ty: Type::I8, value: -1 }, // 255 unsigned
                    Operand::ConstInt { ty: Type::I8, value: 1 },
                )
            },
            Type::I1,
        );
        assert_eq!(t, Terminator::Ret(Some(Operand::bool(false))));
    }

    #[test]
    fn preserves_division_by_zero() {
        let t = fold_single(
            |fb| fb.bin(BinOp::SDiv, Type::I64, Operand::i64(1), Operand::i64(0)),
            Type::I64,
        );
        // Not folded: the trap must still happen at runtime.
        assert!(matches!(t, Terminator::Ret(Some(Operand::Val(_)))));
    }

    #[test]
    fn folds_identities_with_unknown_operand() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let x = fb.param(0);
        let y = fb.add(Type::I64, x.clone(), Operand::i64(0));
        let z = fb.mul(Type::I64, y, Operand::i64(1));
        fb.ret(Some(z));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&ConstFold, &mut m);
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 0);
        assert_eq!(f.blocks[0].term, Terminator::Ret(Some(x)));
    }

    #[test]
    fn folds_casts() {
        let t = fold_single(
            |fb| {
                fb.cast(
                    CastOp::Sext,
                    Operand::ConstInt { ty: Type::I8, value: -1 },
                    Type::I8,
                    Type::I64,
                )
            },
            Type::I64,
        );
        assert_eq!(t, Terminator::Ret(Some(Operand::i64(-1))));
        let t = fold_single(
            |fb| {
                fb.cast(
                    CastOp::Zext,
                    Operand::ConstInt { ty: Type::I8, value: -1 },
                    Type::I8,
                    Type::I64,
                )
            },
            Type::I64,
        );
        assert_eq!(t, Terminator::Ret(Some(Operand::i64(255))));
    }

    #[test]
    fn does_not_fold_inttoptr() {
        let t = fold_single(
            |fb| fb.cast(CastOp::IntToPtr, Operand::i64(4096), Type::I64, Type::Ptr),
            Type::Ptr,
        );
        assert!(matches!(t, Terminator::Ret(Some(Operand::Val(_)))));
    }

    #[test]
    fn folds_select_and_float() {
        let t = fold_single(
            |fb| {
                let c = fb.fcmp(FcmpPred::Olt, Operand::ConstFloat(1.0), Operand::ConstFloat(2.0));
                fb.select(Type::I64, c, Operand::i64(7), Operand::i64(8))
            },
            Type::I64,
        );
        assert_eq!(t, Terminator::Ret(Some(Operand::i64(7))));
    }
}
