//! Optimization passes.
//!
//! The pass set mirrors the parts of an `-O2`/`-O3` LLVM pipeline that the
//! paper's evaluation depends on: `mem2reg` (fewer memory accesses → fewer
//! checks), GVN with redundant-load elimination, constant folding, DCE,
//! CFG simplification, and LICM. All passes treat calls to *effectful* host
//! functions (checks, metadata stores) as optimization barriers while
//! `Pure`/`ReadOnly` runtime helpers (low-fat base recovery, trie lookups)
//! remain optimizable — reproducing the §5.4/§5.5 interactions.

pub mod constfold;
pub mod dce;
pub mod dse;
pub mod gvn;
pub mod inline;
pub mod licm;
pub mod mem2reg;
pub mod promote;
pub mod simplifycfg;

use std::collections::BTreeMap;

use crate::function::Function;
use crate::instr::{InstrKind, Terminator};
use crate::module::{Effect, Module};

/// Snapshot of callee effects used by function passes (avoids borrowing the
/// module while mutating one of its functions).
#[derive(Clone, Debug, Default)]
pub struct EffectInfo {
    map: BTreeMap<String, Effect>,
}

impl EffectInfo {
    /// Extracts the effect table from a module.
    pub fn of_module(m: &Module) -> EffectInfo {
        let mut map = BTreeMap::new();
        for f in &m.functions {
            map.insert(f.name.clone(), Effect::Effectful);
        }
        for (name, decl) in &m.host_decls {
            map.insert(name.clone(), decl.effect);
        }
        EffectInfo { map }
    }

    /// Effect of calling `name` (unknown callees are effectful).
    pub fn callee(&self, name: &str) -> Effect {
        self.map.get(name).copied().unwrap_or(Effect::Effectful)
    }

    /// Whether an instruction may write memory or abort (kills load
    /// availability and blocks removal).
    pub fn writes_or_aborts(&self, kind: &InstrKind) -> bool {
        match kind {
            InstrKind::Store { .. } | InstrKind::MemCpy { .. } | InstrKind::MemSet { .. } => true,
            InstrKind::Call { callee, .. } => self.callee(callee) == Effect::Effectful,
            InstrKind::CallIndirect { .. } => true,
            _ => false,
        }
    }

    /// Whether an instruction can be deleted when its result is unused.
    pub fn is_removable_if_unused(&self, kind: &InstrKind) -> bool {
        match kind {
            InstrKind::Store { .. } | InstrKind::MemCpy { .. } | InstrKind::MemSet { .. } => false,
            InstrKind::Call { callee, .. } => self.callee(callee) != Effect::Effectful,
            InstrKind::CallIndirect { .. } => false,
            InstrKind::Bin { op, .. } => !op.can_trap(),
            // Loads from unmapped memory trap in the VM, but a C compiler may
            // remove dead loads (a removed load cannot fault in a correct
            // program); we follow LLVM here.
            InstrKind::Load { .. } => true,
            InstrKind::Nop => true,
            _ => true,
        }
    }
}

/// A transformation over a single function.
pub trait FunctionPass {
    /// Pass name for diagnostics.
    fn name(&self) -> &'static str;
    /// Runs the pass; returns `true` if the function changed.
    fn run(&self, effects: &EffectInfo, f: &mut Function) -> bool;
}

/// A transformation over a whole module (used for instrumentation plugins).
pub trait ModulePass {
    /// Pass name for diagnostics.
    fn name(&self) -> &'static str;
    /// Runs the pass; returns `true` if the module changed.
    fn run(&mut self, m: &mut Module) -> bool;
}

/// Runs a function pass over every function definition in the module.
pub fn run_on_module(pass: &dyn FunctionPass, m: &mut Module) -> bool {
    let effects = EffectInfo::of_module(m);
    let mut changed = false;
    for f in &mut m.functions {
        if f.is_declaration {
            continue;
        }
        changed |= pass.run(&effects, f);
    }
    changed
}

/// Disconnects all blocks unreachable from the entry: their instruction
/// lists are cleared and their terminators set to `unreachable`, removing
/// any edges into live code. Returns `true` if anything changed.
///
/// Also prunes phi incoming entries whose predecessor edge disappeared.
pub fn remove_unreachable_blocks(f: &mut Function) -> bool {
    let cfg = crate::analysis::Cfg::compute(f);
    let mut changed = false;
    let unreachable: Vec<_> = (0..f.blocks.len())
        .map(crate::ids::BlockId::new)
        .filter(|&b| !cfg.is_reachable(b))
        .collect();
    for b in &unreachable {
        if f.blocks[b.index()].instrs.is_empty()
            && f.blocks[b.index()].term == Terminator::Unreachable
        {
            continue;
        }
        changed = true;
        for iid in std::mem::take(&mut f.blocks[b.index()].instrs) {
            f.instrs[iid.index()].kind = InstrKind::Nop;
        }
        f.blocks[b.index()].term = Terminator::Unreachable;
    }
    if changed {
        // Recompute preds and prune phi incoming lists accordingly.
        let cfg = crate::analysis::Cfg::compute(f);
        for bi in 0..f.blocks.len() {
            let bid = crate::ids::BlockId::new(bi);
            let preds: Vec<_> = cfg.preds(bid).to_vec();
            let instr_ids = f.blocks[bi].instrs.clone();
            for iid in instr_ids {
                if let InstrKind::Phi { incoming, .. } = &mut f.instrs[iid.index()].kind {
                    incoming.retain(|(b, _)| preds.contains(b));
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::HostDecl;
    use crate::types::Type;

    #[test]
    fn effect_info_classifies() {
        let mut m = Module::new("t");
        m.declare_host(
            "pure_fn",
            HostDecl { params: vec![], ret: Type::I64, effect: Effect::Pure },
        );
        m.declare_host(
            "ro_fn",
            HostDecl { params: vec![], ret: Type::I64, effect: Effect::ReadOnly },
        );
        m.declare_host(
            "eff_fn",
            HostDecl { params: vec![], ret: Type::Void, effect: Effect::Effectful },
        );
        let e = EffectInfo::of_module(&m);
        assert_eq!(e.callee("pure_fn"), Effect::Pure);
        assert_eq!(e.callee("ro_fn"), Effect::ReadOnly);
        assert_eq!(e.callee("eff_fn"), Effect::Effectful);
        assert_eq!(e.callee("who_knows"), Effect::Effectful);

        let call_ro = InstrKind::Call { callee: "ro_fn".into(), args: vec![], ret: Type::I64 };
        assert!(!e.writes_or_aborts(&call_ro));
        assert!(e.is_removable_if_unused(&call_ro));
        let call_eff = InstrKind::Call { callee: "eff_fn".into(), args: vec![], ret: Type::Void };
        assert!(e.writes_or_aborts(&call_eff));
        assert!(!e.is_removable_if_unused(&call_eff));
    }

    #[test]
    fn unreachable_blocks_are_disconnected() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let dead = fb.new_block("dead");
        let live = fb.new_block("live");
        fb.br(live);
        fb.switch_to(dead);
        let v = fb.add(Type::I64, crate::instr::Operand::i64(1), crate::instr::Operand::i64(2));
        let _ = v;
        fb.br(live);
        fb.switch_to(live);
        // live has preds {entry, dead}; phi over both.
        let p = fb.phi(
            Type::I64,
            vec![
                (crate::ids::BlockId::new(0), crate::instr::Operand::i64(0)),
                (dead, crate::instr::Operand::i64(1)),
            ],
        );
        fb.ret(Some(p));
        fb.finish();
        let mut m = mb.finish();
        let f = m.function_by_name_mut("f").unwrap();
        assert!(remove_unreachable_blocks(f));
        // dead's edge is gone; phi has only the entry incoming now.
        let live_block = &f.blocks[2];
        let first = live_block.instrs[0];
        if let InstrKind::Phi { incoming, .. } = &f.instrs[first.index()].kind {
            assert_eq!(incoming.len(), 1);
        } else {
            panic!("expected phi");
        }
        assert!(crate::verifier::verify_module(&m).is_ok());
    }
}
