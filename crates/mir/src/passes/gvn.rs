//! Global value numbering with redundant-load elimination.
//!
//! Pure expressions are numbered over the dominator tree (an expression
//! computed in a dominating block is reused). Loads and `ReadOnly` host
//! calls are eliminated block-locally with store-to-load forwarding; any
//! write or effectful call kills availability — including inserted safety
//! checks, which is precisely why instrumenting early in the pipeline
//! suppresses this optimization (§5.5 of the paper).

use std::collections::HashMap;

use crate::analysis::{Cfg, DomTree};
use crate::function::Function;
use crate::ids::{BlockId, GlobalId, ValueId};
use crate::instr::{BinOp, CastOp, FcmpPred, IcmpPred, InstrKind, Operand};
use crate::passes::{EffectInfo, FunctionPass};
use crate::types::Type;

/// The GVN pass.
#[derive(Debug, Default)]
pub struct Gvn;

/// Hashable canonical form of an operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum OpKey {
    Val(ValueId),
    Int(Type, i64),
    Float(u64),
    Null,
    Global(GlobalId),
    Func(String),
    Undef,
}

fn op_key(op: &Operand) -> OpKey {
    match op {
        Operand::Val(v) => OpKey::Val(*v),
        Operand::ConstInt { ty, value } => OpKey::Int(ty.clone(), *value),
        Operand::ConstFloat(f) => OpKey::Float(f.to_bits()),
        Operand::Null => OpKey::Null,
        Operand::GlobalAddr(g) => OpKey::Global(*g),
        Operand::FuncAddr(n) => OpKey::Func(n.clone()),
        Operand::Undef(_) => OpKey::Undef,
    }
}

/// Hashable canonical form of a pure expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ExprKey {
    Bin(BinOp, Type, OpKey, OpKey),
    Icmp(IcmpPred, Type, OpKey, OpKey),
    Fcmp(FcmpPred, OpKey, OpKey),
    Cast(CastOp, Type, Type, OpKey),
    Gep(Type, OpKey, Vec<OpKey>),
    Select(Type, OpKey, OpKey, OpKey),
    PureCall(String, Vec<OpKey>),
}

/// Memory-dependent keys (killed by writes).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum MemKey {
    Load(Type, OpKey),
    RoCall(String, Vec<OpKey>),
}

fn expr_key(effects: &EffectInfo, kind: &InstrKind) -> Option<ExprKey> {
    Some(match kind {
        InstrKind::Bin { op, ty, lhs, rhs } => {
            if op.can_trap() {
                return None;
            }
            let (mut a, mut b) = (op_key(lhs), op_key(rhs));
            if op.is_commutative() {
                // Canonical order for commutative operations.
                if format!("{a:?}") > format!("{b:?}") {
                    std::mem::swap(&mut a, &mut b);
                }
            }
            ExprKey::Bin(*op, ty.clone(), a, b)
        }
        InstrKind::Icmp { pred, ty, lhs, rhs } => {
            ExprKey::Icmp(*pred, ty.clone(), op_key(lhs), op_key(rhs))
        }
        InstrKind::Fcmp { pred, lhs, rhs } => ExprKey::Fcmp(*pred, op_key(lhs), op_key(rhs)),
        InstrKind::Cast { op, value, from, to } => {
            ExprKey::Cast(*op, from.clone(), to.clone(), op_key(value))
        }
        InstrKind::Gep { elem_ty, base, indices } => {
            ExprKey::Gep(elem_ty.clone(), op_key(base), indices.iter().map(op_key).collect())
        }
        InstrKind::Select { ty, cond, then_value, else_value } => {
            ExprKey::Select(ty.clone(), op_key(cond), op_key(then_value), op_key(else_value))
        }
        InstrKind::Call { callee, args, ret } => {
            if *ret == Type::Void || effects.callee(callee) != crate::module::Effect::Pure {
                return None;
            }
            ExprKey::PureCall(callee.clone(), args.iter().map(op_key).collect())
        }
        _ => return None,
    })
}

impl FunctionPass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&self, effects: &EffectInfo, f: &mut Function) -> bool {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let mut changed = false;

        // Scoped table over the dominator tree for pure expressions.
        // We use an explicit DFS carrying a cloned map per child (functions
        // are small; clarity over constant-factor speed).
        let mut stack: Vec<(BlockId, HashMap<ExprKey, Operand>)> =
            vec![(BlockId::new(0), HashMap::new())];
        while let Some((bid, mut avail)) = stack.pop() {
            // Block-local memory availability: cleared at block entry.
            let mut mem_avail: HashMap<MemKey, Operand> = HashMap::new();
            let ids = f.blocks[bid.index()].instrs.clone();
            for iid in ids {
                let kind = f.instrs[iid.index()].kind.clone();

                // Kill memory availability on writes/aborts.
                if effects.writes_or_aborts(&kind) {
                    mem_avail.clear();
                }
                // Store-to-load forwarding: remember the stored value.
                if let InstrKind::Store { ty, value, ptr } = &kind {
                    mem_avail.insert(MemKey::Load(ty.clone(), op_key(ptr)), value.clone());
                    continue;
                }

                // Pure expression numbering.
                if let Some(key) = expr_key(effects, &kind) {
                    let result = match f.instrs[iid.index()].result {
                        Some(r) => r,
                        None => continue,
                    };
                    if let Some(prev) = avail.get(&key) {
                        let prev = prev.clone();
                        f.replace_all_uses(result, &prev);
                        f.remove_instr(bid, iid);
                        changed = true;
                    } else {
                        avail.insert(key, Operand::Val(result));
                    }
                    continue;
                }

                // Memory-dependent numbering (block local).
                let mem_key = match &kind {
                    InstrKind::Load { ty, ptr } => Some(MemKey::Load(ty.clone(), op_key(ptr))),
                    InstrKind::Call { callee, args, ret } => {
                        if *ret != Type::Void
                            && effects.callee(callee) == crate::module::Effect::ReadOnly
                        {
                            Some(MemKey::RoCall(callee.clone(), args.iter().map(op_key).collect()))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                if let Some(mk) = mem_key {
                    let result = match f.instrs[iid.index()].result {
                        Some(r) => r,
                        None => continue,
                    };
                    if let Some(prev) = mem_avail.get(&mk) {
                        let prev = prev.clone();
                        f.replace_all_uses(result, &prev);
                        f.remove_instr(bid, iid);
                        changed = true;
                    } else {
                        mem_avail.insert(mk, Operand::Val(result));
                    }
                }
            }
            for &child in dom.children(bid) {
                stack.push((child, avail.clone()));
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::Effect;
    use crate::passes::run_on_module;
    use crate::verifier::verify_module;

    #[test]
    fn dedupes_pure_expression_across_blocks() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let next = fb.new_block("next");
        let x = fb.param(0);
        let a = fb.add(Type::I64, x.clone(), Operand::i64(1));
        let _ = a;
        fb.br(next);
        fb.switch_to(next);
        let b = fb.add(Type::I64, x, Operand::i64(1));
        fb.ret(Some(b));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Gvn, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 1);
    }

    #[test]
    fn commutative_canonicalization() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64), ("y", Type::I64)], Type::I64);
        let x = fb.param(0);
        let y = fb.param(1);
        let a = fb.add(Type::I64, x.clone(), y.clone());
        let b = fb.add(Type::I64, y, x);
        let s = fb.sub(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Gvn, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 2); // one add + the sub
    }

    #[test]
    fn redundant_load_in_block_eliminated() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        let b = fb.load(Type::I64, p);
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Gvn, &mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 2);
    }

    #[test]
    fn store_kills_load_availability() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr), ("q", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let q = fb.param(1);
        let a = fb.load(Type::I64, p.clone());
        fb.store(Type::I64, Operand::i64(0), q); // may alias p
        let b = fb.load(Type::I64, p);
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&Gvn, &mut m);
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 4); // both loads survive
    }

    #[test]
    fn effectful_call_kills_load_availability() {
        // A safety check between two identical loads blocks their merging —
        // the §5.5 mechanism.
        let mut mb = ModuleBuilder::new("m");
        mb.host("check", vec![Type::Ptr], Type::Void, Effect::Effectful);
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        let a = fb.load(Type::I64, p.clone());
        fb.call("check", Type::Void, vec![p.clone()]);
        let b = fb.load(Type::I64, p);
        let s = fb.add(Type::I64, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&Gvn, &mut m);
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 4); // load, check, load, add
    }

    #[test]
    fn readonly_call_deduped() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("trie_get", vec![Type::Ptr], Type::Ptr, Effect::ReadOnly);
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::Ptr);
        let p = fb.param(0);
        let a = fb.call("trie_get", Type::Ptr, vec![p.clone()]);
        let _ = a;
        let b = fb.call("trie_get", Type::Ptr, vec![p]);
        fb.ret(Some(b));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Gvn, &mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 1);
    }

    #[test]
    fn store_to_load_forwarding() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("p", Type::Ptr)], Type::I64);
        let p = fb.param(0);
        fb.store(Type::I64, Operand::i64(7), p.clone());
        let v = fb.load(Type::I64, p);
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Gvn, &mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 1); // only the store remains
        assert_eq!(f.blocks[0].term, crate::instr::Terminator::Ret(Some(Operand::i64(7))));
    }
}
