//! Dead store elimination (block-local).
//!
//! A store is dead when the same location is overwritten later in the same
//! block by a store of at least the same width, with nothing in between
//! that could read the location (loads, calls, mem-intrinsics all count as
//! potential readers — and so do inserted safety checks, which may abort:
//! another way early-inserted instrumentation blocks optimization, §5.5).

use std::collections::HashMap;

use crate::function::Function;
use crate::instr::{InstrKind, Operand};
use crate::passes::{EffectInfo, FunctionPass};

/// The dead-store-elimination pass.
#[derive(Debug, Default)]
pub struct Dse;

impl FunctionPass for Dse {
    fn name(&self) -> &'static str {
        "dse"
    }

    fn run(&self, effects: &EffectInfo, f: &mut Function) -> bool {
        let mut changed = false;
        for bi in 0..f.blocks.len() {
            let bid = crate::ids::BlockId::new(bi);
            // Walk backward; remember locations that will be overwritten
            // before any potential read.
            let mut overwritten: HashMap<String, u64> = HashMap::new();
            let ids: Vec<_> = f.blocks[bi].instrs.clone();
            for &iid in ids.iter().rev() {
                let kind = f.instrs[iid.index()].kind.clone();
                match &kind {
                    InstrKind::Store { ty, ptr, .. } => {
                        let key = op_key(ptr);
                        let width = ty.size_of();
                        if let Some(&later_width) = overwritten.get(&key) {
                            if later_width >= width {
                                f.remove_instr(bid, iid);
                                changed = true;
                                continue;
                            }
                        }
                        overwritten.insert(key, width);
                    }
                    InstrKind::Load { .. }
                    | InstrKind::MemCpy { .. }
                    | InstrKind::MemSet { .. }
                    | InstrKind::CallIndirect { .. } => overwritten.clear(),
                    InstrKind::Call { .. }
                        // Pure host calls cannot read program memory; any
                        // other call might (or might abort, making the
                        // earlier store observable).
                        if effects.callee_of(&kind) != Some(crate::module::Effect::Pure) => {
                            overwritten.clear();
                        }
                    _ => {}
                }
            }
        }
        changed
    }
}

fn op_key(op: &Operand) -> String {
    format!("{op:?}")
}

impl EffectInfo {
    /// Effect of a call instruction's callee, if `kind` is a direct call.
    pub fn callee_of(&self, kind: &InstrKind) -> Option<crate::module::Effect> {
        match kind {
            InstrKind::Call { callee, .. } => Some(self.callee(callee)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_on_module;
    use crate::verifier::verify_module;

    fn run(src: &str) -> crate::module::Module {
        let mut m = crate::parser::parse_module(src).unwrap();
        run_on_module(&Dse, &mut m);
        verify_module(&m).unwrap();
        m
    }

    fn store_count(m: &crate::module::Module) -> usize {
        m.functions
            .iter()
            .flat_map(|f| {
                f.blocks.iter().flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
            })
            .filter(|k| matches!(k, InstrKind::Store { .. }))
            .count()
    }

    #[test]
    fn removes_overwritten_store() {
        let m = run(r#"
            define void @f(ptr %p) {
            entry:
              store i64, i64 1, %p
              store i64, i64 2, %p
              ret
            }
        "#);
        assert_eq!(store_count(&m), 1);
    }

    #[test]
    fn intervening_load_keeps_store() {
        let m = run(r#"
            define i64 @f(ptr %p) {
            entry:
              store i64, i64 1, %p
              %v = load i64, %p
              store i64, i64 2, %p
              ret %v
            }
        "#);
        assert_eq!(store_count(&m), 2);
    }

    #[test]
    fn effectful_call_keeps_store() {
        let m = run(r#"
            hostdecl void @check(ptr)
            define void @f(ptr %p) {
            entry:
              store i64, i64 1, %p
              call void @check(%p)
              store i64, i64 2, %p
              ret
            }
        "#);
        assert_eq!(store_count(&m), 2);
    }

    #[test]
    fn pure_call_does_not_keep_store() {
        let m = run(r#"
            hostdecl ptr @lf_base(ptr) pure
            define void @f(ptr %p) {
            entry:
              store i64, i64 1, %p
              %b = call ptr @lf_base(%p)
              store i64, i64 2, %p
              ret
            }
        "#);
        assert_eq!(store_count(&m), 1);
    }

    #[test]
    fn narrower_overwrite_keeps_wider_store() {
        let m = run(r#"
            define void @f(ptr %p) {
            entry:
              store i64, i64 1, %p
              store i8, i8 2, %p
              ret
            }
        "#);
        assert_eq!(store_count(&m), 2);
    }

    #[test]
    fn different_pointers_kept() {
        let m = run(r#"
            define void @f(ptr %p, ptr %q) {
            entry:
              store i64, i64 1, %p
              store i64, i64 2, %q
              ret
            }
        "#);
        assert_eq!(store_count(&m), 2);
    }
}
