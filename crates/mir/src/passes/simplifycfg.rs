//! CFG simplification: constant branch folding, unreachable-code removal,
//! straight-line block merging, and single-entry phi elimination.

use crate::function::Function;
use crate::ids::BlockId;
use crate::instr::{InstrKind, Terminator};
use crate::passes::{remove_unreachable_blocks, EffectInfo, FunctionPass};

/// The CFG simplification pass.
#[derive(Debug, Default)]
pub struct SimplifyCfg;

impl FunctionPass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run(&self, _effects: &EffectInfo, f: &mut Function) -> bool {
        let mut changed_any = false;
        loop {
            let mut changed = false;
            changed |= fold_constant_branches(f);
            changed |= remove_unreachable_blocks(f);
            changed |= simplify_single_incoming_phis(f);
            changed |= merge_straight_line_blocks(f);
            if !changed {
                break;
            }
            changed_any = true;
        }
        changed_any
    }
}

/// Rewrites `condbr` on constants (and with identical targets) into `br`,
/// pruning the phi incoming entry of the dropped edge.
fn fold_constant_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let bid = BlockId::new(bi);
        let (taken, dropped) = match &f.blocks[bi].term {
            Terminator::CondBr { cond, then_bb, else_bb } => {
                if then_bb == else_bb {
                    (*then_bb, None)
                } else {
                    match cond.as_const_int() {
                        Some(0) => (*else_bb, Some(*then_bb)),
                        Some(_) => (*then_bb, Some(*else_bb)),
                        None => continue,
                    }
                }
            }
            _ => continue,
        };
        f.blocks[bi].term = Terminator::Br(taken);
        if let Some(d) = dropped {
            remove_phi_incoming(f, d, bid);
        }
        changed = true;
    }
    changed
}

/// Removes the incoming entry for edge `pred -> block` from `block`'s phis.
fn remove_phi_incoming(f: &mut Function, block: BlockId, pred: BlockId) {
    let ids = f.blocks[block.index()].instrs.clone();
    for iid in ids {
        if let InstrKind::Phi { incoming, .. } = &mut f.instrs[iid.index()].kind {
            incoming.retain(|(b, _)| *b != pred);
        }
    }
}

/// Replaces phis that have exactly one incoming entry with that value.
fn simplify_single_incoming_phis(f: &mut Function) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let bid = BlockId::new(bi);
        let ids = f.blocks[bi].instrs.clone();
        for iid in ids {
            let rep = match &f.instrs[iid.index()].kind {
                InstrKind::Phi { incoming, .. } if incoming.len() == 1 => incoming[0].1.clone(),
                _ => continue,
            };
            let result = f.instrs[iid.index()].result.expect("phi result");
            // A self-referential single-incoming phi is unreachable garbage.
            if rep.as_value() == Some(result) {
                continue;
            }
            f.replace_all_uses(result, &rep);
            f.remove_instr(bid, iid);
            changed = true;
        }
    }
    changed
}

/// Merges block `b` into its unique predecessor `a` when `a` unconditionally
/// branches to `b` and `b` has no other predecessors.
fn merge_straight_line_blocks(f: &mut Function) -> bool {
    let cfg = crate::analysis::Cfg::compute(f);
    // Find a mergeable pair (one per iteration keeps bookkeeping simple;
    // the driver loop reaches a fixpoint).
    for ai in 0..f.blocks.len() {
        let a = BlockId::new(ai);
        if !cfg.is_reachable(a) {
            continue;
        }
        let b = match f.blocks[ai].term {
            Terminator::Br(b) => b,
            _ => continue,
        };
        if b == a || cfg.preds(b).len() != 1 {
            continue;
        }
        // b's phis all have a single incoming (from a) — resolve them first.
        let ids = f.blocks[b.index()].instrs.clone();
        let mut resolvable = true;
        for &iid in &ids {
            if let InstrKind::Phi { incoming, .. } = &f.instrs[iid.index()].kind {
                if incoming.len() != 1 {
                    resolvable = false;
                }
            }
        }
        if !resolvable {
            continue;
        }
        for iid in ids {
            if let InstrKind::Phi { incoming, .. } = &f.instrs[iid.index()].kind {
                let rep = incoming[0].1.clone();
                let result = f.instrs[iid.index()].result.expect("phi result");
                f.replace_all_uses(result, &rep);
                f.remove_instr(b, iid);
            }
        }
        // Move instructions and terminator.
        let moved = std::mem::take(&mut f.blocks[b.index()].instrs);
        let term = std::mem::replace(&mut f.blocks[b.index()].term, Terminator::Unreachable);
        f.blocks[ai].instrs.extend(moved);
        f.blocks[ai].term = term;
        // Successors of b now have predecessor a instead of b.
        for s in f.blocks[ai].term.successors() {
            let ids = f.blocks[s.index()].instrs.clone();
            for iid in ids {
                if let InstrKind::Phi { incoming, .. } = &mut f.instrs[iid.index()].kind {
                    for (pred, _) in incoming.iter_mut() {
                        if *pred == b {
                            *pred = a;
                        }
                    }
                }
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Operand;
    use crate::passes::run_on_module;
    use crate::types::Type;
    use crate::verifier::verify_module;

    #[test]
    fn folds_constant_branch_and_merges() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        let j = fb.new_block("j");
        fb.cond_br(Operand::bool(true), t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        let v = fb.phi(Type::I64, vec![(t, Operand::i64(1)), (e, Operand::i64(2))]);
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&SimplifyCfg, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        // Everything collapses into the entry block returning 1.
        assert_eq!(f.blocks[0].term, Terminator::Ret(Some(Operand::i64(1))));
        assert_eq!(f.live_instr_count(), 0);
    }

    #[test]
    fn merges_linear_chain() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let b1 = fb.new_block("b1");
        let b2 = fb.new_block("b2");
        let x = fb.param(0);
        let a = fb.add(Type::I64, x, Operand::i64(1));
        fb.br(b1);
        fb.switch_to(b1);
        let b = fb.add(Type::I64, a, Operand::i64(2));
        fb.br(b2);
        fb.switch_to(b2);
        let c = fb.add(Type::I64, b, Operand::i64(3));
        fb.ret(Some(c));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&SimplifyCfg, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.blocks[0].instrs.len(), 3);
        assert!(matches!(f.blocks[0].term, Terminator::Ret(_)));
    }

    #[test]
    fn condbr_same_target_becomes_br() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("c", Type::I1)], Type::I64);
        let j = fb.new_block("j");
        let c = fb.param(0);
        fb.cond_br(c, j, j);
        fb.switch_to(j);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&SimplifyCfg, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert!(matches!(f.blocks[0].term, Terminator::Ret(_)));
    }

    #[test]
    fn keeps_loops_intact() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("h");
        let body = fb.new_block("b");
        let exit = fb.new_block("x");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::i64(0)), (body, Operand::i64(0))]);
        let c = fb.icmp(crate::instr::IcmpPred::Slt, Type::I64, i.clone(), fb.param(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let next = fb.add(Type::I64, i.clone(), Operand::i64(1));
        if let InstrKind::Phi { incoming, .. } = &mut fb.func_mut().instrs[0].kind {
            incoming[1].1 = next;
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&SimplifyCfg, &mut m);
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        // The loop must survive: header still has two preds.
        let cfg = crate::analysis::Cfg::compute(f);
        let header_preds = cfg.preds(crate::ids::BlockId::new(1)).len();
        assert_eq!(header_preds, 2);
    }
}
