//! Function inlining (leaf functions only).
//!
//! Inlines calls to small module-defined functions that themselves call no
//! other module-defined functions (host/runtime calls are allowed). This is
//! deliberately conservative — no recursion analysis needed — but covers
//! the helper-function pattern that makes inlining matter for the paper's
//! pipeline experiment: instrumentation inserted *before* inlining keeps
//! the callee's full metadata protocol at every (now inlined) call site,
//! while instrumentation after inlining sees plain code (§5.5).

use std::collections::HashMap;

use crate::function::Function;
use crate::ids::{BlockId, InstrId, ValueId};
use crate::instr::{InstrKind, Operand, Terminator};
use crate::module::Module;
use crate::passes::ModulePass;

/// Maximum callee size (live instructions) to inline. Instrumented
/// functions usually exceed this — which is exactly what happens with real
/// inliner cost models and contributes to the §5.5 extension-point gap:
/// instrument early and your helpers no longer inline.
const SIZE_LIMIT: usize = 50;

/// The inlining pass (module-level: it needs callee bodies).
#[derive(Debug, Default)]
pub struct Inline;

impl ModulePass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&mut self, m: &mut Module) -> bool {
        let mut changed = false;
        // Identify inlinable callees (leaf + small + defined + instrumentable
        // visibility: never inline uninstrumented library code, whose body
        // would not be visible to a real compiler).
        let inlinable: HashMap<String, Function> = m
            .functions
            .iter()
            .filter(|f| {
                !f.is_declaration
                    && !f.attrs.uninstrumented
                    && !f.attrs.no_instrument
                    && f.live_instr_count() <= SIZE_LIMIT
                    && is_leaf(m, f)
                    && allocas_only_in_entry(f)
            })
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        if inlinable.is_empty() {
            return false;
        }
        for fi in 0..m.functions.len() {
            if m.functions[fi].is_declaration {
                continue;
            }
            // Repeat until no eligible call site remains (inlined bodies are
            // leaves, so this terminates after one wave per original site).
            loop {
                let site = find_site(&m.functions[fi], &inlinable);
                let Some((block, iid, callee)) = site else { break };
                let callee_fn = inlinable[&callee].clone();
                inline_site(&mut m.functions[fi], block, iid, &callee_fn);
                changed = true;
            }
        }
        changed
    }
}

/// Whether `f` calls no module-defined function.
fn is_leaf(m: &Module, f: &Function) -> bool {
    for block in &f.blocks {
        for &iid in &block.instrs {
            match &f.instrs[iid.index()].kind {
                InstrKind::Call { callee, .. } if m.function_by_name(callee).is_some() => {
                    return false;
                }
                InstrKind::CallIndirect { .. } => return false,
                _ => {}
            }
        }
    }
    true
}

/// Whether all allocas of `f` are in its entry block (so they can be
/// relocated to the caller's entry when inlined).
fn allocas_only_in_entry(f: &Function) -> bool {
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.instrs {
            if matches!(f.instrs[iid.index()].kind, InstrKind::Alloca { .. })
                && bid != BlockId::new(0)
            {
                return false;
            }
        }
    }
    true
}

fn find_site(
    f: &Function,
    inlinable: &HashMap<String, Function>,
) -> Option<(BlockId, InstrId, String)> {
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.instrs {
            if let InstrKind::Call { callee, .. } = &f.instrs[iid.index()].kind {
                if callee != &f.name {
                    if let Some(c) = inlinable.get(callee) {
                        let _ = c;
                        return Some((bid, iid, callee.clone()));
                    }
                }
            }
        }
    }
    None
}

/// Inlines `callee` at call instruction `call_iid` in block `call_block`.
fn inline_site(f: &mut Function, call_block: BlockId, call_iid: InstrId, callee: &Function) {
    let (args, call_result) = {
        let instr = &f.instrs[call_iid.index()];
        let args = match &instr.kind {
            InstrKind::Call { args, .. } => args.clone(),
            other => unreachable!("inline target is {other:?}"),
        };
        (args, instr.result)
    };

    // 1. Split the call block: everything after the call moves to `cont`.
    let call_pos = f.blocks[call_block.index()]
        .instrs
        .iter()
        .position(|&i| i == call_iid)
        .expect("call is linked");
    let cont = f.add_block(format!("{}.cont", callee.name));
    let tail: Vec<InstrId> = f.blocks[call_block.index()].instrs.split_off(call_pos + 1);
    f.blocks[cont.index()].instrs = tail;
    f.blocks[cont.index()].term =
        std::mem::replace(&mut f.blocks[call_block.index()].term, Terminator::Unreachable);
    // Successor phis that referenced call_block now come from cont.
    let succs = f.blocks[cont.index()].term.successors();
    for s in succs {
        let ids = f.blocks[s.index()].instrs.clone();
        for iid in ids {
            if let InstrKind::Phi { incoming, .. } = &mut f.instrs[iid.index()].kind {
                for (pred, _) in incoming.iter_mut() {
                    if *pred == call_block {
                        *pred = cont;
                    }
                }
            }
        }
    }
    // Remove the call from its block (tombstoned after remapping uses).
    f.blocks[call_block.index()].instrs.pop();

    // 2. Create blocks for the callee body.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    for (cbid, cblock) in callee.iter_blocks() {
        let nb = f.add_block(format!("{}.{}", callee.name, cblock.name));
        block_map.insert(cbid, nb);
    }

    // 3. Clone instructions in arena order, building the value map.
    let mut val_map: HashMap<ValueId, Operand> = HashMap::new();
    for (i, arg) in args.iter().enumerate() {
        val_map.insert(callee.param_value(i), arg.clone());
    }
    // Only clone instructions that are actually linked into blocks.
    let mut instr_map: HashMap<InstrId, InstrId> = HashMap::new();
    for (cbid, cblock) in callee.iter_blocks() {
        let _ = cbid;
        for &ciid in &cblock.instrs {
            let kind = callee.instrs[ciid.index()].kind.clone();
            let niid = f.create_instr(kind);
            // Cloned instructions keep the callee's source locations, like
            // LLVM's inliner propagating debug locations.
            f.set_instr_loc(niid, callee.instrs[ciid.index()].loc);
            instr_map.insert(ciid, niid);
            if let (Some(cres), Some(nres)) =
                (callee.instrs[ciid.index()].result, f.instr_result(niid))
            {
                val_map.insert(cres, Operand::Val(nres));
            }
        }
    }

    // 4. Remap operands of the cloned instructions.
    let remap_op = |op: &mut Operand, val_map: &HashMap<ValueId, Operand>| {
        if let Operand::Val(v) = op {
            if let Some(new) = val_map.get(v) {
                *op = new.clone();
            } else {
                unreachable!("unmapped callee value {v}");
            }
        }
    };
    for &niid in instr_map.values() {
        let mut kind = std::mem::replace(&mut f.instrs[niid.index()].kind, InstrKind::Nop);
        kind.for_each_operand_mut(|op| remap_op(op, &val_map));
        if let InstrKind::Phi { incoming, .. } = &mut kind {
            for (pred, _) in incoming.iter_mut() {
                *pred = block_map[pred];
            }
        }
        f.instrs[niid.index()].kind = kind;
    }

    // 5. Link cloned instructions into their blocks; relocate entry allocas
    //    of the callee into the caller's entry block.
    let caller_entry = BlockId::new(0);
    for (cbid, cblock) in callee.iter_blocks() {
        let nb = block_map[&cbid];
        for &ciid in &cblock.instrs {
            let niid = instr_map[&ciid];
            // Relocating is only legal when the element count is a constant
            // (an argument-derived count would not dominate the entry).
            let is_alloca = matches!(
                &f.instrs[niid.index()].kind,
                InstrKind::Alloca { count, .. } if count.is_const()
            );
            if is_alloca && cbid == BlockId::new(0) && call_block != caller_entry {
                f.blocks[caller_entry.index()].instrs.insert(0, niid);
            } else {
                f.blocks[nb.index()].instrs.push(niid);
            }
        }
    }

    // 6. Terminators: rets branch to `cont`; collect returned values.
    let mut ret_values: Vec<(BlockId, Operand)> = Vec::new();
    for (cbid, cblock) in callee.iter_blocks() {
        let nb = block_map[&cbid];
        let term = match &cblock.term {
            Terminator::Ret(op) => {
                if let Some(op) = op {
                    let mut op = op.clone();
                    remap_op(&mut op, &val_map);
                    ret_values.push((nb, op));
                }
                Terminator::Br(cont)
            }
            Terminator::Br(b) => Terminator::Br(block_map[b]),
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let mut cond = cond.clone();
                remap_op(&mut cond, &val_map);
                Terminator::CondBr {
                    cond,
                    then_bb: block_map[then_bb],
                    else_bb: block_map[else_bb],
                }
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
        f.blocks[nb.index()].term = term;
    }

    // 7. Enter the inlined body.
    f.blocks[call_block.index()].term = Terminator::Br(block_map[&BlockId::new(0)]);

    // 8. Wire up the return value.
    if let Some(res) = call_result {
        let replacement = match ret_values.len() {
            0 => Operand::Undef(f.value_type(res).clone()),
            1 => ret_values[0].1.clone(),
            _ => {
                let ty = f.value_type(res).clone();
                let call_loc = f.instrs[call_iid.index()].loc;
                let phi = f.create_instr(InstrKind::Phi { ty, incoming: ret_values.clone() });
                f.set_instr_loc(phi, call_loc);
                f.blocks[cont.index()].instrs.insert(0, phi);
                Operand::Val(f.instr_result(phi).expect("phi result"))
            }
        };
        f.replace_all_uses(res, &replacement);
    }
    // Tombstone the call.
    f.instrs[call_iid.index()].kind = InstrKind::Nop;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::verify_module;

    fn run_inline(src: &str) -> Module {
        let mut m = crate::parser::parse_module(src).unwrap();
        Inline.run(&mut m);
        verify_module(&m)
            .unwrap_or_else(|e| panic!("verify: {e}\n{}", crate::printer::print_module(&m)));
        m
    }

    fn count_internal_calls(m: &Module, caller: &str) -> usize {
        let (_, f) = m.function_by_name(caller).unwrap();
        f.blocks
            .iter()
            .flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
            .filter(|k| matches!(k, InstrKind::Call { callee, .. } if m.function_by_name(callee).is_some()))
            .count()
    }

    #[test]
    fn inlines_simple_leaf() {
        let m = run_inline(
            r#"
            define i64 @double_it(i64 %x) {
            entry:
              %r = mul i64, %x, i64 2
              ret %r
            }
            define i64 @main() {
            entry:
              %a = call i64 @double_it(i64 21)
              ret %a
            }
        "#,
        );
        assert_eq!(count_internal_calls(&m, "main"), 0);
    }

    #[test]
    fn inlined_code_computes_same_result() {
        let src = r#"
            define i64 @clamp(i64 %x, i64 %hi) {
            entry:
              %c = icmp sgt i64, %x, %hi
              condbr %c, high, ok
            high:
              ret %hi
            ok:
              ret %x
            }
            define i64 @main() {
            entry:
              %a = call i64 @clamp(i64 100, i64 42)
              %b = call i64 @clamp(i64 7, i64 42)
              %s = add i64, %a, %b
              ret %s
            }
        "#;
        let m = run_inline(src);
        assert_eq!(count_internal_calls(&m, "main"), 0);
        // Multiple returns forced a phi in the continuation blocks.
        let (_, f) = m.function_by_name("main").unwrap();
        let phis = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter().map(|&i| &f.instrs[i.index()].kind))
            .filter(|k| matches!(k, InstrKind::Phi { .. }))
            .count();
        assert_eq!(phis, 2);
    }

    #[test]
    fn does_not_inline_recursive() {
        let m = run_inline(
            r#"
            define i64 @fact(i64 %n) {
            entry:
              %c = icmp sle i64, %n, i64 1
              condbr %c, base, rec
            base:
              ret i64 1
            rec:
              %n1 = sub i64, %n, i64 1
              %r = call i64 @fact(%n1)
              %p = mul i64, %n, %r
              ret %p
            }
            define i64 @main() {
            entry:
              %a = call i64 @fact(i64 5)
              ret %a
            }
        "#,
        );
        // fact calls a module function (itself) → not a leaf → untouched.
        assert_eq!(count_internal_calls(&m, "main"), 1);
    }

    #[test]
    fn does_not_inline_uninstrumented() {
        let m = run_inline(
            r#"
            define i64 @libfn(i64 %x) uninstrumented {
            entry:
              ret %x
            }
            define i64 @main() {
            entry:
              %a = call i64 @libfn(i64 5)
              ret %a
            }
        "#,
        );
        assert_eq!(count_internal_calls(&m, "main"), 1);
    }

    #[test]
    fn relocates_allocas_to_caller_entry() {
        let src = r#"
            define i64 @slot(i64 %x) {
            entry:
              %p = alloca i64, i64 1
              store i64, %x, %p
              %v = load i64, %p
              ret %v
            }
            define i64 @main(i64 %n) {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [header2: %next]
              %c = icmp slt i64, %i, %n
              condbr %c, header2, exit
            header2:
              %v = call i64 @slot(%i)
              %next = add i64, %i, i64 1
              br header
            exit:
              ret i64 0
            }
        "#;
        let m = run_inline(src);
        let (_, f) = m.function_by_name("main").unwrap();
        // The inlined alloca must sit in main's entry, not inside the loop.
        let entry_allocas = f.blocks[0]
            .instrs
            .iter()
            .filter(|&&i| matches!(f.instrs[i.index()].kind, InstrKind::Alloca { .. }))
            .count();
        assert_eq!(entry_allocas, 1);
    }

    #[test]
    fn multiple_sites_all_inlined() {
        let m = run_inline(
            r#"
            define i64 @sq(i64 %x) {
            entry:
              %r = mul i64, %x, %x
              ret %r
            }
            define i64 @main() {
            entry:
              %a = call i64 @sq(i64 2)
              %b = call i64 @sq(i64 3)
              %c = call i64 @sq(i64 4)
              %s1 = add i64, %a, %b
              %s2 = add i64, %s1, %c
              ret %s2
            }
        "#,
        );
        assert_eq!(count_internal_calls(&m, "main"), 0);
    }
}
