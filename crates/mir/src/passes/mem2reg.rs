//! Promotion of memory to SSA registers (`mem2reg`).
//!
//! Allocas whose address never escapes (used only as the pointer operand of
//! loads and stores) are rewritten into SSA values with phi nodes placed at
//! the iterated dominance frontier of the stores. This is the pass that
//! determines how many memory accesses — and therefore how many bounds
//! checks — remain in the program, which is why the paper's
//! pipeline-insertion-point experiment (Figures 12/13) is so sensitive to
//! where instrumentation happens relative to it.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::{Cfg, DomTree};
use crate::function::Function;
use crate::ids::{BlockId, InstrId, ValueId};
use crate::instr::{InstrKind, Operand};
use crate::passes::{remove_unreachable_blocks, EffectInfo, FunctionPass};
use crate::types::Type;

/// The `mem2reg` pass.
#[derive(Debug, Default)]
pub struct Mem2Reg;

impl FunctionPass for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }

    fn run(&self, _effects: &EffectInfo, f: &mut Function) -> bool {
        remove_unreachable_blocks(f);
        let allocas = promotable_allocas(f);
        if allocas.is_empty() {
            return false;
        }
        promote(f, &allocas);
        true
    }
}

/// A promotable alloca: its instruction, result value, and element type.
#[derive(Clone, Debug)]
struct Promotable {
    instr: InstrId,
    block: BlockId,
    value: ValueId,
    ty: Type,
}

fn promotable_allocas(f: &Function) -> Vec<Promotable> {
    let mut candidates: Vec<Promotable> = Vec::new();
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.instrs {
            if let InstrKind::Alloca { ty, count } = &f.instrs[iid.index()].kind {
                if count.as_const_int() != Some(1) {
                    continue;
                }
                if !matches!(
                    ty,
                    Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::F64 | Type::Ptr
                ) {
                    continue;
                }
                let value = f.instrs[iid.index()].result.expect("alloca has result");
                candidates.push(Promotable { instr: iid, block: bid, value, ty: ty.clone() });
            }
        }
    }
    // Filter by escape analysis: every use must be a load/store pointer.
    candidates.retain(|c| {
        let mut ok = true;
        for block in &f.blocks {
            for &iid in &block.instrs {
                let instr = &f.instrs[iid.index()];
                match &instr.kind {
                    InstrKind::Load { ptr, .. } => {
                        // Fine if used as the pointer.
                        let _ = ptr;
                    }
                    InstrKind::Store { value, ptr, .. } => {
                        if value.as_value() == Some(c.value) {
                            ok = false; // address escapes through memory
                        }
                        let _ = ptr;
                    }
                    other => {
                        other.for_each_operand(|op| {
                            if op.as_value() == Some(c.value) {
                                ok = false;
                            }
                        });
                    }
                }
            }
            block.term.for_each_operand(|op| {
                if op.as_value() == Some(c.value) {
                    ok = false;
                }
            });
        }
        ok
    });
    candidates
}

fn promote(f: &mut Function, allocas: &[Promotable]) {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(f, &cfg);
    let alloca_index: BTreeMap<ValueId, usize> =
        allocas.iter().enumerate().map(|(i, a)| (a.value, i)).collect();

    // Blocks containing stores per alloca.
    let mut def_blocks: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); allocas.len()];
    for (bid, block) in f.iter_blocks() {
        for &iid in &block.instrs {
            if let InstrKind::Store { ptr, .. } = &f.instrs[iid.index()].kind {
                if let Some(v) = ptr.as_value() {
                    if let Some(&ai) = alloca_index.get(&v) {
                        def_blocks[ai].insert(bid);
                    }
                }
            }
        }
    }

    // Place phis at the iterated dominance frontier.
    // phi_of[(block, alloca_idx)] -> phi value id
    let mut phi_of: BTreeMap<(BlockId, usize), ValueId> = BTreeMap::new();
    for (ai, defs) in def_blocks.iter().enumerate() {
        let mut work: Vec<BlockId> = defs.iter().copied().collect();
        let mut placed: BTreeSet<BlockId> = BTreeSet::new();
        while let Some(b) = work.pop() {
            for &df in dom.frontier(b) {
                if placed.insert(df) {
                    let iid = f.insert_instr(
                        df,
                        0,
                        InstrKind::Phi { ty: allocas[ai].ty.clone(), incoming: vec![] },
                    );
                    let v = f.instr_result(iid).expect("phi has result");
                    phi_of.insert((df, ai), v);
                    work.push(df);
                }
            }
        }
    }
    // Map phi value back to its instruction for incoming updates.
    let phi_instr: BTreeMap<ValueId, InstrId> = phi_of
        .values()
        .map(|&v| match f.values[v.index()].def {
            crate::function::ValueDef::Instr(i) => (v, i),
            _ => unreachable!("phi defined by instr"),
        })
        .collect();

    // Rename via DFS over the dominator tree.
    let entry = BlockId::new(0);
    let init: Vec<Operand> = allocas.iter().map(|a| Operand::Undef(a.ty.clone())).collect();
    let mut stack: Vec<(BlockId, Vec<Operand>)> = vec![(entry, init)];
    while let Some((bid, mut cur)) = stack.pop() {
        // Incoming phis define new current values.
        for (ai, _) in allocas.iter().enumerate() {
            if let Some(&v) = phi_of.get(&(bid, ai)) {
                cur[ai] = Operand::Val(v);
            }
        }
        let instr_ids: Vec<InstrId> = f.blocks[bid.index()].instrs.clone();
        for iid in instr_ids {
            let kind = f.instrs[iid.index()].kind.clone();
            match kind {
                InstrKind::Load { ptr, .. } => {
                    if let Some(pv) = ptr.as_value() {
                        if let Some(&ai) = alloca_index.get(&pv) {
                            let result = f.instrs[iid.index()].result.expect("load result");
                            let replacement = cur[ai].clone();
                            f.replace_all_uses(result, &replacement);
                            f.remove_instr(bid, iid);
                        }
                    }
                }
                InstrKind::Store { value, ptr, .. } => {
                    if let Some(pv) = ptr.as_value() {
                        if let Some(&ai) = alloca_index.get(&pv) {
                            // The stored operand may itself have been
                            // rewritten; re-read it from the instruction.
                            let fresh = match &f.instrs[iid.index()].kind {
                                InstrKind::Store { value: v, .. } => v.clone(),
                                _ => value,
                            };
                            cur[ai] = fresh;
                            f.remove_instr(bid, iid);
                        }
                    }
                }
                _ => {}
            }
        }
        // Feed successors' phis.
        for s in f.blocks[bid.index()].term.successors() {
            for (ai, _) in allocas.iter().enumerate() {
                if let Some(&phi_v) = phi_of.get(&(s, ai)) {
                    let iid = phi_instr[&phi_v];
                    if let InstrKind::Phi { incoming, .. } = &mut f.instrs[iid.index()].kind {
                        if !incoming.iter().any(|(b, _)| *b == bid) {
                            incoming.push((bid, cur[ai].clone()));
                        }
                    }
                }
            }
        }
        for &child in dom.children(bid) {
            stack.push((child, cur.clone()));
        }
    }

    // Remove the allocas themselves.
    for a in allocas {
        f.remove_instr(a.block, a.instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{IcmpPred, Operand};
    use crate::module::Module;
    use crate::passes::run_on_module;
    use crate::verifier::verify_module;

    fn run(m: &mut Module) -> bool {
        let changed = run_on_module(&Mem2Reg, m);
        verify_module(m).unwrap();
        changed
    }

    #[test]
    fn promotes_straight_line_local() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let slot = fb.alloca(Type::I64);
        let x = fb.param(0);
        fb.store(Type::I64, x, slot.clone());
        let v = fb.load(Type::I64, slot.clone());
        let w = fb.add(Type::I64, v, Operand::i64(1));
        fb.ret(Some(w));
        fb.finish();
        let mut m = mb.finish();
        assert!(run(&mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        // Only the add remains.
        assert_eq!(f.live_instr_count(), 1);
    }

    #[test]
    fn places_phi_at_join() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("c", Type::I1)], Type::I64);
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        let j = fb.new_block("j");
        let slot = fb.alloca(Type::I64);
        let c = fb.param(0);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.store(Type::I64, Operand::i64(10), slot.clone());
        fb.br(j);
        fb.switch_to(e);
        fb.store(Type::I64, Operand::i64(20), slot.clone());
        fb.br(j);
        fb.switch_to(j);
        let v = fb.load(Type::I64, slot.clone());
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(run(&mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        // A phi in the join block replaces the memory traffic.
        let join_first = f.blocks[3].instrs[0];
        assert!(matches!(f.instrs[join_first.index()].kind, InstrKind::Phi { .. }));
        assert_eq!(f.live_instr_count(), 1);
    }

    #[test]
    fn loop_counter_becomes_phi() {
        // i = 0; while (i < n) i = i + 1; return i;
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let slot = fb.alloca(Type::I64);
        fb.store(Type::I64, Operand::i64(0), slot.clone());
        fb.br(header);
        fb.switch_to(header);
        let i = fb.load(Type::I64, slot.clone());
        let n = fb.param(0);
        let c = fb.icmp(IcmpPred::Slt, Type::I64, i.clone(), n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.load(Type::I64, slot.clone());
        let next = fb.add(Type::I64, i2, Operand::i64(1));
        fb.store(Type::I64, next, slot.clone());
        fb.br(header);
        fb.switch_to(exit);
        let fin = fb.load(Type::I64, slot.clone());
        fb.ret(Some(fin));
        fb.finish();
        let mut m = mb.finish();
        assert!(run(&mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        // No loads/stores/allocas remain.
        for block in &f.blocks {
            for &iid in &block.instrs {
                assert!(
                    !f.instrs[iid.index()].kind.accesses_memory(),
                    "memory op survived: {:?}",
                    f.instrs[iid.index()].kind
                );
            }
        }
    }

    #[test]
    fn escaped_alloca_not_promoted() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("sink", vec![Type::Ptr], Type::Void, crate::module::Effect::Effectful);
        let mut fb = mb.function("f", vec![], Type::I64);
        let slot = fb.alloca(Type::I64);
        fb.call("sink", Type::Void, vec![slot.clone()]);
        let v = fb.load(Type::I64, slot.clone());
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        run(&mut m);
        let (_, f) = m.function_by_name("f").unwrap();
        // alloca + call + load all survive.
        assert_eq!(f.live_instr_count(), 3);
    }

    #[test]
    fn aggregate_alloca_not_promoted() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let arr = fb.alloca(Type::array(Type::I64, 4));
        let p = fb.gep(Type::I64, arr, vec![Operand::i64(0)]);
        let v = fb.load(Type::I64, p);
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        run(&mut m);
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 3);
    }

    #[test]
    fn load_before_store_becomes_undef() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let slot = fb.alloca(Type::I64);
        let v = fb.load(Type::I64, slot.clone());
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(run(&mut m));
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 0);
        assert!(matches!(f.blocks[0].term, crate::instr::Terminator::Ret(Some(Operand::Undef(_)))));
    }
}
