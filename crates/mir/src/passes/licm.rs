//! Loop-invariant code motion.
//!
//! Hoists loop-invariant pure computations — and, when the loop is free of
//! writes and effectful calls, loads and `ReadOnly` host calls that execute
//! on every iteration — into the preheader. Effectful calls inside the loop
//! (e.g. inserted bounds checks) disable load hoisting entirely, which is
//! one of the mechanisms behind the extension-point gap in Figures 12/13 of
//! the paper.

use std::collections::BTreeSet;

use crate::analysis::{Cfg, DomTree, LoopForest};
use crate::function::Function;
use crate::ids::{BlockId, InstrId, ValueId};
use crate::instr::InstrKind;
use crate::module::Effect;
use crate::passes::{EffectInfo, FunctionPass};
use crate::types::Type;

/// The LICM pass.
#[derive(Debug, Default)]
pub struct Licm;

impl FunctionPass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, effects: &EffectInfo, f: &mut Function) -> bool {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let mut changed = false;
        for l in &forest.loops {
            // Only hoist into a dedicated preheader: the unique outside
            // predecessor, ending in an unconditional branch to the header.
            let Some(pre) = l.dedicated_preheader(f, &cfg) else { continue };
            changed |= hoist_loop(effects, f, &dom, l, pre);
        }
        changed
    }
}

fn hoist_loop(
    effects: &EffectInfo,
    f: &mut Function,
    dom: &DomTree,
    l: &crate::analysis::Loop,
    pre: BlockId,
) -> bool {
    // Values defined inside the loop.
    let mut defined_in: BTreeSet<ValueId> = l.defined_values(f);
    // Does the loop contain any memory writes or effectful calls?
    let loop_has_writes = l.blocks.iter().any(|&b| {
        f.blocks[b.index()]
            .instrs
            .iter()
            .any(|&iid| effects.writes_or_aborts(&f.instrs[iid.index()].kind))
    });

    let mut changed = false;
    loop {
        let mut hoisted_this_round = false;
        for &b in &l.blocks {
            let ids = f.blocks[b.index()].instrs.clone();
            for iid in ids {
                let kind = f.instrs[iid.index()].kind.clone();
                let invariant_operands = {
                    let mut ok = true;
                    kind.for_each_operand(|op| {
                        ok &= crate::analysis::operand_is_invariant(op, &defined_in);
                    });
                    ok
                };
                if !invariant_operands {
                    continue;
                }
                let hoistable = match &kind {
                    InstrKind::Bin { op, .. } => !op.can_trap(),
                    InstrKind::Icmp { .. }
                    | InstrKind::Fcmp { .. }
                    | InstrKind::Gep { .. }
                    | InstrKind::Select { .. }
                    | InstrKind::Cast { .. } => true,
                    InstrKind::Call { callee, ret, .. } => {
                        if *ret == Type::Void {
                            false
                        } else {
                            match effects.callee(callee) {
                                Effect::Pure => true,
                                Effect::ReadOnly => {
                                    !loop_has_writes && executes_every_iteration(dom, l, b)
                                }
                                Effect::Effectful => false,
                            }
                        }
                    }
                    InstrKind::Load { .. } => {
                        !loop_has_writes && executes_every_iteration(dom, l, b)
                    }
                    _ => false,
                };
                if !hoistable {
                    continue;
                }
                move_to_preheader(f, b, iid, pre);
                if let Some(v) = f.instrs[iid.index()].result {
                    defined_in.remove(&v);
                }
                hoisted_this_round = true;
                changed = true;
            }
        }
        if !hoisted_this_round {
            break;
        }
    }
    changed
}

/// A block executes on every iteration if it dominates all latches.
fn executes_every_iteration(dom: &DomTree, l: &crate::analysis::Loop, b: BlockId) -> bool {
    l.latches.iter().all(|&latch| dom.dominates(b, latch))
}

fn move_to_preheader(f: &mut Function, from: BlockId, iid: InstrId, pre: BlockId) {
    f.blocks[from.index()].instrs.retain(|&i| i != iid);
    f.blocks[pre.index()].instrs.push(iid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::instr::IcmpPred;
    use crate::instr::Operand;
    use crate::passes::run_on_module;
    use crate::verifier::verify_module;

    /// Builds `for (i = 0; i < n; i++) body(i)`, where `body` receives the
    /// builder positioned in the loop body and returns nothing.
    fn build_counted_loop(
        fb: &mut FunctionBuilder<'_>,
        n: Operand,
        body: impl FnOnce(&mut FunctionBuilder<'_>, Operand),
    ) {
        let header = fb.new_block("header");
        let body_bb = fb.new_block("body");
        let latch = fb.new_block("latch");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::i64(0)), (latch, Operand::i64(0))]);
        let c = fb.icmp(IcmpPred::Slt, Type::I64, i.clone(), n);
        fb.cond_br(c, body_bb, exit);
        fb.switch_to(body_bb);
        body(fb, i.clone());
        fb.br(latch);
        fb.switch_to(latch);
        let next = fb.add(Type::I64, i.clone(), Operand::i64(1));
        // Patch phi.
        let phi_id = {
            let f = fb.func_mut();
            f.blocks[header.index()].instrs[0]
        };
        if let InstrKind::Phi { incoming, .. } = &mut fb.func_mut().instrs[phi_id.index()].kind {
            incoming[1].1 = next;
        }
        fb.br(header);
        fb.switch_to(exit);
    }

    #[test]
    fn hoists_invariant_arithmetic() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64), ("k", Type::I64)], Type::I64);
        let k = fb.param(1);
        let n = fb.param(0);
        build_counted_loop(&mut fb, n, |fb, _i| {
            let _expensive = fb.mul(Type::I64, k.clone(), k.clone());
        });
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Licm, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        // The mul moved to the entry block (the preheader).
        assert!(f.blocks[0]
            .instrs
            .iter()
            .any(|&iid| matches!(f.instrs[iid.index()].kind, InstrKind::Bin { .. })));
    }

    #[test]
    fn hoists_load_from_write_free_loop() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64), ("p", Type::Ptr)], Type::I64);
        let p = fb.param(1);
        let n = fb.param(0);
        build_counted_loop(&mut fb, n, |fb, _i| {
            let _v = fb.load(Type::I64, p.clone());
        });
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Licm, &mut m));
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert!(f.blocks[0]
            .instrs
            .iter()
            .any(|&iid| matches!(f.instrs[iid.index()].kind, InstrKind::Load { .. })));
    }

    #[test]
    fn check_call_blocks_load_hoisting() {
        // An effectful check in the loop pins the load — §5.5's mechanism.
        let mut mb = ModuleBuilder::new("m");
        mb.host("check", vec![Type::Ptr], Type::Void, crate::module::Effect::Effectful);
        let mut fb = mb.function("f", vec![("n", Type::I64), ("p", Type::Ptr)], Type::I64);
        let p = fb.param(1);
        let n = fb.param(0);
        build_counted_loop(&mut fb, n, |fb, _i| {
            fb.call("check", Type::Void, vec![p.clone()]);
            let _v = fb.load(Type::I64, p.clone());
        });
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        run_on_module(&Licm, &mut m);
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert!(
            !f.blocks[0]
                .instrs
                .iter()
                .any(|&iid| matches!(f.instrs[iid.index()].kind, InstrKind::Load { .. })),
            "load must not be hoisted past a check"
        );
    }

    #[test]
    fn hoists_pure_host_call() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("lf_base", vec![Type::Ptr], Type::Ptr, crate::module::Effect::Pure);
        let mut fb = mb.function("f", vec![("n", Type::I64), ("p", Type::Ptr)], Type::I64);
        let p = fb.param(1);
        let n = fb.param(0);
        build_counted_loop(&mut fb, n, |fb, _i| {
            let _b = fb.call("lf_base", Type::Ptr, vec![p.clone()]);
        });
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(run_on_module(&Licm, &mut m));
        verify_module(&m).unwrap();
    }

    #[test]
    fn does_not_hoist_variant_computation() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let n = fb.param(0);
        build_counted_loop(&mut fb, n, |fb, i| {
            let _sq = fb.mul(Type::I64, i.clone(), i);
        });
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        // The add in the latch (i+1) and the mul (i*i) depend on i.
        run_on_module(&Licm, &mut m);
        verify_module(&m).unwrap();
        let (_, f) = m.function_by_name("f").unwrap();
        assert!(f.blocks[0].instrs.is_empty(), "nothing should be hoisted");
    }
}
