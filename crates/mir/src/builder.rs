//! Ergonomic construction of modules and functions.
//!
//! [`ModuleBuilder`] collects globals/functions; [`FunctionBuilder`] keeps a
//! *current block* cursor and offers one method per instruction that returns
//! the result as an [`Operand`], so straight-line code reads top-to-bottom:
//!
//! ```
//! use mir::builder::ModuleBuilder;
//! use mir::types::Type;
//!
//! let mut mb = ModuleBuilder::new("m");
//! let mut fb = mb.function("sum3", vec![("a", Type::I64), ("b", Type::I64)], Type::I64);
//! let a = fb.param(0);
//! let b = fb.param(1);
//! let t = fb.add(Type::I64, a, b);
//! fb.ret(Some(t));
//! fb.finish();
//! let m = mb.finish();
//! assert!(mir::verifier::verify_module(&m).is_ok());
//! ```

use crate::function::{FnAttrs, Function, Param};
use crate::ids::{BlockId, GlobalId};
use crate::instr::{
    BinOp, CastOp, FcmpPred, IcmpPred, IcmpPred as _IP, InstrKind, Operand, Terminator,
};
use crate::module::{Effect, Global, GlobalAttrs, HostDecl, Init, Module};
use crate::srcloc::SrcLoc;
use crate::types::Type;

/// Builds a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for an empty module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder { module: Module::new(name) }
    }

    /// Adds a zero-initialized global of `ty` and returns its id.
    pub fn global(&mut self, name: impl Into<String>, ty: Type) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            ty,
            init: Init::Zero,
            attrs: GlobalAttrs::default(),
        })
    }

    /// Adds a global with explicit initializer bytes.
    pub fn global_with_data(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        data: Vec<u8>,
    ) -> GlobalId {
        self.module.add_global(Global {
            name: name.into(),
            ty,
            init: Init::Bytes(data),
            attrs: GlobalAttrs::default(),
        })
    }

    /// Adds a global with explicit attributes.
    pub fn global_with_attrs(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        attrs: GlobalAttrs,
    ) -> GlobalId {
        self.module.add_global(Global { name: name.into(), ty, init: Init::Zero, attrs })
    }

    /// Declares a host function.
    pub fn host(&mut self, name: impl Into<String>, params: Vec<Type>, ret: Type, effect: Effect) {
        self.module.declare_host(name, HostDecl { params, ret, effect });
    }

    /// Starts building a function; call [`FunctionBuilder::finish`] to commit.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Type)>,
        ret_ty: Type,
    ) -> FunctionBuilder<'_> {
        let params = params.into_iter().map(|(n, ty)| Param { name: n.to_string(), ty }).collect();
        let func = Function::new(name, params, ret_ty);
        FunctionBuilder {
            module: &mut self.module,
            func,
            cur: BlockId::new(0),
            terminated: false,
            loc: None,
        }
    }

    /// Adds a body-less declaration (external function).
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<(&str, Type)>,
        ret_ty: Type,
    ) {
        let params = params.into_iter().map(|(n, ty)| Param { name: n.to_string(), ty }).collect();
        self.module.add_function(Function::declaration(name, params, ret_ty));
    }

    /// Direct access to the module under construction.
    pub fn module_mut(&mut self) -> &mut Module {
        &mut self.module
    }

    /// Finishes and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builds one [`Function`] with a current-block cursor.
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    module: &'m mut Module,
    func: Function,
    cur: BlockId,
    terminated: bool,
    loc: Option<SrcLoc>,
}

impl<'m> FunctionBuilder<'m> {
    /// Operand referring to parameter `idx`.
    pub fn param(&self, idx: usize) -> Operand {
        Operand::Val(self.func.param_value(idx))
    }

    /// An `i64` constant operand.
    pub fn const_i64(&self, v: i64) -> Operand {
        Operand::i64(v)
    }

    /// Marks the function as belonging to an uninstrumented library (§4.3).
    pub fn set_uninstrumented(&mut self) {
        self.func.attrs.uninstrumented = true;
    }

    /// Sets arbitrary attributes.
    pub fn set_attrs(&mut self, attrs: FnAttrs) {
        self.func.attrs = attrs;
    }

    /// Creates a new block (does not switch to it).
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Switches the cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
        self.terminated = false;
    }

    /// The block the cursor is on.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Whether the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// Sets the source location stamped on subsequently emitted
    /// instructions (like an LLVM IRBuilder debug-location cursor).
    pub fn set_loc(&mut self, loc: Option<SrcLoc>) {
        self.loc = loc;
    }

    /// Shorthand for [`FunctionBuilder::set_loc`] with a 1-based line.
    pub fn set_line(&mut self, line: u32) {
        self.loc = Some(SrcLoc::line(line));
    }

    /// The current source-location cursor.
    pub fn current_loc(&self) -> Option<SrcLoc> {
        self.loc
    }

    fn emit(&mut self, kind: InstrKind) -> Operand {
        assert!(!self.terminated, "emitting into terminated block {}", self.cur);
        let id = self.func.push_instr(self.cur, kind);
        self.func.set_instr_loc(id, self.loc);
        match self.func.instr_result(id) {
            Some(v) => Operand::Val(v),
            None => Operand::Undef(Type::Void),
        }
    }

    // --- memory ---

    /// `alloca ty` (single element).
    pub fn alloca(&mut self, ty: Type) -> Operand {
        self.emit(InstrKind::Alloca { ty, count: Operand::i64(1) })
    }

    /// `alloca ty, count`.
    pub fn alloca_n(&mut self, ty: Type, count: Operand) -> Operand {
        self.emit(InstrKind::Alloca { ty, count })
    }

    /// `load ty, ptr`.
    pub fn load(&mut self, ty: Type, ptr: Operand) -> Operand {
        self.emit(InstrKind::Load { ty, ptr })
    }

    /// `store value, ptr`.
    pub fn store(&mut self, ty: Type, value: Operand, ptr: Operand) {
        self.emit(InstrKind::Store { ty, value, ptr });
    }

    /// `gep elem_ty, base, indices...`.
    pub fn gep(&mut self, elem_ty: Type, base: Operand, indices: Vec<Operand>) -> Operand {
        self.emit(InstrKind::Gep { elem_ty, base, indices })
    }

    /// `memcpy dst, src, len`.
    pub fn memcpy(&mut self, dst: Operand, src: Operand, len: Operand) {
        self.emit(InstrKind::MemCpy { dst, src, len });
    }

    /// `memset dst, byte, len`.
    pub fn memset(&mut self, dst: Operand, byte: Operand, len: Operand) {
        self.emit(InstrKind::MemSet { dst, byte, len });
    }

    // --- arithmetic ---

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.emit(InstrKind::Bin { op, ty, lhs, rhs })
    }

    /// `add`.
    pub fn add(&mut self, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Add, ty, lhs, rhs)
    }

    /// `sub`.
    pub fn sub(&mut self, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Sub, ty, lhs, rhs)
    }

    /// `mul`.
    pub fn mul(&mut self, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.bin(BinOp::Mul, ty, lhs, rhs)
    }

    /// `icmp pred`.
    pub fn icmp(&mut self, pred: IcmpPred, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.emit(InstrKind::Icmp { pred, ty, lhs, rhs })
    }

    /// `fcmp pred` on doubles.
    pub fn fcmp(&mut self, pred: FcmpPred, lhs: Operand, rhs: Operand) -> Operand {
        self.emit(InstrKind::Fcmp { pred, lhs, rhs })
    }

    /// Cast operation.
    pub fn cast(&mut self, op: CastOp, value: Operand, from: Type, to: Type) -> Operand {
        self.emit(InstrKind::Cast { op, value, from, to })
    }

    /// `select cond, a, b`.
    pub fn select(
        &mut self,
        ty: Type,
        cond: Operand,
        then_value: Operand,
        else_value: Operand,
    ) -> Operand {
        self.emit(InstrKind::Select { ty, cond, then_value, else_value })
    }

    /// Placed at block start: `phi ty, [bb -> op]...`.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(BlockId, Operand)>) -> Operand {
        assert!(!self.terminated, "emitting into terminated block");
        let id = self.func.create_instr(InstrKind::Phi { ty, incoming });
        self.func.set_instr_loc(id, self.loc);
        // Phis must precede non-phi instructions.
        let block = &mut self.func.blocks[self.cur.index()];
        let pos = block
            .instrs
            .iter()
            .position(|&i| !matches!(self.func.instrs[i.index()].kind, InstrKind::Phi { .. }))
            .unwrap_or(block.instrs.len());
        block.instrs.insert(pos, id);
        Operand::Val(self.func.instr_result(id).expect("phi has result"))
    }

    // --- calls ---

    /// Direct call by name.
    pub fn call(&mut self, callee: impl Into<String>, ret: Type, args: Vec<Operand>) -> Operand {
        self.emit(InstrKind::Call { callee: callee.into(), args, ret })
    }

    /// Indirect call through a pointer.
    pub fn call_indirect(&mut self, callee: Operand, ret: Type, args: Vec<Operand>) -> Operand {
        self.emit(InstrKind::CallIndirect { callee, args, ret })
    }

    // --- terminators ---

    /// `ret` / `ret value`.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.set_term(Terminator::Ret(value));
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.set_term(Terminator::Br(target));
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.set_term(Terminator::CondBr { cond, then_bb, else_bb });
    }

    /// Marks the current block unreachable.
    pub fn unreachable(&mut self) {
        self.set_term(Terminator::Unreachable);
    }

    fn set_term(&mut self, term: Terminator) {
        assert!(!self.terminated, "block {} already terminated", self.cur);
        self.func.blocks[self.cur.index()].term = term;
        self.terminated = true;
    }

    /// Convenience: emit `icmp ne x, 0` to booleanize an integer.
    pub fn to_bool(&mut self, ty: Type, value: Operand) -> Operand {
        self.icmp(_IP::Ne, ty.clone(), value, Operand::ConstInt { ty, value: 0 })
    }

    /// Direct access to the function under construction (escape hatch for
    /// tests that need raw edits).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Commits the function to the module and returns its name.
    ///
    /// # Panics
    ///
    /// Panics if the current block has no terminator.
    pub fn finish(self) -> String {
        assert!(
            self.terminated || self.func.blocks.is_empty(),
            "function {} finished with unterminated block {}",
            self.func.name,
            self.cur
        );
        let name = self.func.name.clone();
        self.module.add_function(self.func);
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_function() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("x", Type::I64)], Type::I64);
        let x = fb.param(0);
        let y = fb.mul(Type::I64, x.clone(), Operand::i64(3));
        let z = fb.add(Type::I64, y, Operand::i64(1));
        fb.ret(Some(z));
        fb.finish();
        let m = mb.finish();
        let (_, f) = m.function_by_name("f").unwrap();
        assert_eq!(f.live_instr_count(), 2);
    }

    #[test]
    fn diamond_with_phi() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("c", Type::I1)], Type::I64);
        let then_bb = fb.new_block("then");
        let else_bb = fb.new_block("else");
        let join = fb.new_block("join");
        let c = fb.param(0);
        fb.cond_br(c, then_bb, else_bb);
        fb.switch_to(then_bb);
        fb.br(join);
        fb.switch_to(else_bb);
        fb.br(join);
        fb.switch_to(join);
        let v = fb.phi(Type::I64, vec![(then_bb, Operand::i64(1)), (else_bb, Operand::i64(2))]);
        fb.ret(Some(v));
        fb.finish();
        let m = mb.finish();
        assert!(crate::verifier::verify_module(&m).is_ok());
    }

    #[test]
    fn phi_insertion_precedes_other_instrs() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::I64);
        let b = fb.new_block("b");
        fb.br(b);
        fb.switch_to(b);
        let t = fb.add(Type::I64, Operand::i64(1), Operand::i64(2));
        let entry = BlockId::new(0);
        let p = fb.phi(Type::I64, vec![(entry, Operand::i64(0))]);
        let s = fb.add(Type::I64, t, p);
        fb.ret(Some(s));
        fb.finish();
        let m = mb.finish();
        let (_, f) = m.function_by_name("f").unwrap();
        let first = f.blocks[1].instrs[0];
        assert!(matches!(f.instrs[first.index()].kind, InstrKind::Phi { .. }));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.ret(None);
        fb.ret(None);
    }

    #[test]
    fn host_declarations() {
        let mut mb = ModuleBuilder::new("m");
        mb.host("print_i64", vec![Type::I64], Type::Void, Effect::Effectful);
        let mut fb = mb.function("main", vec![], Type::I64);
        fb.call("print_i64", Type::Void, vec![Operand::i64(42)]);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let m = mb.finish();
        assert!(m.host_decls.contains_key("print_i64"));
    }
}
