//! Index newtypes used throughout the IR.
//!
//! All IR entities live in flat arenas (`Vec`s) owned by their parent and are
//! referenced by dense `u32` indices. The newtypes prevent mixing up index
//! spaces (a [`BlockId`] can never be used where a [`ValueId`] is expected).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `idx` does not fit in `u32`.
            #[inline]
            pub fn new(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, "id overflow");
                Self(idx as u32)
            }

            /// Returns the raw index for arena access.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(idx: usize) -> Self {
                Self::new(idx)
            }
        }
    };
}

id_type!(
    /// Identifies an SSA value (a function parameter or instruction result)
    /// within one [`crate::Function`].
    ValueId,
    "%v"
);
id_type!(
    /// Identifies a basic block within one [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies an instruction in a function's instruction arena.
    ///
    /// Note that an `InstrId` stays valid when the instruction is unlinked
    /// from its block; arenas are append-only tombstone-style.
    InstrId,
    "i"
);
id_type!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a global variable within a [`crate::Module`].
    GlobalId,
    "@g"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let v = ValueId::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.to_string(), "%v7");
        assert_eq!(BlockId::new(3).to_string(), "bb3");
        assert_eq!(GlobalId::from(0usize).to_string(), "@g0");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(InstrId::new(1) < InstrId::new(2));
        assert_eq!(FuncId::new(4), FuncId(4));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn overflow_panics() {
        let _ = ValueId::new(u32::MAX as usize + 1);
    }
}
