//! Instructions, operands, and terminators.
//!
//! Each instruction produces at most one SSA value. Instructions live in a
//! per-function arena and are referenced from basic blocks by
//! [`crate::ids::InstrId`];
//! removing an instruction unlinks it from its block but leaves the arena
//! slot in place (tombstone style), so ids never dangle.

use crate::ids::{BlockId, GlobalId, ValueId};
use crate::types::Type;

/// An operand of an instruction: either an SSA value or an inline constant.
///
/// Operands are usable as hash-map keys: equality and hashing are
/// structural, with float constants compared and hashed by their bit
/// pattern (so `NaN == NaN` and `0.0 != -0.0` here, unlike IEEE `==`).
#[allow(missing_docs)] // variant fields are idiomatic short names
#[derive(Clone, Debug)]
pub enum Operand {
    /// Reference to an SSA value (parameter or instruction result).
    Val(ValueId),
    /// An integer constant of the given integer type.
    ConstInt { ty: Type, value: i64 },
    /// An `f64` constant.
    ConstFloat(f64),
    /// The null pointer.
    Null,
    /// The address of a global variable.
    GlobalAddr(GlobalId),
    /// The address of a function (by name); used for indirect-call scenarios.
    FuncAddr(String),
    /// An undefined value of the given type.
    Undef(Type),
}

impl PartialEq for Operand {
    fn eq(&self, other: &Operand) -> bool {
        match (self, other) {
            (Operand::Val(a), Operand::Val(b)) => a == b,
            (Operand::ConstInt { ty: ta, value: va }, Operand::ConstInt { ty: tb, value: vb }) => {
                ta == tb && va == vb
            }
            // Bitwise, not IEEE: keeps the Eq/Hash contracts intact.
            (Operand::ConstFloat(a), Operand::ConstFloat(b)) => a.to_bits() == b.to_bits(),
            (Operand::Null, Operand::Null) => true,
            (Operand::GlobalAddr(a), Operand::GlobalAddr(b)) => a == b,
            (Operand::FuncAddr(a), Operand::FuncAddr(b)) => a == b,
            (Operand::Undef(a), Operand::Undef(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Operand {}

impl std::hash::Hash for Operand {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Operand::Val(v) => v.hash(state),
            Operand::ConstInt { ty, value } => {
                ty.hash(state);
                value.hash(state);
            }
            Operand::ConstFloat(f) => f.to_bits().hash(state),
            Operand::Null => {}
            Operand::GlobalAddr(g) => g.hash(state),
            Operand::FuncAddr(name) => name.hash(state),
            Operand::Undef(ty) => ty.hash(state),
        }
    }
}

impl Operand {
    /// Shorthand for an `i64` constant.
    pub fn i64(value: i64) -> Operand {
        Operand::ConstInt { ty: Type::I64, value }
    }

    /// Shorthand for an `i32` constant.
    pub fn i32(value: i32) -> Operand {
        Operand::ConstInt { ty: Type::I32, value: value as i64 }
    }

    /// Shorthand for an `i1` constant.
    pub fn bool(value: bool) -> Operand {
        Operand::ConstInt { ty: Type::I1, value: value as i64 }
    }

    /// Returns the constant integer value if this is an integer constant.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Operand::ConstInt { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Returns the referenced value id, if any.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Val(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether this operand is a compile-time constant (no value reference).
    pub fn is_const(&self) -> bool {
        !matches!(self, Operand::Val(_))
    }
}

/// Integer and floating-point binary operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping integer addition.
    Add,
    /// Wrapping integer subtraction.
    Sub,
    /// Wrapping integer multiplication.
    Mul,
    /// Signed division (traps on zero).
    SDiv,
    /// Unsigned division (traps on zero).
    UDiv,
    /// Signed remainder (traps on zero).
    SRem,
    /// Unsigned remainder (traps on zero).
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (amount masked to the bit width).
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
}

impl BinOp {
    /// Whether the operation can trap at runtime (division by zero).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }

    /// Whether the operation operates on floats.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Whether the operation is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// The mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Integer comparison predicates.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum IcmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
}

impl IcmpPred {
    /// The logically negated predicate: `!(a pred b)` ⟺ `a inverse(pred) b`.
    pub fn inverse(self) -> IcmpPred {
        match self {
            IcmpPred::Eq => IcmpPred::Ne,
            IcmpPred::Ne => IcmpPred::Eq,
            IcmpPred::Slt => IcmpPred::Sge,
            IcmpPred::Sge => IcmpPred::Slt,
            IcmpPred::Sle => IcmpPred::Sgt,
            IcmpPred::Sgt => IcmpPred::Sle,
            IcmpPred::Ult => IcmpPred::Uge,
            IcmpPred::Uge => IcmpPred::Ult,
            IcmpPred::Ule => IcmpPred::Ugt,
            IcmpPred::Ugt => IcmpPred::Ule,
        }
    }

    /// The predicate with operands swapped: `a pred b` ⟺ `b swapped(pred) a`.
    pub fn swapped(self) -> IcmpPred {
        match self {
            IcmpPred::Eq => IcmpPred::Eq,
            IcmpPred::Ne => IcmpPred::Ne,
            IcmpPred::Slt => IcmpPred::Sgt,
            IcmpPred::Sgt => IcmpPred::Slt,
            IcmpPred::Sle => IcmpPred::Sge,
            IcmpPred::Sge => IcmpPred::Sle,
            IcmpPred::Ult => IcmpPred::Ugt,
            IcmpPred::Ugt => IcmpPred::Ult,
            IcmpPred::Ule => IcmpPred::Uge,
            IcmpPred::Uge => IcmpPred::Ule,
        }
    }

    /// The mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
            IcmpPred::Ult => "ult",
            IcmpPred::Ule => "ule",
            IcmpPred::Ugt => "ugt",
            IcmpPred::Uge => "uge",
        }
    }
}

/// Floating-point comparison predicates (ordered comparisons only).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FcmpPred {
    /// Ordered equal.
    Oeq,
    /// Ordered not equal.
    One,
    /// Ordered less than.
    Olt,
    /// Ordered less or equal.
    Ole,
    /// Ordered greater than.
    Ogt,
    /// Ordered greater or equal.
    Oge,
}

impl FcmpPred {
    /// The mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FcmpPred::Oeq => "oeq",
            FcmpPred::One => "one",
            FcmpPred::Olt => "olt",
            FcmpPred::Ole => "ole",
            FcmpPred::Ogt => "ogt",
            FcmpPred::Oge => "oge",
        }
    }
}

/// Value cast operations.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CastOp {
    /// Zero-extend an integer.
    Zext,
    /// Sign-extend an integer.
    Sext,
    /// Truncate an integer.
    Trunc,
    /// Pointer to integer — the §4.4 pitfall trigger.
    PtrToInt,
    /// Integer to pointer — the §4.4 pitfall trigger.
    IntToPtr,
    /// Reinterpreting cast between same-sized first-class types.
    Bitcast,
    /// Signed integer to double.
    SiToFp,
    /// Double to signed integer.
    FpToSi,
}

impl CastOp {
    /// The mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::Bitcast => "bitcast",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
        }
    }
}

/// The payload of an instruction.
#[allow(missing_docs)] // variant fields are idiomatic short names
#[derive(Clone, PartialEq, Debug)]
pub enum InstrKind {
    /// Stack allocation of `count` elements of `ty`; yields `ptr`.
    Alloca { ty: Type, count: Operand },
    /// Load a `ty` value from `ptr`.
    Load { ty: Type, ptr: Operand },
    /// Store `value` (of type `ty`) to `ptr`.
    Store { ty: Type, value: Operand, ptr: Operand },
    /// LLVM-style `getelementptr`: the first index scales by
    /// `size_of(elem_ty)`, subsequent indices walk into the aggregate.
    Gep { elem_ty: Type, base: Operand, indices: Vec<Operand> },
    /// SSA join: one incoming operand per predecessor block.
    Phi { ty: Type, incoming: Vec<(BlockId, Operand)> },
    /// `cond ? then_value : else_value`.
    Select { ty: Type, cond: Operand, then_value: Operand, else_value: Operand },
    /// Binary arithmetic/bitwise operation.
    Bin { op: BinOp, ty: Type, lhs: Operand, rhs: Operand },
    /// Integer comparison; yields `i1`.
    Icmp { pred: IcmpPred, ty: Type, lhs: Operand, rhs: Operand },
    /// Float comparison; yields `i1`.
    Fcmp { pred: FcmpPred, lhs: Operand, rhs: Operand },
    /// Cast operation.
    Cast { op: CastOp, value: Operand, from: Type, to: Type },
    /// Direct call, resolved by name against module functions, then host
    /// declarations (the "linked runtime library").
    Call { callee: String, args: Vec<Operand>, ret: Type },
    /// Indirect call through a function pointer.
    CallIndirect { callee: Operand, args: Vec<Operand>, ret: Type },
    /// `memcpy(dst, src, len)` intrinsic (byte count).
    MemCpy { dst: Operand, src: Operand, len: Operand },
    /// `memset(dst, byte, len)` intrinsic.
    MemSet { dst: Operand, byte: Operand, len: Operand },
    /// Removed instruction (tombstone); never linked into a block.
    Nop,
}

impl InstrKind {
    /// The result type of the instruction, or `None` if it yields no value.
    pub fn result_type(&self) -> Option<Type> {
        match self {
            InstrKind::Alloca { .. } | InstrKind::Gep { .. } => Some(Type::Ptr),
            InstrKind::Load { ty, .. } => Some(ty.clone()),
            InstrKind::Store { .. } => None,
            InstrKind::Phi { ty, .. } | InstrKind::Select { ty, .. } => Some(ty.clone()),
            InstrKind::Bin { ty, .. } => Some(ty.clone()),
            InstrKind::Icmp { .. } | InstrKind::Fcmp { .. } => Some(Type::I1),
            InstrKind::Cast { to, .. } => Some(to.clone()),
            InstrKind::Call { ret, .. } | InstrKind::CallIndirect { ret, .. } => {
                if *ret == Type::Void {
                    None
                } else {
                    Some(ret.clone())
                }
            }
            InstrKind::MemCpy { .. } | InstrKind::MemSet { .. } => None,
            InstrKind::Nop => None,
        }
    }

    /// Whether this instruction reads or writes memory or has other side
    /// effects when considered without inter-procedural information.
    ///
    /// Calls are conservatively side-effecting; the pass pipeline refines
    /// this for host functions using [`crate::module::Effect`].
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            InstrKind::Store { .. }
                | InstrKind::Call { .. }
                | InstrKind::CallIndirect { .. }
                | InstrKind::MemCpy { .. }
                | InstrKind::MemSet { .. }
        )
    }

    /// Whether this instruction accesses memory (used by alias-sensitive
    /// passes).
    pub fn accesses_memory(&self) -> bool {
        matches!(
            self,
            InstrKind::Load { .. }
                | InstrKind::Store { .. }
                | InstrKind::Call { .. }
                | InstrKind::CallIndirect { .. }
                | InstrKind::MemCpy { .. }
                | InstrKind::MemSet { .. }
        )
    }

    /// Visits every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            InstrKind::Alloca { count, .. } => f(count),
            InstrKind::Load { ptr, .. } => f(ptr),
            InstrKind::Store { value, ptr, .. } => {
                f(value);
                f(ptr);
            }
            InstrKind::Gep { base, indices, .. } => {
                f(base);
                indices.iter().for_each(f);
            }
            InstrKind::Phi { incoming, .. } => incoming.iter().for_each(|(_, op)| f(op)),
            InstrKind::Select { cond, then_value, else_value, .. } => {
                f(cond);
                f(then_value);
                f(else_value);
            }
            InstrKind::Bin { lhs, rhs, .. }
            | InstrKind::Icmp { lhs, rhs, .. }
            | InstrKind::Fcmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstrKind::Cast { value, .. } => f(value),
            InstrKind::Call { args, .. } => args.iter().for_each(f),
            InstrKind::CallIndirect { callee, args, .. } => {
                f(callee);
                args.iter().for_each(f);
            }
            InstrKind::MemCpy { dst, src, len } => {
                f(dst);
                f(src);
                f(len);
            }
            InstrKind::MemSet { dst, byte, len } => {
                f(dst);
                f(byte);
                f(len);
            }
            InstrKind::Nop => {}
        }
    }

    /// Visits every operand mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            InstrKind::Alloca { count, .. } => f(count),
            InstrKind::Load { ptr, .. } => f(ptr),
            InstrKind::Store { value, ptr, .. } => {
                f(value);
                f(ptr);
            }
            InstrKind::Gep { base, indices, .. } => {
                f(base);
                indices.iter_mut().for_each(f);
            }
            InstrKind::Phi { incoming, .. } => incoming.iter_mut().for_each(|(_, op)| f(op)),
            InstrKind::Select { cond, then_value, else_value, .. } => {
                f(cond);
                f(then_value);
                f(else_value);
            }
            InstrKind::Bin { lhs, rhs, .. }
            | InstrKind::Icmp { lhs, rhs, .. }
            | InstrKind::Fcmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstrKind::Cast { value, .. } => f(value),
            InstrKind::Call { args, .. } => args.iter_mut().for_each(f),
            InstrKind::CallIndirect { callee, args, .. } => {
                f(callee);
                args.iter_mut().for_each(f);
            }
            InstrKind::MemCpy { dst, src, len } => {
                f(dst);
                f(src);
                f(len);
            }
            InstrKind::MemSet { dst, byte, len } => {
                f(dst);
                f(byte);
                f(len);
            }
            InstrKind::Nop => {}
        }
    }
}

/// An instruction: its payload plus the SSA value it defines (if any).
#[derive(Clone, PartialEq, Debug)]
pub struct Instr {
    /// The operation.
    pub kind: InstrKind,
    /// The SSA value defined by this instruction, if it produces one.
    pub result: Option<ValueId>,
    /// Source location, like an LLVM debug location: set by the frontend,
    /// preserved or legally dropped by passes, never required for
    /// correctness.
    pub loc: Option<crate::srcloc::SrcLoc>,
}

/// Block terminators.
#[allow(missing_docs)]
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Return from the function, optionally with a value.
    Ret(Option<Operand>),
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` operand.
    CondBr { cond: Operand, then_bb: BlockId, else_bb: BlockId },
    /// Marks unreachable code (e.g. after a call to an aborting function).
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
        }
    }

    /// Visits every operand used by the terminator.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Terminator::Ret(Some(op)) => f(op),
            Terminator::CondBr { cond, .. } => f(cond),
            _ => {}
        }
    }

    /// Visits every operand used by the terminator, mutably.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::Ret(Some(op)) => f(op),
            Terminator::CondBr { cond, .. } => f(cond),
            _ => {}
        }
    }

    /// Replaces successor `from` with `to` (used by CFG transforms).
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Br(b) if *b == from => {
                *b = to;
            }
            Terminator::CondBr { then_bb, else_bb, .. } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::i64(5).as_const_int(), Some(5));
        assert_eq!(Operand::bool(true).as_const_int(), Some(1));
        assert!(Operand::Null.is_const());
        assert!(!Operand::Val(ValueId::new(0)).is_const());
        assert_eq!(Operand::Val(ValueId::new(3)).as_value(), Some(ValueId::new(3)));
    }

    #[test]
    fn operand_hash_eq_use_bit_semantics_for_floats() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Operand::ConstFloat(f64::NAN));
        assert!(set.contains(&Operand::ConstFloat(f64::NAN)));
        assert_ne!(Operand::ConstFloat(0.0), Operand::ConstFloat(-0.0));
        set.insert(Operand::i64(7));
        set.insert(Operand::i64(7));
        assert_eq!(set.len(), 2);
        assert_ne!(Operand::i64(7), Operand::i32(7));
    }

    #[test]
    fn result_types() {
        let load = InstrKind::Load { ty: Type::I32, ptr: Operand::Null };
        assert_eq!(load.result_type(), Some(Type::I32));
        let store = InstrKind::Store { ty: Type::I32, value: Operand::i32(1), ptr: Operand::Null };
        assert_eq!(store.result_type(), None);
        let call_void = InstrKind::Call { callee: "f".into(), args: vec![], ret: Type::Void };
        assert_eq!(call_void.result_type(), None);
        let gep = InstrKind::Gep {
            elem_ty: Type::I8,
            base: Operand::Null,
            indices: vec![Operand::i64(1)],
        };
        assert_eq!(gep.result_type(), Some(Type::Ptr));
    }

    #[test]
    fn side_effects() {
        assert!(InstrKind::Store { ty: Type::I8, value: Operand::i64(0), ptr: Operand::Null }
            .has_side_effects());
        assert!(!InstrKind::Load { ty: Type::I8, ptr: Operand::Null }.has_side_effects());
        assert!(InstrKind::Load { ty: Type::I8, ptr: Operand::Null }.accesses_memory());
        assert!(InstrKind::MemCpy { dst: Operand::Null, src: Operand::Null, len: Operand::i64(0) }
            .has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::bool(true),
            then_bb: BlockId::new(1),
            else_bb: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
    }

    #[test]
    fn replace_successor() {
        let mut t = Terminator::Br(BlockId::new(1));
        t.replace_successor(BlockId::new(1), BlockId::new(5));
        assert_eq!(t.successors(), vec![BlockId::new(5)]);
    }

    #[test]
    fn operand_visit_collects_all() {
        let k = InstrKind::Select {
            ty: Type::I64,
            cond: Operand::bool(true),
            then_value: Operand::i64(1),
            else_value: Operand::i64(2),
        };
        let mut n = 0;
        k.for_each_operand(|_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn icmp_inverse_and_swap_are_involutions() {
        for p in [
            IcmpPred::Eq,
            IcmpPred::Ne,
            IcmpPred::Slt,
            IcmpPred::Sle,
            IcmpPred::Sgt,
            IcmpPred::Sge,
            IcmpPred::Ult,
            IcmpPred::Ule,
            IcmpPred::Ugt,
            IcmpPred::Uge,
        ] {
            assert_eq!(p.inverse().inverse(), p);
            assert_eq!(p.swapped().swapped(), p);
        }
        assert_eq!(IcmpPred::Slt.inverse(), IcmpPred::Sge);
        assert_eq!(IcmpPred::Slt.swapped(), IcmpPred::Sgt);
    }

    #[test]
    fn binop_properties() {
        assert!(BinOp::SDiv.can_trap());
        assert!(!BinOp::Add.can_trap());
        assert!(BinOp::FMul.is_float());
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }
}
