//! Control-flow graph: predecessor/successor maps and orderings.

use crate::function::Function;
use crate::ids::BlockId;

/// Predecessor/successor structure of a function's blocks, plus a reverse
/// post-order (RPO) over the blocks reachable from the entry.
#[derive(Clone, Debug)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (bid, block) in f.iter_blocks() {
            for s in block.term.successors() {
                succs[bid.index()].push(s);
                preds[s.index()].push(bid);
            }
        }
        // Post-order DFS from entry, then reverse.
        let mut rpo = Vec::with_capacity(n);
        if n > 0 {
            let mut visited = vec![false; n];
            // Iterative DFS with an explicit stack of (block, next-succ-index).
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::new(0), 0)];
            visited[0] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < succs[b.index()].len() {
                    let s = succs[b.index()][*i];
                    *i += 1;
                    if !visited[s.index()] {
                        visited[s.index()] = true;
                        stack.push((s, 0));
                    }
                } else {
                    rpo.push(b);
                    stack.pop();
                }
            }
            rpo.reverse();
        }
        let mut rpo_index = vec![None; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i as u32);
        }
        Cfg { preds, succs, rpo, rpo_index }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Reverse post-order over reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the RPO, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<u32> {
        self.rpo_index[b.index()]
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Operand;
    use crate::types::Type;

    /// entry -> {then, else} -> join
    fn diamond() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("c", Type::I1)], Type::I64);
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        let j = fb.new_block("j");
        let c = fb.param(0);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn diamond_preds_succs() {
        let m = diamond();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        assert_eq!(cfg.succs(BlockId::new(0)), &[BlockId::new(1), BlockId::new(2)]);
        assert_eq!(cfg.preds(BlockId::new(3)), &[BlockId::new(1), BlockId::new(2)]);
        assert_eq!(cfg.preds(BlockId::new(0)), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry_and_join_is_last() {
        let m = diamond();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        assert_eq!(cfg.rpo()[0], BlockId::new(0));
        assert_eq!(*cfg.rpo().last().unwrap(), BlockId::new(3));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn unreachable_block_not_in_rpo() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        let dead = fb.new_block("dead");
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 1);
    }
}
