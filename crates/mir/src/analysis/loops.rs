//! Natural loop detection (back edges to dominating headers).
//!
//! Used by LICM and by the pipeline experiments: checks inserted *before*
//! loop optimizations block hoisting (§5.5 of the paper), so loop structure
//! must be discoverable to show that effect.

use std::collections::BTreeSet;

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::ids::BlockId;

/// A natural loop: a header plus the set of blocks that reach the back edge
/// without passing through the header.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// The unique predecessor of the header outside the loop, if there is
    /// exactly one (a *preheader candidate*).
    pub fn preheader(&self, cfg: &Cfg) -> Option<BlockId> {
        let outside: Vec<BlockId> =
            cfg.preds(self.header).iter().copied().filter(|p| !self.contains(*p)).collect();
        match outside.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }
}

/// All natural loops of a function (merged per header).
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// Loops, outermost order not guaranteed.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Finds the natural loops of `f`.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let mut loops: Vec<Loop> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    // b -> s is a back edge with header s.
                    let body = collect_loop_body(cfg, s, b);
                    if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                        l.blocks.extend(body);
                        l.latches.push(b);
                    } else {
                        loops.push(Loop { header: s, blocks: body, latches: vec![b] });
                    }
                }
            }
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any (smallest body wins).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops.iter().filter(|l| l.contains(b)).min_by_key(|l| l.blocks.len())
    }
}

fn collect_loop_body(cfg: &Cfg, header: BlockId, latch: BlockId) -> BTreeSet<BlockId> {
    let mut body = BTreeSet::new();
    body.insert(header);
    body.insert(latch);
    let mut stack = vec![latch];
    while let Some(x) = stack.pop() {
        if x == header {
            continue;
        }
        for &p in cfg.preds(x) {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{IcmpPred, Operand};
    use crate::module::Module;
    use crate::types::Type;

    fn simple_loop() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::i64(0)), (body, Operand::i64(0))]);
        let n = fb.param(0);
        let c = fb.icmp(IcmpPred::Slt, Type::I64, i.clone(), n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let next = fb.add(Type::I64, i, Operand::i64(1));
        // Patch the phi's second incoming to the real next value.
        if let crate::instr::InstrKind::Phi { incoming, .. } = &mut fb.func_mut().instrs[0].kind {
            incoming[1].1 = next;
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn finds_the_loop() {
        let m = simple_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId::new(1));
        assert!(l.contains(BlockId::new(2)));
        assert!(!l.contains(BlockId::new(0)));
        assert!(!l.contains(BlockId::new(3)));
        assert_eq!(l.latches, vec![BlockId::new(2)]);
    }

    #[test]
    fn preheader_is_entry() {
        let m = simple_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops[0].preheader(&cfg), Some(BlockId::new(0)));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert!(forest.loops.is_empty());
    }
}
