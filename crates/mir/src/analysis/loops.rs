//! Natural loop detection (back edges to dominating headers), preheader
//! normalization, and a scalar-evolution-lite counted-loop analysis.
//!
//! Used by LICM, by the loop-aware check optimizer in `meminstrument`, and
//! by the pipeline experiments: checks inserted *before* loop optimizations
//! block hoisting (§5.5 of the paper), so loop structure must be
//! discoverable to show that effect.

use std::collections::BTreeSet;

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::function::{Function, ValueDef};
use crate::ids::{BlockId, InstrId, ValueId};
use crate::instr::{BinOp, CastOp, IcmpPred, InstrKind, Operand, Terminator};
use crate::types::Type;

/// A natural loop: a header plus the set of blocks that reach the back edge
/// without passing through the header.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// The unique predecessor of the header outside the loop, if there is
    /// exactly one (a *preheader candidate*).
    pub fn preheader(&self, cfg: &Cfg) -> Option<BlockId> {
        let outside: Vec<BlockId> =
            cfg.preds(self.header).iter().copied().filter(|p| !self.contains(*p)).collect();
        match outside.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }

    /// The *dedicated* preheader, if present: the unique outside
    /// predecessor, ending in an unconditional branch to the header (so
    /// code appended there executes exactly once per loop entry).
    pub fn dedicated_preheader(&self, f: &Function, cfg: &Cfg) -> Option<BlockId> {
        let pre = self.preheader(cfg)?;
        match f.blocks[pre.index()].term {
            Terminator::Br(t) if t == self.header => Some(pre),
            _ => None,
        }
    }

    /// SSA values defined by instructions inside the loop.
    pub fn defined_values(&self, f: &Function) -> BTreeSet<ValueId> {
        let mut set = BTreeSet::new();
        for &b in &self.blocks {
            for &iid in &f.blocks[b.index()].instrs {
                if let Some(v) = f.instrs[iid.index()].result {
                    set.insert(v);
                }
            }
        }
        set
    }
}

/// Whether `op` refers only to values defined outside the loop whose
/// definitions are `loop_defs` (constants and globals are always invariant).
pub fn operand_is_invariant(op: &Operand, loop_defs: &BTreeSet<ValueId>) -> bool {
    if let Some(v) = op.as_value() {
        !loop_defs.contains(&v)
    } else {
        true
    }
}

/// Makes sure `l` has a dedicated preheader, creating one if necessary.
///
/// Returns the preheader block, or `None` when the header has no
/// predecessor outside the loop (an entry-header or unreachable loop).
/// `cfg` must describe `f` as passed in; it is stale after a block is
/// inserted, so recompute it before further CFG queries.
///
/// When a block is created, every outside predecessor is retargeted to it
/// and the header's phis are split: their outside incoming entries collapse
/// to a single entry from the new preheader (merging through a fresh phi in
/// the preheader when the incoming values differ — a value that dominates
/// the end of every outside predecessor also dominates the new block).
pub fn ensure_dedicated_preheader(f: &mut Function, cfg: &Cfg, l: &Loop) -> Option<BlockId> {
    if let Some(pre) = l.dedicated_preheader(f, cfg) {
        return Some(pre);
    }
    let outside: Vec<BlockId> =
        cfg.preds(l.header).iter().copied().filter(|p| !l.contains(*p)).collect();
    if outside.is_empty() {
        return None;
    }
    let name = format!("{}.preheader", f.blocks[l.header.index()].name);
    let pre = f.add_block(name);
    for &p in &outside {
        f.blocks[p.index()].term.replace_successor(l.header, pre);
    }
    f.blocks[pre.index()].term = Terminator::Br(l.header);
    let header_instrs = f.blocks[l.header.index()].instrs.clone();
    for iid in header_instrs {
        let (ty, incoming) = match &f.instrs[iid.index()].kind {
            InstrKind::Phi { ty, incoming } => (ty.clone(), incoming.clone()),
            _ => continue,
        };
        let (outer, inner): (Vec<_>, Vec<_>) =
            incoming.into_iter().partition(|(b, _)| !l.contains(*b));
        if outer.is_empty() {
            continue;
        }
        let merged = if outer.iter().all(|(_, op)| *op == outer[0].1) {
            outer[0].1.clone()
        } else {
            let phi = f.insert_instr(pre, 0, InstrKind::Phi { ty, incoming: outer });
            Operand::Val(f.instr_result(phi).unwrap())
        };
        let mut entries = inner;
        entries.push((pre, merged));
        if let InstrKind::Phi { incoming, .. } = &mut f.instrs[iid.index()].kind {
            *incoming = entries;
        }
    }
    Some(pre)
}

/// A counted loop: `for (iv = init; iv <pred> limit; iv += step)` with
/// compile-time-constant `init`, `limit`, and `step`, exiting through the
/// header. The trip count is exact, so downstream users may rely on the
/// loop body executing exactly `trip_count` times.
#[derive(Clone, Debug)]
pub struct CountedLoop {
    /// The induction variable (the header phi's result).
    pub iv: ValueId,
    /// The phi instruction defining the induction variable.
    pub phi: InstrId,
    /// Initial value of the IV on loop entry.
    pub init: i64,
    /// Per-iteration increment (never zero; negative for descending loops).
    pub step: i64,
    /// Exact number of body executions (0 when the loop is never entered).
    pub trip_count: u64,
}

/// Resolves a `CondBr` condition to the underlying `i64` comparison
/// `(pred, lhs, rhs)`, looking through the frontend's boolean
/// materialization idiom: `icmp ne/eq <int> x, 0` over a `zext`/`sext`
/// of an `i1`, chained arbitrarily. `negate` tracks parity of `eq 0`
/// wrappers (each one logically inverts the inner predicate).
fn resolve_exit_cmp(
    f: &Function,
    v: ValueId,
    negate: bool,
) -> Option<(IcmpPred, Operand, Operand)> {
    let ValueDef::Instr(id) = f.values[v.index()].def else {
        return None;
    };
    match &f.instrs[id.index()].kind {
        InstrKind::Icmp { pred, ty: Type::I64, lhs, rhs } => {
            let p = if negate { pred.inverse() } else { *pred };
            Some((p, lhs.clone(), rhs.clone()))
        }
        InstrKind::Icmp { pred: pred @ (IcmpPred::Ne | IcmpPred::Eq), lhs, rhs, .. } => {
            let inner = match (lhs.as_value(), rhs.as_const_int()) {
                (Some(x), Some(0)) => x,
                _ => match (lhs.as_const_int(), rhs.as_value()) {
                    (Some(0), Some(x)) => x,
                    _ => return None,
                },
            };
            resolve_exit_cmp(f, inner, negate ^ (*pred == IcmpPred::Eq))
        }
        InstrKind::Cast { op: CastOp::Zext | CastOp::Sext, value, from: Type::I1, .. } => {
            resolve_exit_cmp(f, value.as_value()?, negate)
        }
        _ => None,
    }
}

impl CountedLoop {
    /// IV value on the final executed iteration.
    ///
    /// Meaningless (and asserted against in debug builds) when
    /// `trip_count == 0`.
    pub fn last(&self) -> i64 {
        debug_assert!(self.trip_count >= 1);
        // Fits in i64: analyze() verified init + trip_count*step does.
        (self.init as i128 + (self.trip_count as i128 - 1) * self.step as i128) as i64
    }

    /// Recognizes `l` as a counted loop.
    ///
    /// Requirements: the header exits the loop through a `CondBr` on an
    /// `i64` `Icmp` of a header phi against a constant (possibly wrapped
    /// in the frontend's `zext i1` / `icmp ne _, 0` boolean-materialization
    /// idiom, which `resolve_exit_cmp` looks through); the phi has exactly
    /// two incoming values — a constant from outside and `iv + step`
    /// (or `iv - c`) from the unique latch; the predicate and the sign of
    /// `step` agree (ascending `<`/`<=`, descending `>`/`>=`; unsigned
    /// predicates additionally need non-negative `init` and `limit`, and
    /// unsigned descending loops are rejected because they can wrap).
    /// The IV value after the final iteration must fit in `i64`, so the
    /// trip count is exact under wrapping semantics.
    pub fn analyze(f: &Function, l: &Loop) -> Option<CountedLoop> {
        let Terminator::CondBr { cond, then_bb, else_bb } = &f.blocks[l.header.index()].term else {
            return None;
        };
        let cont_on_true = l.contains(*then_bb) && !l.contains(*else_bb);
        let cont_on_false = l.contains(*else_bb) && !l.contains(*then_bb);
        if !cont_on_true && !cont_on_false {
            return None;
        }
        let cond_v = cond.as_value()?;
        let (pred, lhs, rhs) = resolve_exit_cmp(f, cond_v, false)?;
        // Normalize to `iv pred limit` with a constant limit.
        let (iv, limit, mut pred) = match (lhs.as_value(), rhs.as_const_int()) {
            (Some(v), Some(c)) => (v, c, pred),
            _ => match (lhs.as_const_int(), rhs.as_value()) {
                (Some(c), Some(v)) => (v, c, pred.swapped()),
                _ => return None,
            },
        };
        if cont_on_false {
            pred = pred.inverse();
        }
        let ValueDef::Instr(phi_id) = f.values[iv.index()].def else {
            return None;
        };
        if f.block_of_instr(phi_id) != Some(l.header) {
            return None;
        }
        let InstrKind::Phi { ty, incoming } = &f.instrs[phi_id.index()].kind else {
            return None;
        };
        if *ty != Type::I64 || incoming.len() != 2 {
            return None;
        }
        let (outer, inner): (Vec<_>, Vec<_>) = incoming.iter().partition(|(b, _)| !l.contains(*b));
        if outer.len() != 1 || inner.len() != 1 {
            return None;
        }
        let init = outer[0].1.as_const_int()?;
        let next = inner[0].1.as_value()?;
        let ValueDef::Instr(next_id) = f.values[next.index()].def else {
            return None;
        };
        let InstrKind::Bin { op, lhs, rhs, .. } = &f.instrs[next_id.index()].kind else {
            return None;
        };
        let step = match op {
            BinOp::Add if lhs.as_value() == Some(iv) => rhs.as_const_int()?,
            BinOp::Add if rhs.as_value() == Some(iv) => lhs.as_const_int()?,
            BinOp::Sub if lhs.as_value() == Some(iv) => rhs.as_const_int()?.checked_neg()?,
            _ => return None,
        };
        if step == 0 {
            return None;
        }
        let (iw, lw, sw) = (init as i128, limit as i128, step as i128);
        let trip: i128 = match pred {
            IcmpPred::Slt | IcmpPred::Ult if step > 0 => {
                if pred == IcmpPred::Ult && (init < 0 || limit < 0) {
                    return None;
                }
                if iw >= lw {
                    0
                } else {
                    (lw - iw + sw - 1) / sw
                }
            }
            IcmpPred::Sle | IcmpPred::Ule if step > 0 => {
                if pred == IcmpPred::Ule && (init < 0 || limit < 0) {
                    return None;
                }
                if iw > lw {
                    0
                } else {
                    (lw - iw) / sw + 1
                }
            }
            IcmpPred::Sgt if step < 0 => {
                if iw <= lw {
                    0
                } else {
                    (iw - lw + (-sw) - 1) / (-sw)
                }
            }
            IcmpPred::Sge if step < 0 => {
                if iw < lw {
                    0
                } else {
                    (iw - lw) / (-sw) + 1
                }
            }
            _ => return None,
        };
        // The IV value after the final iteration must not wrap, or the
        // exit comparison would observe a wrapped value.
        let after = iw + trip * sw;
        if after < i64::MIN as i128 || after > i64::MAX as i128 {
            return None;
        }
        Some(CountedLoop { iv, phi: phi_id, init, step, trip_count: trip as u64 })
    }
}

/// All natural loops of a function (merged per header).
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// Loops, outermost order not guaranteed.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Finds the natural loops of `f`.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let mut loops: Vec<Loop> = Vec::new();
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    // b -> s is a back edge with header s.
                    let body = collect_loop_body(cfg, s, b);
                    if let Some(l) = loops.iter_mut().find(|l| l.header == s) {
                        l.blocks.extend(body);
                        l.latches.push(b);
                    } else {
                        loops.push(Loop { header: s, blocks: body, latches: vec![b] });
                    }
                }
            }
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any (smallest body wins).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops.iter().filter(|l| l.contains(b)).min_by_key(|l| l.blocks.len())
    }
}

fn collect_loop_body(cfg: &Cfg, header: BlockId, latch: BlockId) -> BTreeSet<BlockId> {
    let mut body = BTreeSet::new();
    body.insert(header);
    body.insert(latch);
    let mut stack = vec![latch];
    while let Some(x) = stack.pop() {
        if x == header {
            continue;
        }
        for &p in cfg.preds(x) {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{IcmpPred, Operand};
    use crate::module::Module;
    use crate::types::Type;

    fn simple_loop() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::i64(0)), (body, Operand::i64(0))]);
        let n = fb.param(0);
        let c = fb.icmp(IcmpPred::Slt, Type::I64, i.clone(), n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let next = fb.add(Type::I64, i, Operand::i64(1));
        // Patch the phi's second incoming to the real next value.
        if let crate::instr::InstrKind::Phi { incoming, .. } = &mut fb.func_mut().instrs[0].kind {
            incoming[1].1 = next;
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn finds_the_loop() {
        let m = simple_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId::new(1));
        assert!(l.contains(BlockId::new(2)));
        assert!(!l.contains(BlockId::new(0)));
        assert!(!l.contains(BlockId::new(3)));
        assert_eq!(l.latches, vec![BlockId::new(2)]);
    }

    #[test]
    fn preheader_is_entry() {
        let m = simple_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops[0].preheader(&cfg), Some(BlockId::new(0)));
    }

    /// `for (i = init; i pred limit; i += step) {}` with the latch folded
    /// into the body block.
    fn counted(init: i64, pred: IcmpPred, limit: Operand, step: i64) -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let entry = fb.current_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::i64(init)), (body, Operand::i64(0))]);
        let c = fb.icmp(pred, Type::I64, i.clone(), limit);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let next = fb.add(Type::I64, i, Operand::i64(step));
        if let crate::instr::InstrKind::Phi { incoming, .. } = &mut fb.func_mut().instrs[0].kind {
            incoming[1].1 = next;
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        mb.finish()
    }

    fn analyze_counted(m: &Module) -> Option<CountedLoop> {
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        CountedLoop::analyze(f, &forest.loops[0])
    }

    #[test]
    fn dedicated_preheader_is_detected_and_reused() {
        let mut m = simple_loop();
        let f = m.function_by_name_mut("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let l = forest.loops[0].clone();
        assert_eq!(l.dedicated_preheader(f, &cfg), Some(BlockId::new(0)));
        let nblocks = f.blocks.len();
        assert_eq!(ensure_dedicated_preheader(f, &cfg, &l), Some(BlockId::new(0)));
        assert_eq!(f.blocks.len(), nblocks, "no block inserted when one exists");
    }

    #[test]
    fn counted_loop_ascending() {
        let m = counted(0, IcmpPred::Slt, Operand::i64(10), 1);
        let cl = analyze_counted(&m).expect("counted loop");
        assert_eq!((cl.init, cl.step, cl.trip_count), (0, 1, 10));
        assert_eq!(cl.last(), 9);
    }

    #[test]
    fn counted_loop_with_stride_and_inclusive_bound() {
        let m = counted(2, IcmpPred::Sle, Operand::i64(11), 3);
        let cl = analyze_counted(&m).expect("counted loop");
        // 2, 5, 8, 11
        assert_eq!((cl.init, cl.step, cl.trip_count), (2, 3, 4));
        assert_eq!(cl.last(), 11);
    }

    #[test]
    fn counted_loop_descending() {
        let m = counted(7, IcmpPred::Sge, Operand::i64(-8), -1);
        let cl = analyze_counted(&m).expect("counted loop");
        assert_eq!((cl.init, cl.step, cl.trip_count), (7, -1, 16));
        assert_eq!(cl.last(), -8);
    }

    #[test]
    fn counted_loop_never_entered_has_zero_trips() {
        let m = counted(5, IcmpPred::Slt, Operand::i64(5), 1);
        let cl = analyze_counted(&m).expect("counted loop");
        assert_eq!(cl.trip_count, 0);
    }

    #[test]
    fn counted_loop_rejects_non_constant_limit() {
        // simple_loop compares against a parameter, not a constant.
        let m = simple_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert!(CountedLoop::analyze(f, &forest.loops[0]).is_none());
    }

    #[test]
    fn counted_loop_rejects_mismatched_direction() {
        // step -1 with an ascending predicate is not countable.
        let m = counted(0, IcmpPred::Slt, Operand::i64(10), -1);
        assert!(analyze_counted(&m).is_none());
    }

    #[test]
    fn ensure_preheader_splits_multi_entry_header() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let left = fb.new_block("left");
        let right = fb.new_block("right");
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        let n = fb.param(0);
        let c0 = fb.icmp(IcmpPred::Eq, Type::I64, n.clone(), Operand::i64(0));
        fb.cond_br(c0, left, right);
        fb.switch_to(left);
        fb.br(header);
        fb.switch_to(right);
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(
            Type::I64,
            vec![(left, Operand::i64(0)), (right, Operand::i64(5)), (body, Operand::i64(0))],
        );
        let c = fb.icmp(IcmpPred::Slt, Type::I64, i.clone(), n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let next = fb.add(Type::I64, i, Operand::i64(1));
        if let crate::instr::InstrKind::Phi { incoming, .. } = &mut fb.func_mut().instrs[1].kind {
            incoming[2].1 = next;
        }
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let mut m = mb.finish();
        crate::verifier::verify_module(&m).unwrap();

        let f = m.function_by_name_mut("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = forest.loops[0].clone();
        assert!(l.dedicated_preheader(f, &cfg).is_none());
        let pre = ensure_dedicated_preheader(f, &cfg, &l).expect("preheader inserted");
        assert!(matches!(f.blocks[pre.index()].term, Terminator::Br(t) if t == l.header));
        // The header phi now has exactly one outside incoming (from pre),
        // merging 0 and 5 through a fresh phi in the preheader.
        let phi_id = f.blocks[l.header.index()].instrs[0];
        if let InstrKind::Phi { incoming, .. } = &f.instrs[phi_id.index()].kind {
            assert_eq!(incoming.len(), 2);
            assert!(incoming.iter().any(|(b, _)| *b == pre));
        } else {
            panic!("expected phi");
        }
        assert_eq!(f.blocks[pre.index()].instrs.len(), 1, "merge phi in preheader");
        crate::verifier::verify_module(&m).unwrap();
    }

    #[test]
    fn loop_invariance_helper() {
        let m = counted(0, IcmpPred::Slt, Operand::i64(10), 1);
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let defs = forest.loops[0].defined_values(f);
        // The IV phi is defined inside; the parameter and constants are not.
        let iv = f.instr_result(f.blocks[1].instrs[0]).unwrap();
        assert!(!operand_is_invariant(&Operand::Val(iv), &defs));
        assert!(operand_is_invariant(&Operand::Val(f.param_value(0)), &defs));
        assert!(operand_is_invariant(&Operand::i64(3), &defs));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![], Type::Void);
        fb.ret(None);
        fb.finish();
        let m = mb.finish();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert!(forest.loops.is_empty());
    }
}
