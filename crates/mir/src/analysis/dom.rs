//! Dominator tree (Cooper–Harvey–Kennedy) and dominance frontiers.
//!
//! Dominance drives three consumers in this project: the SSA verifier, the
//! `mem2reg` pass (phi placement at dominance frontiers), and — most
//! importantly for the paper — the *dominance-based redundant check
//! elimination* of §5.3, which removes a check if another check of the same
//! location dominates it.

use crate::analysis::cfg::Cfg;
use crate::function::Function;
use crate::ids::{BlockId, InstrId};

/// Dominator tree over the reachable blocks of a function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for entry and unreachable).
    idom: Vec<Option<BlockId>>,
    /// Children in the dominator tree.
    children: Vec<Vec<BlockId>>,
    /// Dominance frontier per block.
    frontier: Vec<Vec<BlockId>>,
    /// RPO index per block, used for O(depth) dominance queries.
    rpo_index: Vec<Option<u32>>,
}

impl DomTree {
    /// Computes the dominator tree of `f` given its CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, children: vec![], frontier: vec![], rpo_index: vec![] };
        }
        let entry = BlockId::new(0);
        idom[entry.index()] = Some(entry);

        let rpo = cfg.rpo();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cfg, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Entry's idom is conventionally None in the public API.
        idom[entry.index()] = None;

        let mut children = vec![Vec::new(); n];
        for (b, d) in idom.iter().enumerate() {
            if let Some(d) = d {
                children[d.index()].push(BlockId::new(b));
            }
        }

        // Dominance frontiers (Cytron et al.).
        let mut frontier = vec![Vec::new(); n];
        for b in 0..n {
            let bid = BlockId::new(b);
            if !cfg.is_reachable(bid) || cfg.preds(bid).len() < 2 {
                continue;
            }
            let b_idom = idom[b];
            for &p in cfg.preds(bid) {
                if !cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = Some(p);
                while let Some(r) = runner {
                    if Some(r) == b_idom {
                        break;
                    }
                    if !frontier[r.index()].contains(&bid) {
                        frontier[r.index()].push(bid);
                    }
                    if r == BlockId::new(0) {
                        break;
                    }
                    runner = idom[r.index()];
                }
            }
        }

        let rpo_index = (0..n).map(|b| cfg.rpo_index(BlockId::new(b))).collect();
        DomTree { idom, children, frontier, rpo_index }
    }

    /// Immediate dominator of `b` (`None` for the entry block).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Dominance frontier of `b`.
    pub fn frontier(&self, b: BlockId) -> &[BlockId] {
        &self.frontier[b.index()]
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        // Walk up b's idom chain; RPO indices only decrease along it.
        let mut cur = self.idom(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            // Small optimization: a cannot dominate b if it comes later in RPO.
            if let (Some(ia), Some(ic)) = (self.rpo_index[a.index()], self.rpo_index[c.index()]) {
                if ic < ia {
                    return false;
                }
            }
            cur = self.idom(c);
        }
        false
    }

    /// Whether `a` *strictly* dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Dominator-tree preorder over reachable blocks.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        if self.idom.is_empty() {
            return out;
        }
        let mut stack = vec![BlockId::new(0)];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b).iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

fn intersect(idom: &[Option<BlockId>], cfg: &Cfg, mut a: BlockId, mut b: BlockId) -> BlockId {
    let order = |x: BlockId| cfg.rpo_index(x).expect("reachable");
    while a != b {
        while order(a) > order(b) {
            a = idom[a.index()].expect("has idom");
        }
        while order(b) > order(a) {
            b = idom[b.index()].expect("has idom");
        }
    }
    a
}

/// Dominance between instructions: `a` dominates `b` if its block strictly
/// dominates `b`'s block, or both are in the same block and `a` comes first.
pub fn instr_dominates(
    f: &Function,
    dom: &DomTree,
    (block_a, instr_a): (BlockId, InstrId),
    (block_b, instr_b): (BlockId, InstrId),
) -> bool {
    if block_a == block_b {
        if instr_a == instr_b {
            return true;
        }
        let block = &f.blocks[block_a.index()];
        let pa = block.instrs.iter().position(|&i| i == instr_a);
        let pb = block.instrs.iter().position(|&i| i == instr_b);
        match (pa, pb) {
            (Some(pa), Some(pb)) => pa < pb,
            _ => false,
        }
    } else {
        dom.strictly_dominates(block_a, block_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::Operand;
    use crate::module::Module;
    use crate::types::Type;

    fn diamond_with_loop() -> Module {
        // entry -> header; header -> body | exit; body -> header
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("n", Type::I64)], Type::I64);
        let header = fb.new_block("header");
        let body = fb.new_block("body");
        let exit = fb.new_block("exit");
        fb.br(header);
        fb.switch_to(header);
        let n = fb.param(0);
        let c = fb.icmp(crate::instr::IcmpPred::Sgt, Type::I64, n, Operand::i64(0));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn idoms_in_loop() {
        let m = diamond_with_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let entry = BlockId::new(0);
        let header = BlockId::new(1);
        let body = BlockId::new(2);
        let exit = BlockId::new(3);
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(entry, exit));
    }

    #[test]
    fn dominance_matches_naive_definition() {
        // Check dominates() against the brute-force "every path" definition:
        // a dominates b iff removing a makes b unreachable from entry.
        let m = diamond_with_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let n = f.blocks.len();
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (BlockId::new(a), BlockId::new(b));
                if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
                    continue;
                }
                let naive = naive_dominates(&cfg, a, b);
                assert_eq!(dom.dominates(a, b), naive, "dominates({a},{b})");
            }
        }
    }

    fn naive_dominates(cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        // BFS from entry avoiding a; if we still reach b, a does not dominate.
        let mut seen = vec![false; cfg.block_count()];
        let entry = BlockId::new(0);
        if entry == a {
            return true;
        }
        if b == entry {
            return false; // only entry dominates entry
        }
        let mut queue = vec![entry];
        seen[entry.index()] = true;
        while let Some(x) = queue.pop() {
            for &s in cfg.succs(x) {
                if s == a || seen[s.index()] {
                    continue;
                }
                if s == b {
                    return false;
                }
                seen[s.index()] = true;
                queue.push(s);
            }
        }
        true
    }

    #[test]
    fn frontier_of_branch_sides_is_join() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("f", vec![("c", Type::I1)], Type::I64);
        let t = fb.new_block("t");
        let e = fb.new_block("e");
        let j = fb.new_block("j");
        let c = fb.param(0);
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(Some(Operand::i64(0)));
        fb.finish();
        let m = mb.finish();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        assert_eq!(dom.frontier(BlockId::new(1)), &[BlockId::new(3)]);
        assert_eq!(dom.frontier(BlockId::new(2)), &[BlockId::new(3)]);
        assert_eq!(dom.frontier(BlockId::new(0)), &[] as &[BlockId]);
    }

    #[test]
    fn preorder_visits_all_reachable() {
        let m = diamond_with_loop();
        let (_, f) = m.function_by_name("f").unwrap();
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let pre = dom.preorder();
        assert_eq!(pre.len(), 4);
        assert_eq!(pre[0], BlockId::new(0));
    }
}
