//! Analyses over functions and modules: CFG, dominator tree, natural
//! loops, and interprocedural pointer summaries.

pub mod cfg;
pub mod dom;
pub mod ipo;
pub mod loops;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use ipo::{FactEnv, FnSummary, ModuleSummaries, Provenance, PtrFact};
pub use loops::{ensure_dedicated_preheader, operand_is_invariant, CountedLoop, Loop, LoopForest};
