//! Analyses over functions: CFG, dominator tree, and natural loops.

pub mod cfg;
pub mod dom;
pub mod loops;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use loops::{ensure_dedicated_preheader, operand_is_invariant, CountedLoop, Loop, LoopForest};
