//! Interprocedural pointer-summary analysis.
//!
//! Summary-based whole-program analysis over the call graph: for every
//! defined function we compute a [`FnSummary`] — one [`PtrFact`] per
//! pointer parameter (the join over every call site's argument fact)
//! and one for the return value (the join over every `ret` operand).
//! Summaries are computed bottom-up over the SCC condensation of the
//! call graph with a monotone fixpoint for recursive components, so a
//! callee's facts are (mostly) settled before its callers consume them
//! and recursion converges by widening.
//!
//! A [`PtrFact`] answers three questions about a pointer:
//!
//! * **provenance** — which storage classes can the base object have
//!   ([`Provenance`] bitflags: heap, global, live stack frame, stack
//!   escaped through a return, unknown)?
//! * **offset** — what byte-offset range from the base of the original
//!   allocation can the pointer hold (`None` once unbounded)?
//! * **extent** — what is the guaranteed minimum size in bytes of the
//!   underlying allocation, across every possible base object?
//!
//! An access of `width` bytes through a pointer with fact `f` is
//! provably in bounds when `f` has no unknown provenance, a known
//! offset range `[lo, hi]` with `lo >= 0`, and `hi + width <=
//! f.size_min` — see [`PtrFact::proves_in_bounds`]. The consumer pass
//! (`meminstrument::opt::elide_proven_checks`) drops checks this
//! predicate discharges.
//!
//! The analysis is deliberately conservative at every escape hatch:
//! loads, int-to-ptr casts, indirect calls, undeclared callees, and
//! externally-visible globals all produce [`PtrFact::TOP`]. Summaries
//! key functions by **name and parameter index** only, never by value
//! or global ids, so a summary computed on the frontend module remains
//! valid after any pipeline prefix (passes rewrite bodies but never
//! function signatures). Module-dependent context (global sizes, the
//! defined-function set, whether `free` is ever reachable) lives in
//! [`FactEnv`], which callers rebuild from the module they are
//! actually instrumenting.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::function::Function;
use crate::instr::{CastOp, InstrKind, Operand, Terminator};
use crate::module::Module;
use crate::types::Type;

/// Bitset of possible storage classes for a pointer's base object.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Provenance(u8);

impl Provenance {
    /// No provenance bits (the empty set; only meaningful mid-join).
    pub const EMPTY: Provenance = Provenance(0);
    /// A heap allocation (`malloc` / `calloc`).
    pub const HEAP: Provenance = Provenance(1);
    /// An instrumented global with a statically known size.
    pub const GLOBAL: Provenance = Provenance(1 << 1);
    /// A stack slot whose frame is still live (intraprocedural `alloca`
    /// or a parameter fed by a caller's live frame).
    pub const STACK: Provenance = Provenance(1 << 2);
    /// A stack slot that escaped through a `ret` — the frame may be
    /// dead at the use site.
    pub const STACK_RET: Provenance = Provenance(1 << 3);
    /// Anything else: loads, int-to-ptr, external globals, undeclared
    /// callees. A fact carrying this bit proves nothing.
    pub const UNKNOWN: Provenance = Provenance(1 << 4);

    /// Set union.
    #[inline]
    pub fn union(self, other: Provenance) -> Provenance {
        Provenance(self.0 | other.0)
    }

    /// `true` if any bit of `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: Provenance) -> bool {
        self.0 & other.0 != 0
    }

    /// Demotes [`STACK`](Self::STACK) to [`STACK_RET`](Self::STACK_RET):
    /// applied when a fact crosses a `ret`, where the frame that owns
    /// the slot dies.
    pub fn demote_stack(self) -> Provenance {
        if self.contains(Self::STACK) {
            Provenance((self.0 & !Self::STACK.0) | Self::STACK_RET.0)
        } else {
            self
        }
    }
}

/// What the analysis knows about one pointer value.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PtrFact {
    /// Possible storage classes of the base object.
    pub prov: Provenance,
    /// Inclusive byte-offset range from the base of the allocation;
    /// `None` once the offset is unbounded.
    pub off: Option<(i64, i64)>,
    /// Guaranteed minimum allocation size in bytes over all possible
    /// base objects (0 = nothing guaranteed).
    pub size_min: u64,
}

impl PtrFact {
    /// The no-information fact: unknown provenance, unbounded offset,
    /// no extent guarantee.
    pub const TOP: PtrFact = PtrFact { prov: Provenance::UNKNOWN, off: None, size_min: 0 };

    /// Lattice join: union provenance, hull the offset ranges, keep the
    /// weaker extent guarantee.
    pub fn join(self, other: PtrFact) -> PtrFact {
        PtrFact {
            prov: self.prov.union(other.prov),
            off: match (self.off, other.off) {
                (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
                _ => None,
            },
            size_min: self.size_min.min(other.size_min),
        }
    }

    /// The fact for this pointer after adding a constant byte offset.
    pub fn shifted(self, delta: i128) -> PtrFact {
        let off = self.off.and_then(|(lo, hi)| {
            let lo = i64::try_from(lo as i128 + delta).ok()?;
            let hi = i64::try_from(hi as i128 + delta).ok()?;
            Some((lo, hi))
        });
        PtrFact { off, ..self }
    }

    /// The fact after crossing a `ret` (live stack becomes escaped
    /// stack).
    pub fn demoted(self) -> PtrFact {
        PtrFact { prov: self.prov.demote_stack(), ..self }
    }

    /// `true` if an access of `width` bytes through a pointer with this
    /// fact is proven in bounds of its original allocation: provenance
    /// fully known, offset range non-negative, and the far edge of the
    /// access within the guaranteed extent.
    pub fn proves_in_bounds(&self, width: u64) -> bool {
        if self.prov == Provenance::EMPTY || self.prov.contains(Provenance::UNKNOWN) {
            return false;
        }
        let Some((lo, hi)) = self.off else { return false };
        lo >= 0 && hi as i128 + width as i128 <= self.size_min as i128
    }
}

/// Per-function summary: one fact slot per parameter (pointer
/// parameters only; the rest stay `None`) and one for the return
/// value. `None` is bottom — no flow has reached that slot (the
/// function is unreachable, or never returns a pointer).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FnSummary {
    /// Joined argument fact per parameter index.
    pub params: Vec<Option<PtrFact>>,
    /// Joined fact over every `ret` operand (stack demoted).
    pub ret: Option<PtrFact>,
}

/// Whole-module summaries, keyed by function name. Deliberately free
/// of value/global/instruction ids so a summary computed on the
/// frontend module can be cached by source hash and applied after any
/// pipeline prefix.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ModuleSummaries {
    /// Summary per defined function, name-keyed (deterministic order).
    pub fns: BTreeMap<String, FnSummary>,
    /// Number of SCCs in the condensed call graph (diagnostics).
    pub sccs: usize,
}

impl ModuleSummaries {
    /// Number of summarized functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// `true` when no functions were summarized.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

/// Module-level context for fact evaluation, rebuilt from the module
/// actually being instrumented (global ids are positional and must not
/// be baked into cached summaries).
pub struct FactEnv {
    /// Fact per global, indexed by `GlobalId`.
    pub globals: Vec<PtrFact>,
    /// Names of defined (non-declaration) functions.
    pub defined: HashSet<String>,
    /// `true` if the module can ever call `free` (directly or through
    /// a function address) — heap facts then have temporal caveats.
    pub has_free: bool,
}

impl FactEnv {
    /// Collects global facts and callability context from `m`.
    pub fn collect(m: &Module) -> FactEnv {
        let globals = m
            .globals
            .iter()
            .map(|g| {
                if g.attrs.external || g.attrs.size_unknown || g.attrs.uninstrumented_lib {
                    PtrFact::TOP
                } else {
                    PtrFact { prov: Provenance::GLOBAL, off: Some((0, 0)), size_min: g.size() }
                }
            })
            .collect();
        let defined =
            m.functions.iter().filter(|f| !f.is_declaration).map(|f| f.name.clone()).collect();
        let mut has_free = false;
        for_each_callable_name(m, |name| {
            if name == "free" {
                has_free = true;
            }
        });
        FactEnv { globals, defined, has_free }
    }
}

/// Visits the name of every direct callee and every function whose
/// address is taken anywhere in `m`.
fn for_each_callable_name(m: &Module, mut visit: impl FnMut(&str)) {
    for f in &m.functions {
        for instr in &f.instrs {
            if let InstrKind::Call { callee, .. } = &instr.kind {
                visit(callee);
            }
            instr.kind.for_each_operand(|op| {
                if let Operand::FuncAddr(n) = op {
                    visit(n);
                }
            });
        }
        for b in &f.blocks {
            b.term.for_each_operand(|op| {
                if let Operand::FuncAddr(n) = op {
                    visit(n);
                }
            });
        }
    }
}

/// The direct call graph over defined functions.
pub struct CallGraph {
    /// Node `i` is `m.functions[funcs[i]]`.
    pub funcs: Vec<usize>,
    /// Function name per node (parallel to `funcs`).
    pub names: Vec<String>,
    /// Deduplicated callee node lists (direct calls to defined
    /// functions only; declarations and indirect calls have no node).
    pub edges: Vec<Vec<usize>>,
}

/// Builds the direct call graph of `m`'s defined functions.
pub fn call_graph(m: &Module) -> CallGraph {
    let mut funcs = Vec::new();
    let mut names = Vec::new();
    let mut node_of: HashMap<&str, usize> = HashMap::new();
    for (i, f) in m.functions.iter().enumerate() {
        if !f.is_declaration {
            node_of.insert(f.name.as_str(), funcs.len());
            funcs.push(i);
            names.push(f.name.clone());
        }
    }
    let mut edges = vec![Vec::new(); funcs.len()];
    for (node, &fi) in funcs.iter().enumerate() {
        let mut seen = HashSet::new();
        for instr in &m.functions[fi].instrs {
            if let InstrKind::Call { callee, .. } = &instr.kind {
                if let Some(&target) = node_of.get(callee.as_str()) {
                    if seen.insert(target) {
                        edges[node].push(target);
                    }
                }
            }
        }
    }
    CallGraph { funcs, names, edges }
}

/// Tarjan's SCC algorithm (iterative). Components come out callees
/// before callers — exactly the bottom-up order the summary fixpoint
/// wants to seed its worklist with.
pub fn condense(cg: &CallGraph) -> Vec<Vec<usize>> {
    let n = cg.edges.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = frames.last() {
            if ci == 0 && index[v] == UNVISITED {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = cg.edges[v].get(ci) {
                frames.last_mut().expect("frame exists").1 += 1;
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC member on stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.reverse();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Rounds of full-function re-evaluation before `value_facts` starts
/// widening offsets to force convergence.
const VALUE_ROUNDS_BEFORE_WIDEN: usize = 8;
/// Hard safety net on value-fact rounds.
const VALUE_ROUNDS_MAX: usize = 64;
/// Summary updates a single function absorbs before further updates
/// are stored with widened (unbounded) offsets.
const SUMMARY_CHANGES_BEFORE_WIDEN: u32 = 16;

/// Computes per-value pointer facts for one function. The result is
/// indexed by `ValueId`; `None` means bottom (no pointer flow reached
/// the value — treat as unproven). Parameter facts come from
/// `summaries`; a function without a summary entry gets bottom params
/// (it can still prove facts about its own allocations).
pub fn value_facts(
    f: &Function,
    env: &FactEnv,
    summaries: &ModuleSummaries,
) -> Vec<Option<PtrFact>> {
    let mut facts: Vec<Option<PtrFact>> = vec![None; f.values.len()];
    let summary = summaries.fns.get(&f.name);
    for (i, p) in f.params.iter().enumerate() {
        if p.ty == Type::Ptr {
            facts[f.param_value(i).index()] =
                summary.and_then(|s| s.params.get(i).copied().flatten());
        }
    }
    let mut round = 0;
    loop {
        round += 1;
        let mut changed: Vec<usize> = Vec::new();
        for (_, b) in f.iter_blocks() {
            for &iid in &b.instrs {
                let instr = &f.instrs[iid.index()];
                let Some(res) = instr.result else { continue };
                if *f.value_type(res) != Type::Ptr {
                    continue;
                }
                let new = transfer(f, env, summaries, &facts, &instr.kind);
                let slot = facts[res.index()];
                // Accumulating join keeps widened offsets sticky.
                let joined = match (slot, new) {
                    (old, None) => old,
                    (None, Some(n)) => Some(n),
                    (Some(o), Some(n)) => Some(o.join(n)),
                };
                if joined != slot {
                    facts[res.index()] = joined;
                    changed.push(res.index());
                }
            }
        }
        if changed.is_empty() || round >= VALUE_ROUNDS_MAX {
            break;
        }
        if round >= VALUE_ROUNDS_BEFORE_WIDEN {
            // Offsets are the only unbounded dimension; pin them on
            // still-moving values so the remaining growth (provenance
            // bits, shrinking size_min over a finite constant set) is
            // finite.
            for idx in changed {
                if let Some(fact) = &mut facts[idx] {
                    fact.off = None;
                }
            }
        }
    }
    facts
}

/// The fact for an operand in pointer position. `None` is bottom.
pub fn operand_fact(op: &Operand, facts: &[Option<PtrFact>], env: &FactEnv) -> Option<PtrFact> {
    match op {
        Operand::Val(v) => facts.get(v.index()).copied().flatten(),
        Operand::GlobalAddr(g) => Some(env.globals.get(g.index()).copied().unwrap_or(PtrFact::TOP)),
        // Null, function addresses, undef, constants: never provable.
        _ => Some(PtrFact::TOP),
    }
}

/// Transfer function for one pointer-producing instruction.
fn transfer(
    f: &Function,
    env: &FactEnv,
    summaries: &ModuleSummaries,
    facts: &[Option<PtrFact>],
    kind: &InstrKind,
) -> Option<PtrFact> {
    match kind {
        InstrKind::Alloca { ty, count } => {
            let size = count
                .as_const_int()
                .and_then(|c| u64::try_from(c).ok())
                .and_then(|c| ty.size_of().checked_mul(c))
                .unwrap_or(0);
            Some(PtrFact { prov: Provenance::STACK, off: Some((0, 0)), size_min: size })
        }
        InstrKind::Gep { elem_ty, base, indices } => {
            let base = operand_fact(base, facts, env)?;
            Some(match gep_const_offset(elem_ty, indices) {
                Some(delta) => base.shifted(delta),
                None => PtrFact { off: None, ..base },
            })
        }
        InstrKind::Phi { incoming, .. } => {
            incoming.iter().filter_map(|(_, op)| operand_fact(op, facts, env)).reduce(PtrFact::join)
        }
        InstrKind::Select { then_value, else_value, .. } => [then_value, else_value]
            .into_iter()
            .filter_map(|op| operand_fact(op, facts, env))
            .reduce(PtrFact::join),
        InstrKind::Cast { op: CastOp::Bitcast, value, from, to }
            if *from == Type::Ptr && *to == Type::Ptr =>
        {
            operand_fact(value, facts, env)
        }
        InstrKind::Call { callee, args, .. } => {
            if env.defined.contains(callee.as_str()) {
                // Defined callee: its ret summary (bottom propagates).
                summaries.fns.get(callee.as_str()).and_then(|s| s.ret)
            } else {
                match callee.as_str() {
                    "malloc" => Some(heap_fact(args.first().and_then(Operand::as_const_int))),
                    "calloc" => {
                        let n = args.first().and_then(Operand::as_const_int);
                        let m = args.get(1).and_then(Operand::as_const_int);
                        Some(heap_fact(match (n, m) {
                            (Some(a), Some(b)) => a.checked_mul(b),
                            _ => None,
                        }))
                    }
                    // Undeclared / host callee: no idea what it returns.
                    _ => Some(PtrFact::TOP),
                }
            }
        }
        // Loads, int-to-ptr, indirect calls, anything else: TOP.
        _ => {
            let _ = f;
            Some(PtrFact::TOP)
        }
    }
}

/// Fact for a fresh heap allocation of `size` bytes (`None` or
/// negative = dynamic size, no extent guarantee).
fn heap_fact(size: Option<i64>) -> PtrFact {
    let size_min = size.and_then(|s| u64::try_from(s).ok()).unwrap_or(0);
    PtrFact { prov: Provenance::HEAP, off: Some((0, 0)), size_min }
}

/// Constant byte offset of a `gep`, or `None` if any index is
/// non-constant or walks outside the aggregate. The first index scales
/// by `size_of(elem_ty)`; subsequent indices walk into the aggregate.
fn gep_const_offset(elem_ty: &Type, indices: &[Operand]) -> Option<i128> {
    let (first, rest) = indices.split_first()?;
    let mut off = first.as_const_int()? as i128 * elem_ty.size_of() as i128;
    let mut cur = elem_ty.clone();
    for idx in rest {
        let c = idx.as_const_int()?;
        match &cur {
            Type::Struct(fields) => {
                let i = usize::try_from(c).ok()?;
                if i >= fields.len() {
                    return None;
                }
                off += cur.field_offset(i) as i128;
                let next = fields[i].clone();
                cur = next;
            }
            Type::Array(elem, _) => {
                off += c as i128 * elem.size_of() as i128;
                let next = (**elem).clone();
                cur = next;
            }
            _ => return None,
        }
    }
    Some(off)
}

/// Computes whole-module pointer summaries: builds the direct call
/// graph, condenses it, seeds entry points (`main` plus every
/// address-taken function) with TOP parameters, and runs a worklist
/// fixpoint callee-first. Ret facts demote live stack to escaped
/// stack; argument facts pass down undemoted (the caller's frame is
/// live while the callee runs).
pub fn summarize(m: &Module) -> ModuleSummaries {
    let env = FactEnv::collect(m);
    let cg = call_graph(m);
    let sccs = condense(&cg);
    let n = cg.funcs.len();

    let mut address_taken: HashSet<String> = HashSet::new();
    for f in &m.functions {
        let mut note = |op: &Operand| {
            if let Operand::FuncAddr(name) = op {
                address_taken.insert(name.clone());
            }
        };
        for instr in &f.instrs {
            instr.kind.for_each_operand(&mut note);
        }
        for b in &f.blocks {
            b.term.for_each_operand(&mut note);
        }
    }

    let mut summaries = ModuleSummaries { fns: BTreeMap::new(), sccs: sccs.len() };
    for (node, &fi) in cg.funcs.iter().enumerate() {
        let f = &m.functions[fi];
        let entry = f.name == "main" || address_taken.contains(&f.name);
        let params =
            f.params.iter().map(|p| (entry && p.ty == Type::Ptr).then_some(PtrFact::TOP)).collect();
        summaries.fns.insert(cg.names[node].clone(), FnSummary { params, ret: None });
    }

    let node_of: HashMap<&str, usize> =
        cg.names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (node, callees) in cg.edges.iter().enumerate() {
        for &c in callees {
            callers[c].push(node);
        }
    }

    // Seed the worklist bottom-up (SCCs come out callees-first).
    let mut queue: VecDeque<usize> = sccs.iter().flatten().copied().collect();
    let mut queued = vec![true; n];
    let mut changes = vec![0u32; n];

    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        let f = &m.functions[cg.funcs[node]];
        let facts = value_facts(f, &env, &summaries);

        // Ret contribution (to this function's own summary).
        let mut ret_fact: Option<PtrFact> = None;
        if f.ret_ty == Type::Ptr {
            for b in &f.blocks {
                if let Terminator::Ret(Some(op)) = &b.term {
                    if let Some(fact) = operand_fact(op, &facts, &env) {
                        let fact = fact.demoted();
                        ret_fact = Some(match ret_fact {
                            None => fact,
                            Some(acc) => acc.join(fact),
                        });
                    }
                }
            }
        }

        // Argument contributions (to callee param summaries).
        let mut arg_facts: Vec<(usize, usize, PtrFact)> = Vec::new();
        for instr in &f.instrs {
            let InstrKind::Call { callee, args, .. } = &instr.kind else { continue };
            let Some(&target) = node_of.get(callee.as_str()) else { continue };
            let callee_fn = &m.functions[cg.funcs[target]];
            for (i, p) in callee_fn.params.iter().enumerate() {
                if p.ty != Type::Ptr {
                    continue;
                }
                let Some(arg) = args.get(i) else { continue };
                if let Some(fact) = operand_fact(arg, &facts, &env) {
                    arg_facts.push((target, i, fact));
                }
            }
        }

        let enqueue = |node: usize, queue: &mut VecDeque<usize>, queued: &mut Vec<bool>| {
            if !queued[node] {
                queued[node] = true;
                queue.push_back(node);
            }
        };

        if let Some(fact) = ret_fact {
            let widen = changes[node] > SUMMARY_CHANGES_BEFORE_WIDEN;
            let slot = &mut summaries.fns.get_mut(&cg.names[node]).expect("summary seeded").ret;
            if join_into(slot, fact, widen) {
                changes[node] += 1;
                for &caller in &callers[node] {
                    enqueue(caller, &mut queue, &mut queued);
                }
            }
        }
        for (target, idx, fact) in arg_facts {
            let widen = changes[target] > SUMMARY_CHANGES_BEFORE_WIDEN;
            let summary = summaries.fns.get_mut(&cg.names[target]).expect("summary seeded");
            if join_into(&mut summary.params[idx], fact, widen) {
                changes[target] += 1;
                enqueue(target, &mut queue, &mut queued);
            }
        }
    }

    summaries
}

/// Joins `fact` into `slot`; with `widen`, the stored offset is pinned
/// unbounded so repeated updates terminate. Returns `true` on change.
fn join_into(slot: &mut Option<PtrFact>, fact: PtrFact, widen: bool) -> bool {
    let mut new = match *slot {
        None => fact,
        Some(old) => old.join(fact),
    };
    if widen && Some(new) != *slot {
        new.off = None;
    }
    if Some(new) != *slot {
        *slot = Some(new);
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn parse(src: &str) -> Module {
        parse_module(src).expect("test module parses")
    }

    #[test]
    fn fact_lattice_basics() {
        let heap = PtrFact { prov: Provenance::HEAP, off: Some((0, 8)), size_min: 64 };
        let stack = PtrFact { prov: Provenance::STACK, off: Some((16, 24)), size_min: 32 };
        let j = heap.join(stack);
        assert!(j.prov.contains(Provenance::HEAP) && j.prov.contains(Provenance::STACK));
        assert_eq!(j.off, Some((0, 24)));
        assert_eq!(j.size_min, 32);
        assert!(j.proves_in_bounds(8));
        assert!(!j.proves_in_bounds(9)); // 24 + 9 > 32
        assert!(!PtrFact::TOP.proves_in_bounds(1));
        assert!(!heap.join(PtrFact::TOP).proves_in_bounds(1));
        // Exactly-at-bound is out: hi + width must fit strictly within.
        let tight = PtrFact { prov: Provenance::HEAP, off: Some((0, 56)), size_min: 64 };
        assert!(tight.proves_in_bounds(8));
        assert!(!tight.shifted(8).proves_in_bounds(8));
        // Negative offsets prove nothing.
        assert!(!heap.shifted(-16).proves_in_bounds(1));
        // Demotion swaps STACK for STACK_RET and keeps the rest.
        let d = stack.demoted();
        assert!(d.prov.contains(Provenance::STACK_RET));
        assert!(!d.prov.contains(Provenance::STACK));
        assert_eq!(heap.demoted().prov, Provenance::HEAP);
    }

    #[test]
    fn call_graph_condenses_bottom_up() {
        let m = parse(
            r#"
            define i64 @main() {
            entry:
              %a = call i64 @a()
              ret %a
            }
            define i64 @a() {
            entry:
              %b = call i64 @b()
              ret %b
            }
            define i64 @b() {
            entry:
              %c = call i64 @c()
              ret %c
            }
            define i64 @c() {
            entry:
              %b = call i64 @b()
              ret i64 0
            }
            "#,
        );
        let cg = call_graph(&m);
        assert_eq!(cg.names.len(), 4);
        let sccs = condense(&cg);
        let named: Vec<Vec<&str>> =
            sccs.iter().map(|s| s.iter().map(|&n| cg.names[n].as_str()).collect()).collect();
        // b and c are mutually recursive; callees come out first.
        assert_eq!(named.len(), 3);
        assert!(named[0] == ["b", "c"] || named[0] == ["c", "b"]);
        assert_eq!(named[1], ["a"]);
        assert_eq!(named[2], ["main"]);
    }

    #[test]
    fn param_summary_from_call_site() {
        let m = parse(
            r#"
            define i64 @main() {
            entry:
              %a = alloca [8 x i64], i64 1
              %r = call i64 @reader(%a)
              ret %r
            }
            define i64 @reader(ptr %p) {
            entry:
              %q = gep i64, %p, [i64 3]
              %v = load i64, %q
              ret %v
            }
            "#,
        );
        let s = summarize(&m);
        let reader = &s.fns["reader"];
        let p = reader.params[0].expect("param fact reached fixpoint");
        assert_eq!(p.prov, Provenance::STACK);
        assert_eq!(p.off, Some((0, 0)));
        assert_eq!(p.size_min, 64);
        // Inside reader, the gep'd pointer proves an 8-byte load.
        let env = FactEnv::collect(&m);
        let reader_fn = m.function_by_name("reader").unwrap().1;
        let facts = value_facts(reader_fn, &env, &s);
        let q = facts[reader_fn.param_value(0).index() + 1].expect("gep fact");
        assert_eq!(q.off, Some((24, 24)));
        assert!(q.proves_in_bounds(8));
        assert!(!q.proves_in_bounds(48));
    }

    #[test]
    fn param_summary_joins_all_call_sites() {
        let m = parse(
            r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %a = call ptr @malloc(i64 32)
              %b = call ptr @malloc(i64 80)
              %x = call i64 @use(%a)
              %y = call i64 @use(%b)
              ret i64 0
            }
            define i64 @use(ptr %p) {
            entry:
              %v = load i64, %p
              ret %v
            }
            "#,
        );
        let s = summarize(&m);
        let p = s.fns["use"].params[0].expect("joined fact");
        assert_eq!(p.prov, Provenance::HEAP);
        assert_eq!(p.off, Some((0, 0)));
        assert_eq!(p.size_min, 32); // weaker of the two extents
    }

    #[test]
    fn address_taken_functions_get_top_params() {
        let m = parse(
            r#"
            define i64 @main() {
            entry:
              %a = alloca i64, i64 1
              %f = bitcast @fn:helper, ptr to ptr
              %r = call i64 @helper(%a)
              ret %r
            }
            define i64 @helper(ptr %p) {
            entry:
              %v = load i64, %p
              ret %v
            }
            "#,
        );
        let s = summarize(&m);
        // The known call site would give a precise fact, but the taken
        // address means unknown callers exist: param stays TOP.
        let p = s.fns["helper"].params[0].expect("entry param seeded");
        assert!(p.prov.contains(Provenance::UNKNOWN));
        assert!(!p.proves_in_bounds(1));
    }

    #[test]
    fn ret_summary_demotes_escaping_stack() {
        let m = parse(
            r#"
            hostdecl ptr @malloc(i64)
            define ptr @make_stack() {
            entry:
              %a = alloca i64, i64 4
              ret %a
            }
            define ptr @make_heap() {
            entry:
              %p = call ptr @malloc(i64 32)
              ret %p
            }
            define i64 @main() {
            entry:
              %s = call ptr @make_stack()
              %h = call ptr @make_heap()
              %v = load i64, %h
              ret %v
            }
            "#,
        );
        let s = summarize(&m);
        let stack_ret = s.fns["make_stack"].ret.expect("ret fact");
        assert!(stack_ret.prov.contains(Provenance::STACK_RET));
        assert!(!stack_ret.prov.contains(Provenance::STACK));
        assert_eq!(stack_ret.size_min, 32);
        let heap_ret = s.fns["make_heap"].ret.expect("ret fact");
        assert_eq!(heap_ret.prov, Provenance::HEAP);
        assert_eq!(heap_ret.size_min, 32);
        // Caller facts see through the calls.
        let env = FactEnv::collect(&m);
        let main_fn = m.function_by_name("main").unwrap().1;
        let facts = value_facts(main_fn, &env, &s);
        let h = facts[1].expect("heap call fact");
        assert!(h.proves_in_bounds(8));
        let st = facts[0].expect("stack call fact");
        assert!(st.prov.contains(Provenance::STACK_RET));
    }

    #[test]
    fn recursion_converges_with_widening() {
        let m = parse(
            r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 1024)
              %r = call i64 @walk(%p, i64 0)
              ret %r
            }
            define i64 @walk(ptr %p, i64 %n) {
            entry:
              %done = icmp sgt i64, %n, i64 100
              condbr %done, exit, step
            step:
              %q = gep i64, %p, [i64 1]
              %n2 = add i64, %n, i64 1
              %r = call i64 @walk(%q, %n2)
              ret %r
            exit:
              %v = load i64, %p
              ret %v
            }
            "#,
        );
        let s = summarize(&m);
        let p = s.fns["walk"].params[0].expect("recursive param fact");
        // Offset grows unboundedly through recursion: widened away.
        assert_eq!(p.prov, Provenance::HEAP);
        assert_eq!(p.off, None);
        assert!(!p.proves_in_bounds(8));
    }

    #[test]
    fn loads_globals_and_struct_geps() {
        let m = parse(
            r#"
            global @g : [4 x i32] = zero
            global @ext : i64 = zero size_unknown
            define i64 @main() {
            entry:
              %a = alloca { i64, [2 x i32] }, i64 1
              %f = gep { i64, [2 x i32] }, %a, [i64 0, i64 1, i64 1]
              %v = load i32, %f
              %slot = alloca ptr, i64 1
              %l = load ptr, %slot
              ret i64 0
            }
            "#,
        );
        let env = FactEnv::collect(&m);
        assert_eq!(env.globals[0].prov, Provenance::GLOBAL);
        assert_eq!(env.globals[0].size_min, 16);
        assert!(env.globals[1].prov.contains(Provenance::UNKNOWN));
        assert!(!env.has_free);
        let s = summarize(&m);
        let f = m.function_by_name("main").unwrap().1;
        let facts = value_facts(f, &env, &s);
        // Struct walk: field 1 at offset 8, array elem 1 adds 4.
        let field = facts[1].expect("gep fact");
        assert_eq!(field.off, Some((12, 12)));
        assert!(field.proves_in_bounds(4));
        // Loaded pointer is TOP.
        let loaded = facts[4].expect("load fact");
        assert!(loaded.prov.contains(Provenance::UNKNOWN));
    }

    #[test]
    fn free_detection_in_env() {
        let m = parse(
            r#"
            hostdecl ptr @malloc(i64)
            hostdecl void @free(ptr)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 8)
              call void @free(%p)
              ret i64 0
            }
            "#,
        );
        assert!(FactEnv::collect(&m).has_free);
    }
}
