//! Every benchmark must execute successfully — with output identical to the
//! uninstrumented baseline — under both mechanisms (the §5.1.1 selection
//! criterion: "we evaluate only the benchmarks that execute successfully
//! with both approaches").

use cbench::{by_name, validate_benchmark};

macro_rules! validate {
    ($test:ident, $name:literal) => {
        #[test]
        fn $test() {
            let b = by_name($name).expect("benchmark exists");
            let [base, sb, lf] = validate_benchmark(&b);
            // Instrumentation must actually be doing something.
            assert!(sb.exec.stats.checks_executed > 0, "softbound ran no checks");
            assert!(lf.exec.stats.checks_executed > 0, "lowfat ran no checks");
            assert!(sb.exec.stats.cost_total > base.exec.stats.cost_total);
            assert!(lf.exec.stats.cost_total > base.exec.stats.cost_total);
        }
    };
}

validate!(gzip_164, "164gzip");
validate!(mesa_177, "177mesa");
validate!(art_179, "179art");
validate!(mcf_181, "181mcf");
validate!(equake_183, "183equake");
validate!(crafty_186, "186crafty");
validate!(ammp_188, "188ammp");
validate!(parser_197, "197parser");
validate!(bzip2_256, "256bzip2");
validate!(twolf_300, "300twolf");
validate!(bzip2_401, "401bzip2");
validate!(mcf_429, "429mcf");
validate!(milc_433, "433milc");
validate!(gobmk_445, "445gobmk");
validate!(hmmer_456, "456hmmer");
validate!(sjeng_458, "458sjeng");
validate!(libquant_462, "462libquant");
validate!(h264ref_464, "464h264ref");
validate!(lbm_470, "470lbm");
validate!(sphinx3_482, "482sphinx3");

/// The Table 2 *traits* — which benchmarks see wide-bounds checks where.
#[test]
fn table2_wide_bounds_traits() {
    use meminstrument::runtime::BuildOptions;
    use meminstrument::{Mechanism, MiConfig};

    let check = |name: &str, mech: Mechanism| -> f64 {
        let b = by_name(name).unwrap();
        let out = cbench::run(&b, &MiConfig::new(mech), BuildOptions::default()).unwrap();
        out.exec.stats.wide_check_percent()
    };

    // 164gzip: most SoftBound checks are wide (paper: 61.71 %)...
    let gzip_sb = check("164gzip", Mechanism::SoftBound);
    assert!(gzip_sb > 40.0, "gzip SB wide = {gzip_sb:.2}%");
    // ... while Low-Fat checks everything (paper: 0.00).
    let gzip_lf = check("164gzip", Mechanism::LowFat);
    assert_eq!(gzip_lf, 0.0, "gzip LF wide = {gzip_lf:.2}%");

    // 429mcf: around half of Low-Fat checks are wide (paper: ~54 %)...
    let mcf_lf = check("429mcf", Mechanism::LowFat);
    assert!((30.0..80.0).contains(&mcf_lf), "429mcf LF wide = {mcf_lf:.2}%");
    // ... while SoftBound checks everything.
    assert_eq!(check("429mcf", Mechanism::SoftBound), 0.0);

    // 433milc declares a size-less array but never uses it: exactly 0.
    assert_eq!(check("433milc", Mechanism::SoftBound), 0.0);

    // 183equake / 186crafty / 470lbm: fully checked under both.
    for name in ["183equake", "186crafty", "470lbm"] {
        assert_eq!(check(name, Mechanism::SoftBound), 0.0, "{name} SB");
        assert_eq!(check(name, Mechanism::LowFat), 0.0, "{name} LF");
    }

    // 197parser: a visible share of Low-Fat checks are wide (paper: 7.14 %),
    // and a small share of SoftBound checks (paper: 0.27 %).
    let parser_lf = check("197parser", Mechanism::LowFat);
    assert!(parser_lf > 1.0 && parser_lf < 30.0, "parser LF wide = {parser_lf:.2}%");
    let parser_sb = check("197parser", Mechanism::SoftBound);
    assert!(parser_sb > 0.0 && parser_sb < 5.0, "parser SB wide = {parser_sb:.2}%");
}
