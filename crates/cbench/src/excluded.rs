//! The benchmarks the paper *excludes* (§5.1.1) — and why.
//!
//! Seven of the 27 C benchmarks do not execute under both mechanisms. The
//! paper documents the offending pattern for each; this module models those
//! patterns as small programs so the exclusions are reproducible facts
//! rather than lore:
//!
//! * `253perlbmk`/`254gap` use *pseudo-base-one arrays* (a pointer one
//!   element **before** an array, so indexing can start at 1) — undefined
//!   behaviour that Low-Fat Pointers reject;
//! * `176gcc`/`403gcc` use NULL pointers with large offsets and
//!   out-of-bounds pointer arithmetic — rejected by both;
//! * `175vpr`/`255vortex` use out-of-bounds pointer arithmetic that only
//!   Low-Fat Pointers reject (the pointer is back in bounds before any
//!   dereference).

use crate::Benchmark;

/// An excluded benchmark: the program plus the documented expectation.
#[derive(Copy, Clone, Debug)]
pub struct ExcludedBenchmark {
    /// The modelled benchmark (paper name).
    pub benchmark: Benchmark,
    /// Expected to fail under SoftBound (paper column).
    pub softbound_rejects: bool,
    /// Expected to fail under Low-Fat Pointers (paper column).
    pub lowfat_rejects: bool,
}

/// The excluded set, with per-benchmark expectations from §5.1.1.
pub fn excluded() -> Vec<ExcludedBenchmark> {
    vec![
        ExcludedBenchmark {
            benchmark: Benchmark {
                name: "253perlbmk",
                description: "Pseudo-base-one arrays: a pointer one element before an \
                              allocation so indices start at 1. The paper: 'This undefined \
                              behavior results in violation reports from Low-Fat Pointers.' \
                              (SoftBound reports other, known violations in perl itself; \
                              the base-one pattern alone passes its dereference checks.)",
                source: PSEUDO_BASE_ONE,
                has_size_unknown_arrays: false,
            },
            softbound_rejects: false,
            lowfat_rejects: true,
        },
        ExcludedBenchmark {
            benchmark: Benchmark {
                name: "176gcc",
                description: "NULL pointers with large offsets used to access memory \
                              (cf. Kroes et al.), plus out-of-bounds pointer arithmetic: \
                              'errors are reported by Low-Fat Pointers and SoftBound.'",
                source: NULL_WITH_OFFSET,
                has_size_unknown_arrays: false,
            },
            softbound_rejects: true,
            lowfat_rejects: true,
        },
        ExcludedBenchmark {
            benchmark: Benchmark {
                name: "175vpr",
                description: "Out-of-bounds pointer arithmetic, repaired before the \
                              dereference: 'which Low-Fat Pointers, but not SoftBound, \
                              reports.'",
                source: OOB_ARITHMETIC,
                has_size_unknown_arrays: false,
            },
            softbound_rejects: false,
            lowfat_rejects: true,
        },
    ]
}

/// Perl/gap's pseudo-base-one array idiom. `consume` calls a helper so the
/// inliner leaves it alone — as for the real benchmark's translation-unit
/// boundaries.
const PSEUDO_BASE_ONE: &str = r#"
long get(long *p, long i) { return p[i]; }
long consume(long *base1, long n) {
    long s = 0;
    for (long i = 1; i <= n; i += 1) s += get(base1, i);   /* indices start at 1 */
    return s;
}
long main(void) {
    long *arr = (long*)malloc(8 * sizeof(long));
    for (long i = 0; i < 8; i += 1) arr[i] = i + 1;
    long *base1 = arr - 1;     /* one element BEFORE the allocation: UB */
    return consume(base1, 8);  /* the OOB pointer escapes here */
}
"#;

/// gcc's NULL-plus-large-offset access.
const NULL_WITH_OFFSET: &str = r#"
long main(void) {
    long *null_ptr = (long*)0;
    long *slot = null_ptr + 8192;   /* "address" 65536 via NULL arithmetic */
    *slot = 1;
    return *slot;
}
"#;

/// vpr/vortex's escape-free out-of-bounds arithmetic through a call.
const OOB_ARITHMETIC: &str = r#"
long look(long *cursor) { return cursor[-64]; }
long wrap(long *c) { return look(c); }
long main(void) {
    long *table = (long*)malloc(16 * sizeof(long));
    table[0] = 123;
    long *cursor = table + 64;     /* far out of bounds, never dereferenced */
    return wrap(cursor);           /* escapes; repaired inside look() */
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use meminstrument::runtime::BuildOptions;
    use meminstrument::{Mechanism, MiConfig};

    #[test]
    fn exclusions_reproduce_the_papers_reasons() {
        for ex in excluded() {
            let b = &ex.benchmark;
            for (mech, rejects) in [
                (Mechanism::SoftBound, ex.softbound_rejects),
                (Mechanism::LowFat, ex.lowfat_rejects),
            ] {
                let r = crate::run(b, &MiConfig::new(mech), BuildOptions::default());
                assert_eq!(
                    r.is_err(),
                    rejects,
                    "{} under {:?}: expected rejects={rejects}, got {:?}",
                    b.name,
                    mech,
                    r.as_ref().map(|o| o.exec.ret)
                );
            }
        }
    }

    #[test]
    fn pseudo_base_one_is_sound_for_softbound() {
        // The dereferences are all within the real allocation, so SoftBound
        // computes the correct sum.
        let ex = &excluded()[0];
        let out = crate::run(
            &ex.benchmark,
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        )
        .unwrap();
        assert_eq!(out.exec.ret.unwrap().as_int(), 36); // 1+2+...+8
    }

    #[test]
    fn null_offset_rejected_with_null_bounds_semantics() {
        // NULL-derived pointers carry NULL (or, with the flag, wide-but-
        // base-zero) bounds; the store is reported.
        let ex = excluded().into_iter().find(|e| e.benchmark.name == "176gcc").unwrap();
        let r = crate::run(
            &ex.benchmark,
            &MiConfig::new(Mechanism::SoftBound),
            BuildOptions::default(),
        );
        assert!(r.is_err(), "{r:?}");
    }
}
