//! Compile-and-execute helpers shared by tests and the figure harnesses.

use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{InstrStats, Mechanism, MiConfig};
use memvm::interp::{ExecOutcome, Trap};
use memvm::VmConfig;

use crate::Benchmark;

/// Result of one benchmark execution.
#[derive(Clone, Debug)]
pub struct BenchOutcome {
    /// VM outcome (return value, output, dynamic stats).
    pub exec: ExecOutcome,
    /// Static instrumentation stats (empty for baselines).
    pub instr: InstrStats,
}

/// Compiles the benchmark's C source.
///
/// # Panics
///
/// Panics on frontend errors — benchmark sources are fixtures.
pub fn frontend(b: &Benchmark) -> mir::Module {
    cfront::compile(b.source).unwrap_or_else(|e| panic!("{}: frontend error: {e}", b.name))
}

/// Runs the uninstrumented `-O3` baseline.
///
/// # Errors
///
/// Propagates VM traps (none expected for the fixtures).
pub fn run_baseline(b: &Benchmark, opts: BuildOptions) -> Result<BenchOutcome, Trap> {
    let prog = compile_baseline(frontend(b), opts);
    Ok(BenchOutcome { exec: prog.run_main(VmConfig::default())?, instr: prog.stats })
}

/// Runs the benchmark under the given instrumentation configuration.
///
/// # Errors
///
/// Propagates VM traps, including memory-safety violations.
pub fn run(b: &Benchmark, config: &MiConfig, opts: BuildOptions) -> Result<BenchOutcome, Trap> {
    let prog = compile(frontend(b), config, opts);
    Ok(BenchOutcome { exec: prog.run_main(VmConfig::default())?, instr: prog.stats })
}

/// Validation used by the test-suite: the benchmark must run to completion
/// under the baseline and under both mechanisms (paper basis configs), with
/// identical output. Returns the three outcomes (baseline, SoftBound,
/// Low-Fat).
///
/// # Panics
///
/// Panics with a diagnostic if any configuration traps or outputs diverge.
pub fn validate_benchmark(b: &Benchmark) -> [BenchOutcome; 3] {
    let opts = BuildOptions::default();
    let base = run_baseline(b, opts).unwrap_or_else(|t| panic!("{} baseline trapped: {t}", b.name));
    let sb = run(b, &MiConfig::new(Mechanism::SoftBound), opts)
        .unwrap_or_else(|t| panic!("{} softbound trapped: {t}", b.name));
    let lf = run(b, &MiConfig::new(Mechanism::LowFat), opts)
        .unwrap_or_else(|t| panic!("{} lowfat trapped: {t}", b.name));
    assert_eq!(base.exec.output, sb.exec.output, "{}: softbound output diverged", b.name);
    assert_eq!(base.exec.output, lf.exec.output, "{}: lowfat output diverged", b.name);
    assert!(!base.exec.output.is_empty(), "{}: benchmark must print a checksum", b.name);
    [base, sb, lf]
}
