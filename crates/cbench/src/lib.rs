#![warn(missing_docs)]

//! `cbench`: the benchmark suite of the reproduction.
//!
//! SPEC CPU2000/2006 are proprietary, so this crate provides one synthetic
//! mini-C program per benchmark the paper evaluates (§5.1.1), each
//! engineered to exhibit the *documented trait* that drives that
//! benchmark's behaviour in the paper's experiments:
//!
//! * `164gzip` — heavy use of size-less external array declarations
//!   (Table 2: 61.71 % wide checks under SoftBound);
//! * `183equake` — pointer loads inside the hot loop (SoftBound's trie
//!   lookups dominate, §5.2);
//! * `186crafty` — many cheap table accesses (the wider Low-Fat check
//!   dominates, §5.2);
//! * `429mcf` — one allocation larger than the largest low-fat size class
//!   (Table 2: ~54 % wide checks under Low-Fat Pointers);
//! * `300twolf`/`181mcf` — the *fixed* versions per §5.1.2 (proper pointer
//!   types, `memcpy` instead of byte-wise copies);
//! * and so on — see each benchmark's `description`.
//!
//! All programs are deterministic (a local xorshift PRNG), print a final
//! checksum, and are memory-safe, so both mechanisms must run them to
//! completion with output identical to the uninstrumented baseline.

pub mod excluded;
pub mod programs;
pub mod runner;

pub use runner::{run, run_baseline, validate_benchmark, BenchOutcome};

/// One benchmark program.
#[derive(Copy, Clone, Debug)]
pub struct Benchmark {
    /// SPEC-style name (e.g. `"183equake"`).
    pub name: &'static str,
    /// What the program computes and which paper trait it models.
    pub description: &'static str,
    /// The mini-C source.
    pub source: &'static str,
    /// Whether the paper marks it (bold/blue in Table 2) as containing
    /// size-less array declarations.
    pub has_size_unknown_arrays: bool,
}

/// All 20 benchmarks, in the paper's Table 2 order.
pub fn all() -> Vec<Benchmark> {
    programs::all()
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn twenty_benchmarks_with_unique_names() {
        let all = super::all();
        assert_eq!(all.len(), 20);
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn lookup_by_name() {
        assert!(super::by_name("183equake").is_some());
        assert!(super::by_name("999nope").is_none());
    }

    #[test]
    fn size_unknown_flags_match_table2_bold_set() {
        // The paper marks these as containing size-zero array declarations.
        for b in super::all() {
            let expect_bold = matches!(
                b.name,
                "164gzip"
                    | "197parser"
                    | "300twolf"
                    | "433milc"
                    | "445gobmk"
                    | "456hmmer"
                    | "458sjeng"
            );
            assert_eq!(b.has_size_unknown_arrays, expect_bold, "{}", b.name);
        }
    }
}
