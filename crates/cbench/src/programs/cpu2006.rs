//! SPEC CPU2006-modelled benchmarks (right column of Table 2).

use crate::Benchmark;

/// The ten CPU2006-modelled benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "401bzip2",
            description: "Move-to-front coding over heap blocks after a rotation sort; \
                          fully checkable by both mechanisms.",
            source: BZIP2_2006,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "429mcf",
            description: "Network-simplex-style sweep whose arc array exceeds the largest \
                          low-fat size class (1 GiB): the allocation falls back to the \
                          standard allocator and every access to it is unchecked under \
                          Low-Fat Pointers (Table 2: ~54 % wide).",
            source: MCF2006,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "433milc",
            description: "SU(3)-flavoured complex arithmetic over double arrays. Declares \
                          a size-less external table that the reference workload never \
                          touches — so SoftBound still reports zero wide checks (the \
                          Table 2 exception the paper calls out).",
            source: MILC,
            has_size_unknown_arrays: true,
        },
        Benchmark {
            name: "445gobmk",
            description: "Go-board flood fill counting liberties; a size-less pattern \
                          table is consulted on a minority of accesses (Table 2: 0.66 % \
                          wide under SoftBound).",
            source: GOBMK,
            has_size_unknown_arrays: true,
        },
        Benchmark {
            name: "456hmmer",
            description: "Viterbi-style dynamic programming over integer score matrices; \
                          contains a size-less declaration consulted once per run (rounds \
                          to 0.00 % but not flagged as exactly zero in Table 2).",
            source: HMMER,
            has_size_unknown_arrays: true,
        },
        Benchmark {
            name: "458sjeng",
            description: "Alpha-beta-style search with a transposition table; a size-less \
                          history table is consulted once per run (0.00 % but non-zero).",
            source: SJENG,
            has_size_unknown_arrays: true,
        },
        Benchmark {
            name: "462libquant",
            description: "Quantum register simulation: gate applications as bit flips \
                          over an amplitude array of structs; fully checkable.",
            source: LIBQUANTUM,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "464h264ref",
            description: "Sum-of-absolute-differences motion search over byte frames \
                          with block memcpys (the paper fixed two out-of-bounds accesses \
                          here; this models the fixed version).",
            source: H264REF,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "470lbm",
            description: "Lattice-Boltzmann-style streaming stencil over a large double \
                          array with double buffering; fully checkable.",
            source: LBM,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "482sphinx3",
            description: "Gaussian-mixture scoring: floating-point distance computations \
                          over feature vectors; fully checkable.",
            source: SPHINX3,
            has_size_unknown_arrays: false,
        },
    ]
}

const BZIP2_2006: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long main(void) {
    long n = 1024;
    char *data = (char*)malloc(n);
    char *mtf = (char*)malloc(n);
    char order[64];
    for (long i = 0; i < n; i += 1) data[i] = (char)(rnd() % 64);

    long checksum = 0;
    for (long round = 0; round < 5; round += 1) {
        for (long i = 0; i < 64; i += 1) order[i] = (char)i;
        for (long i = 0; i < n; i += 1) {
            long c = data[i];
            long j = 0;
            while (order[j] != c) j += 1;
            mtf[i] = (char)j;
            while (j > 0) { order[j] = order[j - 1]; j -= 1; }
            order[0] = (char)c;
        }
        for (long i = 0; i < n; i += 1) checksum += mtf[i];
        memcheck_rotate(data, n);
    }
    print_i64(checksum);
    return 0;
}

void memcheck_rotate(char *data, long n) {
    char first = data[0];
    for (long i = 0; i + 1 < n; i += 1) data[i] = data[i + 1];
    data[n - 1] = first;
}
"#;

const MCF2006: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

struct arc {
    long cost;
    long flow;
    long tail;
    long head_;
};

long main(void) {
    /* 40M arcs * 32 B = 1.25 GiB: beyond the largest low-fat class, so the
       allocation silently falls back to the standard allocator (§4.6). We
       touch it sparsely; the VM maps pages lazily. */
    long narcs = 40000000;
    struct arc *arcs = (struct arc*)malloc(narcs * sizeof(struct arc));
    long nnodes = 256;
    long *potential = (long*)malloc(nnodes * 8);
    for (long i = 0; i < nnodes; i += 1) potential[i] = rnd() % 50;

    long stride = 524287;        /* co-prime with narcs */
    long idx = 7;
    for (long i = 0; i < 2000; i += 1) {
        arcs[idx].cost = rnd() % 100;
        arcs[idx].tail = rnd() % nnodes;
        arcs[idx].head_ = rnd() % nnodes;
        arcs[idx].flow = 0;
        idx = (idx + stride) % narcs;
    }
    long improved = 0;
    idx = 7;
    for (long round = 0; round < 6; round += 1) {
        for (long i = 0; i < 2000; i += 1) {
            long red = arcs[idx].cost + potential[arcs[idx].tail] - potential[arcs[idx].head_];
            if (red < 0) {
                arcs[idx].flow += 1;
                potential[arcs[idx].head_] += 1;
                improved += 1;
            }
            idx = (idx + stride) % narcs;
        }
    }
    long psum = 0;
    for (long i = 0; i < nnodes; i += 1) psum += potential[i];
    print_i64(improved);
    print_i64(psum);
    return 0;
}
"#;

const MILC: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* Declared without size in a shared header; this workload never reads it
   (the Table 2 exception: declared but unused, so SoftBound reports 0%). */
__hidden_size double boundary_table[128];

long main(void) {
    long vol = 256;
    /* complex 2x2 matrices: 8 doubles per site */
    double *lattice = (double*)malloc(vol * 8 * 8);
    double *staple = (double*)malloc(vol * 8 * 8);
    for (long i = 0; i < vol * 8; i += 1) lattice[i] = (double)(rnd() % 200 - 100) / 100.0;

    double action = 0.0;
    for (long sweep = 0; sweep < 10; sweep += 1) {
        for (long s = 0; s < vol; s += 1) {
            long b = s * 8;
            long nb = ((s + 1) % vol) * 8;
            /* staple = this * neighbor (complex 2x2 multiply, unrolled) */
            for (long k = 0; k < 4; k += 1) {
                double ar = lattice[b + 2 * k];
                double ai = lattice[b + 2 * k + 1];
                double br = lattice[nb + 2 * k];
                double bi = lattice[nb + 2 * k + 1];
                staple[b + 2 * k] = ar * br - ai * bi;
                staple[b + 2 * k + 1] = ar * bi + ai * br;
            }
        }
        for (long i = 0; i < vol * 8; i += 1) {
            lattice[i] = lattice[i] * 0.95 + staple[i] * 0.05;
            action = action + staple[i];
        }
    }
    print_i64((long)(action * 10.0));
    return 0;
}
"#;

const GOBMK: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* Joseki pattern weights, declared without size in the original headers. */
__hidden_size long pattern_weights[128];

long board[361];
long mark[361];

long count_group(long start, long color) {
    long stack[361];
    long top = 0;
    long stones = 0;
    long liberties = 0;
    stack[top] = start;
    top += 1;
    mark[start] = 1;
    while (top > 0) {
        top -= 1;
        long pos = stack[top];
        if (board[pos] == color) {
            stones += 1;
            long row = pos / 19;
            long colm = pos % 19;
            for (long d = 0; d < 4; d += 1) {
                long nr = row;
                long nc = colm;
                if (d == 0) nr -= 1;
                if (d == 1) nr += 1;
                if (d == 2) nc -= 1;
                if (d == 3) nc += 1;
                if (nr >= 0 && nr < 19 && nc >= 0 && nc < 19) {
                    long np = nr * 19 + nc;
                    if (!mark[np]) {
                        mark[np] = 1;
                        if (board[np] == color) { stack[top] = np; top += 1; }
                        if (board[np] == 0) liberties += 1;
                    }
                }
            }
        }
    }
    long bonus = 0;
    if (stones > 0) {
        bonus = pattern_weights[(start + color) % 128]
              + pattern_weights[(start * 3 + 1) % 128]
              + pattern_weights[(liberties + 5) % 128];
    }
    return stones * 100 + liberties + bonus;
}

long main(void) {
    for (long i = 0; i < 361; i += 1) board[i] = rnd() % 3;
    long total = 0;
    for (long probe = 0; probe < 50; probe += 1) {
        for (long i = 0; i < 361; i += 1) mark[i] = 0;
        long start = rnd() % 361;
        if (board[start] != 0) total += count_group(start, board[start]);
    }
    print_i64(total);
    return 0;
}
"#;

const HMMER: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* Null-model scores from a shared header, declared without size; read once
   per run (rounds to 0.00% of checks, but not exactly zero). */
__hidden_size long null_model[32];

long max2(long a, long b) { return a > b ? a : b; }

long main(void) {
    long M = 48;     /* model length   */
    long L = 160;    /* sequence length */
    long *match = (long*)malloc((M + 1) * 8);
    long *insert = (long*)malloc((M + 1) * 8);
    long *prev_match = (long*)malloc((M + 1) * 8);
    long *emit = (long*)malloc(M * 32 * 8);
    for (long i = 0; i < M * 32; i += 1) emit[i] = rnd() % 19 - 9;
    for (long k = 0; k <= M; k += 1) { match[k] = -10000; prev_match[k] = -10000; insert[k] = -10000; }
    prev_match[0] = 0;

    long best = -10000;
    for (long i = 0; i < L; i += 1) {
        long sym = rnd() % 32;
        match[0] = 0;
        for (long k = 1; k <= M; k += 1) {
            long sc = max2(prev_match[k - 1] + 3, insert[k - 1] - 1);
            match[k] = sc + emit[(k - 1) * 32 + sym];
            insert[k] = max2(match[k] - 2, insert[k] - 1);
            if (match[k] > best) best = match[k];
        }
        for (long k = 0; k <= M; k += 1) prev_match[k] = match[k];
    }
    print_i64(best + null_model[7]);
    return 0;
}
"#;

const SJENG: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* History heuristic table declared without size; consulted once. */
__hidden_size long history[1024];

struct tt_entry {
    long key;
    long score;
    long depth;
};

struct tt_entry tt[1024];

long search(long depth, long key) {
    long slot = key & 1023;
    if (tt[slot].key == key && tt[slot].depth >= depth) return tt[slot].score;
    long score;
    if (depth == 0) {
        score = (key % 200) - 100;
    } else {
        score = -100000;
        for (long mv = 0; mv < 4; mv += 1) {
            long child = (key * 31 + mv * 17 + depth) & 0xFFFFF;
            long s = -search(depth - 1, child);
            if (s > score) score = s;
        }
    }
    tt[slot].key = key;
    tt[slot].score = score;
    tt[slot].depth = depth;
    return score;
}

long main(void) {
    long total = 0;
    for (long root = 0; root < 24; root += 1) {
        total += search(4, rnd() & 0xFFFFF);
    }
    print_i64(total + history[42]);
    return 0;
}
"#;

const LIBQUANTUM: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

struct amp {
    long state;
    double re;
    double im;
};

long main(void) {
    long width = 9;
    long size = 512;    /* 2^width basis states */
    struct amp *reg = (struct amp*)malloc(size * sizeof(struct amp));
    for (long i = 0; i < size; i += 1) {
        reg[i].state = i;
        reg[i].re = 0.0;
        reg[i].im = 0.0;
    }
    reg[0].re = 1.0;

    /* A toffoli/cnot-ish circuit: conditional bit flips over the register */
    for (long gate = 0; gate < 30; gate += 1) {
        long control = rnd() % width;
        long target = rnd() % width;
        if (control != target) {
            for (long i = 0; i < size; i += 1) {
                if ((reg[i].state >> control) & 1) {
                    reg[i].state = reg[i].state ^ (1 << target);
                }
            }
        }
        /* phase rotation on the target bit */
        for (long i = 0; i < size; i += 1) {
            if ((reg[i].state >> target) & 1) {
                double t = reg[i].re;
                reg[i].re = reg[i].re * 0.99 - reg[i].im * 0.14;
                reg[i].im = t * 0.14 + reg[i].im * 0.99;
            }
        }
    }
    long chk = 0;
    for (long i = 0; i < size; i += 1) chk += reg[i].state;
    print_i64(chk);
    print_i64((long)(reg[0].re * 1000.0));
    return 0;
}
"#;

const H264REF: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long sad16(char *a, char *b, long stride) {
    long s = 0;
    for (long y = 0; y < 4; y += 1) {
        for (long x = 0; x < 4; x += 1) {
            long d = a[y * stride + x] - b[y * stride + x];
            if (d < 0) d = -d;
            s += d;
        }
    }
    return s;
}

long main(void) {
    long w = 64;
    long h = 48;
    char *ref = (char*)malloc(w * h);
    char *cur = (char*)malloc(w * h);
    char *rec = (char*)malloc(w * h);
    for (long i = 0; i < w * h; i += 1) {
        ref[i] = (char)(rnd() % 100);
        cur[i] = (char)(rnd() % 100);
    }
    long total_sad = 0;
    for (long by = 0; by + 8 < h; by += 4) {
        for (long bx = 0; bx + 8 < w; bx += 4) {
            long best = 1000000;
            /* small diamond motion search */
            for (long dy = 0; dy < 3; dy += 1) {
                for (long dx = 0; dx < 3; dx += 1) {
                    long s = sad16(cur + by * w + bx, ref + (by + dy) * w + bx + dx, w);
                    if (s < best) best = s;
                }
            }
            total_sad += best;
            /* reconstruct: copy the best block */
            for (long y = 0; y < 4; y += 1) {
                memblockcpy(rec + (by + y) * w + bx, cur + (by + y) * w + bx, 4);
            }
        }
    }
    long chk = 0;
    for (long i = 0; i < w * h; i += 1) chk += rec[i];
    print_i64(total_sad);
    print_i64(chk);
    return 0;
}

void memblockcpy(char *dst, char *src, long n) {
    for (long i = 0; i < n; i += 1) dst[i] = src[i];
}
"#;

const LBM: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long main(void) {
    long n = 600;
    double *src = (double*)malloc((n + 2) * 8);
    double *dst = (double*)malloc((n + 2) * 8);
    for (long i = 0; i < n + 2; i += 1) src[i] = (double)(rnd() % 100) / 10.0;

    for (long step = 0; step < 60; step += 1) {
        for (long i = 1; i <= n; i += 1) {
            /* collide + stream */
            dst[i] = src[i] * 0.6 + src[i - 1] * 0.2 + src[i + 1] * 0.2;
        }
        dst[0] = dst[n];
        dst[n + 1] = dst[1];
        double *tmp = src;
        src = dst;
        dst = tmp;
    }
    double mass = 0.0;
    for (long i = 1; i <= n; i += 1) mass = mass + src[i];
    print_i64((long)(mass * 100.0));
    return 0;
}
"#;

const SPHINX3: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long main(void) {
    long dims = 16;
    long mixtures = 32;
    long frames = 60;
    double *means = (double*)malloc(mixtures * dims * 8);
    double *vars = (double*)malloc(mixtures * dims * 8);
    double *feat = (double*)malloc(dims * 8);
    for (long i = 0; i < mixtures * dims; i += 1) {
        means[i] = (double)(rnd() % 200 - 100) / 50.0;
        vars[i] = (double)(rnd() % 90 + 10) / 50.0;
    }
    double *scores = (double*)malloc(mixtures * 8);
    long best_total = 0;
    for (long f = 0; f < frames; f += 1) {
        for (long d = 0; d < dims; d += 1) feat[d] = (double)(rnd() % 200 - 100) / 50.0;
        for (long m = 0; m < mixtures; m += 1) {
            scores[m] = 0.0;
            for (long d = 0; d < dims; d += 1) {
                double diff = feat[d] - means[m * dims + d];
                scores[m] = scores[m] - diff * diff / vars[m * dims + d];
            }
        }
        long who = 0;
        for (long m = 1; m < mixtures; m += 1) {
            if (scores[m] > scores[who]) who = m;
        }
        best_total += who;
    }
    print_i64(best_total);
    return 0;
}
"#;
