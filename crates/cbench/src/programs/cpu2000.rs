//! SPEC CPU2000-modelled benchmarks (left column of Table 2).

use crate::Benchmark;

/// The ten CPU2000-modelled benchmarks.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "164gzip",
            description: "LZ77-style hash-chain matcher. Models gzip's pervasive use of \
                          size-less external array declarations (window/head/prev tables): \
                          under SoftBound most dereference checks degrade to wide bounds \
                          (Table 2: 61.71 %), while Low-Fat mirrors the definitions and \
                          checks everything.",
            source: GZIP,
            has_size_unknown_arrays: true,
        },
        Benchmark {
            name: "177mesa",
            description: "Software rasterizer filling a framebuffer. A small fraction of \
                          accesses go through an uninstrumented-library context block, \
                          which Low-Fat cannot mirror (Table 2: 1.57 % wide).",
            source: MESA,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "179art",
            description: "Adaptive-resonance-style neural network scan over double \
                          matrices; fully checkable by both mechanisms.",
            source: ART,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "181mcf",
            description: "Spanning-tree relaxation over node structs. Models the *fixed* \
                          version per §5.1.2: the parent link is a proper pointer member \
                          (the original stored it in an integer field, breaking SoftBound's \
                          metadata).",
            source: MCF2000,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "183equake",
            description: "Sparse matrix-vector kernel that loads row pointers from memory \
                          inside the hot loop: SoftBound pays a trie lookup per pointer \
                          load while Low-Fat only recomputes the base (§5.2's explanation \
                          for equake).",
            source: EQUAKE,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "186crafty",
            description: "Chess-style evaluation over small constant tables: very many \
                          cheap accesses whose witnesses are compile-time constants, so \
                          the per-check instruction count dominates — and the Low-Fat \
                          check is wider than SoftBound's (§5.2's explanation for crafty).",
            source: CRAFTY,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "188ammp",
            description: "Molecular-dynamics-style pairwise force loop over atom structs; \
                          rare reads of an uninstrumented-library parameter block give \
                          Low-Fat a small wide-bounds residue (Table 2: 0.24 %).",
            source: AMMP,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "197parser",
            description: "Tokenizer with a bump-pool allocator. Dictionary lookups go \
                          through an uninstrumented-library table (Low-Fat: 7.14 % wide) \
                          and a size-less connector table is consulted occasionally \
                          (SoftBound: 0.27 % wide). The out-of-bounds access the paper \
                          fixed is *not* reproduced here — this is the fixed version.",
            source: PARSER,
            has_size_unknown_arrays: true,
        },
        Benchmark {
            name: "256bzip2",
            description: "Counting sort plus run-length encoding over heap blocks with \
                          block `memcpy`s; fully checkable.",
            source: BZIP2_2000,
            has_size_unknown_arrays: false,
        },
        Benchmark {
            name: "300twolf",
            description: "Placement-style cell swapper. Models the *fixed* version per \
                          §5.1.2 (struct copies via memcpy, not byte-wise loops). A rare \
                          pointer round-trip through an integer gives SoftBound a small \
                          wide residue (0.37 %); some accesses to library state give \
                          Low-Fat 2.08 %.",
            source: TWOLF,
            has_size_unknown_arrays: true,
        },
    ]
}

const GZIP: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* In real gzip these are `extern uch window[];` etc. declared without a
   size: the instrumentation cannot derive bounds. */
__hidden_size char window[4096];
__hidden_size long head[256];
__hidden_size long prev[4096];

long main(void) {
    long n = 4096;
    char *input = (char*)malloc(4096);
    for (long i = 0; i < n; i += 1) input[i] = (char)(rnd() % 26 + 65);

    long matches = 0;
    long literals = 0;
    long hashsum = 0;
    for (long pos = 0; pos + 8 < n; pos += 1) {
        long c = input[pos];
        window[pos] = (char)c;
        long h = (window[pos] * 31 + window[(pos + 4091) % 4096]) % 256;
        long cand = head[h];
        prev[pos] = cand;
        head[h] = pos;
        if (cand > 0 && window[cand] == window[pos]) {
            long len = 0;
            while (len < 8 && window[cand + len] == window[pos - len + 4]) len += 1;
            matches += len + prev[cand];
        } else {
            literals += input[pos + 1] & 1;
        }
        hashsum += h;
    }
    print_i64(matches);
    print_i64(literals);
    print_i64(hashsum);
    return 0;
}
"#;

const MESA: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* The GL context lives in the (uninstrumented) library. */
__libglobal long ctx[16];

long main(void) {
    long w = 64;
    long h = 64;
    int *fb = (int*)malloc(w * h * 4);
    double *zbuf = (double*)malloc(w * h * 8);
    for (long i = 0; i < w * h; i += 1) { fb[i] = 0; zbuf[i] = 1000000.0; }

    long drawn = 0;
    for (long t = 0; t < 48; t += 1) {
        long x0 = rnd() % w;
        long y0 = rnd() % h;
        long bw = rnd() % 16 + 1;
        long bh = rnd() % 16 + 1;
        double z = (double)(rnd() % 1000);
        long color = 7 + t;
        for (long y = y0; y < y0 + bh && y < h; y += 1) {
            long shade = ctx[(y - y0) & 15];   /* library state, varying index */
            for (long x = x0; x < x0 + bw && x < w; x += 1) {
                long idx = y * w + x;
                if (shade >= 0 && zbuf[idx] > z) {
                    zbuf[idx] = z;
                    fb[idx] = (int)color;
                    drawn += 1;
                }
            }
        }
    }
    long sum = 0;
    for (long i = 0; i < w * h; i += 1) sum += fb[i];
    print_i64(drawn);
    print_i64(sum);
    return 0;
}
"#;

const ART: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long main(void) {
    long F1 = 100;
    long F2 = 24;
    double *w = (double*)malloc(F1 * F2 * 8);
    double *input = (double*)malloc(F1 * 8);
    double *y = (double*)malloc(F2 * 8);
    for (long i = 0; i < F1 * F2; i += 1) w[i] = (double)(rnd() % 100) / 100.0;

    long wins = 0;
    double total = 0.0;
    for (long pass = 0; pass < 24; pass += 1) {
        for (long i = 0; i < F1; i += 1) input[i] = (double)(rnd() % 2);
        for (long j = 0; j < F2; j += 1) {
            y[j] = 0.0;
            for (long i = 0; i < F1; i += 1) y[j] = y[j] + w[i * F2 + j] * input[i];
        }
        long best = 0;
        for (long j = 1; j < F2; j += 1) if (y[j] > y[best]) best = j;
        /* resonance: reinforce the winner */
        for (long i = 0; i < F1; i += 1) {
            w[i * F2 + best] = w[i * F2 + best] * 0.9 + input[i] * 0.1;
        }
        wins += best;
        total = total + y[best];
    }
    print_i64(wins);
    print_i64((long)total);
    return 0;
}
"#;

const MCF2000: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* Fixed per §5.1.2: `parent` is a real pointer member (the original SPEC
   code stored it in a long, wrecking SoftBound's metadata). */
struct node {
    long potential;
    long cost;
    struct node *parent;
};

long main(void) {
    long n = 600;
    struct node *nodes = (struct node*)malloc(n * sizeof(struct node));
    nodes[0].potential = 0;
    nodes[0].cost = 0;
    nodes[0].parent = (struct node*)0;
    for (long i = 1; i < n; i += 1) {
        nodes[i].cost = rnd() % 97 + 1;
        nodes[i].parent = &nodes[(rnd() % i)];
        nodes[i].potential = 0;
    }
    /* Relax potentials along parent chains until stable. */
    long changed = 1;
    long rounds = 0;
    while (changed && rounds < 40) {
        changed = 0;
        rounds += 1;
        for (long i = 1; i < n; i += 1) {
            struct node *p = nodes[i].parent;
            long want = p->potential + nodes[i].cost;
            if (nodes[i].potential != want) {
                nodes[i].potential = want;
                changed += 1;
            }
        }
    }
    long sum = 0;
    for (long i = 0; i < n; i += 1) sum += nodes[i].potential;
    print_i64(rounds);
    print_i64(sum);
    return 0;
}
"#;

const EQUAKE: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long main(void) {
    long N = 96;
    long NZ = 12;
    /* Row pointers stored in memory: every use in the hot loop re-loads a
       pointer, which costs SoftBound a trie lookup but Low-Fat only a base
       recomputation (§5.2). */
    double **rows = (double**)malloc(N * 8);
    long *col = (long*)malloc(N * NZ * 8);
    double *v = (double*)malloc(N * 8);
    double *out = (double*)malloc(N * 8);
    for (long i = 0; i < N; i += 1) {
        double *r = (double*)malloc(NZ * 8);
        for (long j = 0; j < NZ; j += 1) {
            r[j] = (double)(rnd() % 1000) / 500.0;
            col[i * NZ + j] = rnd() % N;
        }
        rows[i] = r;
        v[i] = (double)(rnd() % 100) / 10.0;
    }
    for (long iter = 0; iter < 24; iter += 1) {
        for (long i = 0; i < N; i += 1) {
            out[i] = 0.0;
            for (long j = 0; j < NZ; j += 1) {
                double *row = rows[i];           /* pointer load in hot loop */
                out[i] = out[i] + row[j] * v[col[i * NZ + j]];
            }
        }
        /* time integration feeds back */
        for (long i = 0; i < N; i += 1) v[i] = v[i] * 0.98 + out[i] * 0.01;
    }
    double total = 0.0;
    for (long i = 0; i < N; i += 1) total = total + v[i];
    print_i64((long)(total * 100.0));
    return 0;
}
"#;

const CRAFTY: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long knight_val[64];
long king_safety[64];
long center_bonus[64];
long piece_sq[64];

long main(void) {
    for (long s = 0; s < 64; s += 1) {
        knight_val[s] = (s % 8) * ((s / 8) % 8);
        king_safety[s] = 16 - (s % 16);
        center_bonus[s] = ((s % 8) - 4) * ((s / 8) - 4);
        piece_sq[s] = rnd() % 32;
    }
    long terms[4];
    terms[0] = 0; terms[1] = 0; terms[2] = 0; terms[3] = 0;
    for (long game = 0; game < 120; game += 1) {
        long occupied = rnd() % 64;
        for (long sq = 0; sq < 64; sq += 1) {
            /* Many cheap table reads with constant-global witnesses: the
               per-check cost difference between mechanisms dominates. */
            terms[0] += knight_val[sq] * 2;
            terms[1] += king_safety[(sq + occupied) % 64];
            terms[2] += center_bonus[sq ^ 7];
            terms[3] += piece_sq[(sq * 3 + 1) % 64] >> 1;
        }
    }
    long score = terms[0] + terms[1] - terms[2] + terms[3];
    print_i64(score % 1000000);
    return 0;
}
"#;

const AMMP: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

struct atom {
    double x;
    double y;
    double z;
    double fx;
};

/* Force-field parameters owned by an uninstrumented library. */
__libglobal double ff_params[8];

long main(void) {
    long n = 160;
    struct atom *atoms = (struct atom*)malloc(n * sizeof(struct atom));
    for (long i = 0; i < n; i += 1) {
        atoms[i].x = (double)(rnd() % 1000) / 100.0;
        atoms[i].y = (double)(rnd() % 1000) / 100.0;
        atoms[i].z = (double)(rnd() % 1000) / 100.0;
        atoms[i].fx = 0.0;
    }

    for (long step = 0; step < 12; step += 1) {
        double k = 0.5;
        for (long i = 0; i < n; i += 1) {
            if ((i & 15) == 0) k = ff_params[(i + step) & 7] + 0.5;  /* rare library read */
            double f = 0.0;
            for (long j = i + 1; j < i + 9 && j < n; j += 1) {
                double dx = atoms[i].x - atoms[j].x;
                double dy = atoms[i].y - atoms[j].y;
                double d2 = dx * dx + dy * dy + 0.01;
                f = f + k * dx / d2;
            }
            atoms[i].fx = atoms[i].fx + f;
        }
        for (long i = 0; i < n; i += 1) atoms[i].x = atoms[i].x + atoms[i].fx * 0.001;
    }
    double sum = 0.0;
    for (long i = 0; i < n; i += 1) sum = sum + atoms[i].fx;
    print_i64((long)(sum * 1000.0));
    return 0;
}
"#;

const PARSER: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* The dictionary ships with an uninstrumented library. */
__libglobal long dict[512];
/* Connector table declared without size in the original sources. */
__hidden_size long connectors[64];

struct tok {
    long word;
    long kind;
    struct tok *next;
};

char *pool_base;
long pool_used = 0;

char *xalloc(long size) {
    char *p = pool_base + pool_used;
    pool_used += (size + 15) / 16 * 16;
    return p;
}

long main(void) {
    pool_base = (char*)malloc(65536);
    for (long i = 0; i < 512; i += 1) dict[i] = rnd() % 97;

    long sentences = 0;
    long linked = 0;
    for (long s = 0; s < 60; s += 1) {
        pool_used = 0;
        struct tok *head = (struct tok*)0;
        long words = rnd() % 12 + 3;
        for (long wi = 0; wi < words; wi += 1) {
            struct tok *t = (struct tok*)xalloc(sizeof(struct tok));
            t->word = rnd() % 512;
            t->kind = dict[t->word] % 5;          /* library dictionary read */
            t->next = head;
            head = t;
        }
        /* Try to link adjacent tokens. */
        struct tok *cur = head;
        while (cur && cur->next) {
            long a = cur->kind;
            long b = cur->next->kind;
            if ((a + b) % 3 == 0) {
                linked += 1;
                if (linked % 17 == 0 && connectors[(a * 5 + b) % 64] == 0) linked += 1;
            }
            cur = cur->next;
        }
        long seen = 0;
        cur = head;
        while (cur) {
            seen += cur->kind + cur->word;
            cur = cur->next;
        }
        cur = head;
        while (cur) {
            if (cur->next) seen += cur->next->kind - cur->kind;
            cur = cur->next;
        }
        sentences += 1;
        linked += seen % 3;
    }
    print_i64(sentences);
    print_i64(linked);
    return 0;
}
"#;

const BZIP2_2000: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

long main(void) {
    long n = 3000;
    char *block = (char*)malloc(n);
    char *sorted = (char*)malloc(n);
    long counts[256];
    for (long i = 0; i < 256; i += 1) counts[i] = 0;
    for (long i = 0; i < n; i += 1) block[i] = (char)(rnd() % 16 + 97);

    long checksum = 0;
    for (long round = 0; round < 10; round += 1) {
        /* counting sort */
        for (long i = 0; i < 256; i += 1) counts[i] = 0;
        for (long i = 0; i < n; i += 1) counts[block[i]] += 1;
        long pos = 0;
        for (long c = 0; c < 256; c += 1) {
            for (long k = 0; k < counts[c]; k += 1) { sorted[pos] = (char)c; pos += 1; }
        }
        /* run-length encode */
        long runs = 0;
        long i = 0;
        while (i < n) {
            long j = i + 1;
            while (j < n && sorted[j] == sorted[i]) j += 1;
            runs += 1;
            checksum += (j - i) * sorted[i];
            i = j;
        }
        checksum += runs;
        /* shuffle the block a little and go again */
        for (long k = 0; k < 64; k += 1) {
            long a = rnd() % n;
            long b = rnd() % n;
            char t = block[a];
            block[a] = block[b];
            block[b] = t;
        }
    }
    print_i64(checksum);
    return 0;
}
"#;

const TWOLF: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}

/* Router configuration owned by the standard-cell library. */
__libglobal long libcfg[8];

struct cell {
    long x;
    long y;
    long width;
    struct cell *neighbor;
};

long wirelen(struct cell *cells, long n) {
    long total = 0;
    for (long i = 0; i < n; i += 1) {
        struct cell *nb = cells[i].neighbor;
        long dx = cells[i].x - nb->x;
        long dy = cells[i].y - nb->y;
        if (dx < 0) dx = -dx;
        if (dy < 0) dy = -dy;
        total += dx + dy;
        if ((i & 7) == 0) total += libcfg[i & 7];
    }
    return total;
}

long main(void) {
    long n = 120;
    struct cell *cells = (struct cell*)malloc(n * sizeof(struct cell));
    for (long i = 0; i < 8; i += 1) libcfg[i] = i % 3;
    for (long i = 0; i < n; i += 1) {
        cells[i].x = rnd() % 100;
        cells[i].y = rnd() % 100;
        cells[i].width = rnd() % 8 + 1;
        cells[i].neighbor = &cells[(i * 7 + 3) % n];
    }
    /* The §5.1.2 fix: cells are copied as whole structs (memcpy), not
       byte-by-byte — SoftBound's metadata follows the embedded pointer. */
    long best = wirelen(cells, n);
    long accepted = 0;
    for (long pass = 0; pass < 30; pass += 1) {
        long a = rnd() % n;
        long b = rnd() % n;
        struct cell tmp;
        tmp = cells[a];
        cells[a] = cells[b];
        cells[b] = tmp;
        /* legacy corner: a cell pointer round-trips through a long */
        long stash = (long)&cells[a];
        struct cell *aliased = (struct cell*)stash;
        long fix = aliased->width - cells[a].width + aliased->y - cells[a].y;
        long after = wirelen(cells, n) + fix;
        if (after <= best) {
            best = after;
            accepted += 1;
        } else {
            struct cell back;
            back = cells[a];
            cells[a] = cells[b];
            cells[b] = back;
        }
    }
    print_i64(best);
    print_i64(accepted);
    return 0;
}
"#;
