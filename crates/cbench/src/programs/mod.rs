//! The 20 benchmark programs (Table 2 order).

pub mod cpu2000;
pub mod cpu2006;

use crate::Benchmark;

/// All benchmarks in Table 2 order (CPU2000 left column, CPU2006 right).
pub fn all() -> Vec<Benchmark> {
    let mut v = cpu2000::benchmarks();
    v.extend(cpu2006::benchmarks());
    v
}

/// The deterministic xorshift-style PRNG shared by the benchmark sources
/// (embedded in each program; exposed here for tests that recompute
/// expected workloads).
pub fn prng_next(seed: &mut i64) -> i64 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*seed >> 33) & 0x7FFF_FFFF
}

/// The PRNG as mini-C source, textually included in benchmark programs.
pub const PRNG_C: &str = r#"
long __seed = 88172645463325252;
long rnd(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7FFFFFFF;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut s1 = 1;
        let mut s2 = 1;
        let a: Vec<i64> = (0..5).map(|_| prng_next(&mut s1)).collect();
        let b: Vec<i64> = (0..5).map(|_| prng_next(&mut s2)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0..1 << 31).contains(&x)));
    }

    #[test]
    fn all_sources_compile_and_verify() {
        for b in all() {
            let m = cfront::compile(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            mir::verifier::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }
}
