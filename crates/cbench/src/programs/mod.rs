//! The 20 benchmark programs (Table 2 order).

pub mod cpu2000;
pub mod cpu2006;

use crate::Benchmark;

/// All benchmarks in Table 2 order (CPU2000 left column, CPU2006 right).
pub fn all() -> Vec<Benchmark> {
    let mut v = cpu2000::benchmarks();
    v.extend(cpu2006::benchmarks());
    v
}

/// The deterministic PRNG shared by the benchmark sources (embedded in
/// each program; the host-side mirror lives in [`testutil`] so every
/// randomized harness in the workspace shares one implementation).
pub use testutil::minic_prng_next as prng_next;

/// The PRNG as mini-C source, textually included in benchmark programs.
pub use testutil::MINIC_PRNG_C as PRNG_C;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_is_deterministic() {
        let mut s1 = 1;
        let mut s2 = 1;
        let a: Vec<i64> = (0..5).map(|_| prng_next(&mut s1)).collect();
        let b: Vec<i64> = (0..5).map(|_| prng_next(&mut s2)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (0..1 << 31).contains(&x)));
    }

    #[test]
    fn all_sources_compile_and_verify() {
        for b in all() {
            let m = cfront::compile(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            mir::verifier::verify_module(&m).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }
}
