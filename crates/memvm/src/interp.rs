//! The IR interpreter.

use std::collections::HashMap;
use std::fmt;

use mir::ids::{BlockId, FuncId};
use mir::instr::{BinOp, CastOp, FcmpPred, IcmpPred, InstrKind, Operand, Terminator};
use mir::module::{Global, Init, Module};
use mir::types::Type;

use crate::bytecode::{self, BcModule, VmBackend};
use crate::cost::CostModel;
use crate::host::{default_registry, HostCtx, HostRegistry};
use crate::layout::{FUNC_BASE, GLOBAL_BASE, STACK_BASE};
use crate::memory::{Fault, Memory};
use crate::metrics::{classify_host, OpClass, OpMetrics};
use crate::profiler::FlameSampler;
use crate::stats::{SiteProfile, VmStats};
use crate::value::RtVal;

/// Reasons an execution stops abnormally.
#[derive(Clone, PartialEq, Debug)]
pub enum Trap {
    /// A memory-safety instrumentation detected (or believed to detect) a
    /// violation and aborted the program.
    MemSafetyViolation {
        /// Mechanism that reported ("softbound", "lowfat").
        mechanism: String,
        /// Violation class ("deref-check", "invariant", "wrapper-check", ...).
        kind: String,
        /// The offending pointer value.
        addr: u64,
        /// Human-readable detail.
        detail: String,
        /// Function that was executing (filled by the interpreter via
        /// [`Trap::with_frame`]; `None` before annotation).
        func: Option<String>,
        /// Source line of the faulting instruction, if known.
        line: Option<u32>,
    },
    /// Hardware-level fault: access to an unmapped page.
    UnmappedAccess {
        /// Faulting address.
        addr: u64,
        /// Access width.
        width: u64,
        /// Whether it was a write.
        write: bool,
        /// Function that was executing (filled by the interpreter via
        /// [`Trap::with_frame`]; `None` before annotation).
        func: Option<String>,
        /// Source line of the faulting instruction, if known.
        line: Option<u32>,
    },
    /// Integer division by zero.
    DivByZero,
    /// The configured cost budget was exhausted (runaway loop guard).
    CostLimit,
    /// The call-depth limit was exceeded (C stack overflow).
    StackOverflow,
    /// Call to a function that is neither defined nor a host function.
    UnknownFunction(String),
    /// Indirect call through a value that is not a function address.
    BadIndirectCall(u64),
    /// `abort()` or a runtime-library abort.
    Abort(String),
    /// Instruction or type combination the VM does not support.
    Unsupported(String),
    /// The wall-clock deadline installed via [`Vm::set_deadline`] passed.
    /// Raised at the next budget poll, not between arbitrary instructions,
    /// so a run without a deadline is bit-for-bit unaffected.
    DeadlineExceeded,
    /// The interrupt flag installed via [`Vm::set_interrupt`] was raised
    /// (cooperative cancellation from another thread).
    Interrupted,
}

impl Trap {
    /// Annotates a memory trap with the frame it escaped from: the executing
    /// function's name and the source line of the faulting instruction.
    ///
    /// Only [`Trap::MemSafetyViolation`] and [`Trap::UnmappedAccess`] carry
    /// provenance; other traps pass through unchanged. Already-set fields
    /// are kept, so the innermost annotated frame wins when a trap unwinds
    /// through nested calls.
    #[must_use]
    pub fn with_frame(self, func_name: &str, src_line: Option<u32>) -> Trap {
        match self {
            Trap::MemSafetyViolation { mechanism, kind, addr, detail, func, line } => {
                Trap::MemSafetyViolation {
                    mechanism,
                    kind,
                    addr,
                    detail,
                    func: func.or_else(|| Some(func_name.to_string())),
                    line: line.or(src_line),
                }
            }
            Trap::UnmappedAccess { addr, width, write, func, line } => Trap::UnmappedAccess {
                addr,
                width,
                write,
                func: func.or_else(|| Some(func_name.to_string())),
                line: line.or(src_line),
            },
            other => other,
        }
    }
}

/// Formats the `in @func (line N)` provenance suffix shared by the two
/// memory traps. Empty when nothing is known.
fn frame_suffix(func: &Option<String>, line: &Option<u32>) -> String {
    match (func, line) {
        (Some(fname), Some(l)) => format!(" in @{fname} (line {l})"),
        (Some(fname), None) => format!(" in @{fname}"),
        (None, Some(l)) => format!(" (line {l})"),
        (None, None) => String::new(),
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::MemSafetyViolation { mechanism, kind, addr, detail, func, line } => {
                let at = frame_suffix(func, line);
                write!(f, "{mechanism}: {kind} violation at 0x{addr:x}{at}: {detail}")
            }
            Trap::UnmappedAccess { addr, width, write, func, line } => {
                let rw = if *write { "write" } else { "read" };
                let at = frame_suffix(func, line);
                write!(f, "segmentation fault: {width}-byte {rw} at unmapped 0x{addr:x}{at}")
            }
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::CostLimit => write!(f, "cost budget exhausted"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
            Trap::UnknownFunction(n) => write!(f, "call to unknown function @{n}"),
            Trap::BadIndirectCall(a) => write!(f, "indirect call through non-function 0x{a:x}"),
            Trap::Abort(msg) => write!(f, "aborted: {msg}"),
            Trap::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Trap::DeadlineExceeded => write!(f, "deadline exceeded"),
            Trap::Interrupted => write!(f, "interrupted"),
        }
    }
}

impl std::error::Error for Trap {}

/// Result of a completed execution.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecOutcome {
    /// Return value of the entry function (if non-void).
    pub ret: Option<RtVal>,
    /// Statistics collected during the run.
    pub stats: VmStats,
    /// Lines printed by the program.
    pub output: Vec<String>,
    /// Per-check-site dynamic counters collected during the run (empty when
    /// the program carries no instrumented check sites).
    pub profile: SiteProfile,
}

/// VM configuration.
#[derive(Copy, Clone, Debug)]
pub struct VmConfig {
    /// The cost model.
    pub cost: CostModel,
    /// Hard cost budget (guards against runaway loops in tests).
    pub max_cost: u64,
    /// Maximum interpreter call depth (guards the host stack against
    /// runaway recursion, like a real C stack limit). Interpreter frames
    /// are large in unoptimized builds, so the default is sized for the
    /// 2 MiB test-thread stack under *debug* profiles; raise it (with a
    /// bigger thread stack) for deeply recursive programs.
    pub max_call_depth: u32,
    /// Which execution engine [`Vm::run`] uses. Both engines produce
    /// byte-identical results; the bytecode backend (default) is faster,
    /// the tree-walker is the reference semantics.
    pub backend: VmBackend,
    /// Cost units between flamegraph samples; `0` (the default) disables
    /// the sampling profiler. Because sampling is clocked by charged cost
    /// — not wall time — the resulting profile is deterministic and
    /// identical across backends.
    pub sample_interval: u64,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            cost: CostModel::default(),
            max_cost: 200_000_000_000,
            max_call_depth: 160,
            backend: VmBackend::default(),
            sample_interval: 0,
        }
    }
}

/// Decides where globals live in memory.
///
/// The Low-Fat runtime implements this to mirror instrumented globals into
/// the matching size-class region ("add section marker / mirror / replace"
/// in Table 1 of the paper).
pub trait GlobalPlacer {
    /// Returns the address for `g`, or `None` to place it in the default
    /// global area. The implementation must map the memory itself when
    /// returning `Some`.
    fn place(&mut self, mem: &mut Memory, g: &Global) -> Option<u64>;
}

/// Placer that always uses the default area.
#[derive(Debug, Default)]
pub struct DefaultPlacer;

impl GlobalPlacer for DefaultPlacer {
    fn place(&mut self, _mem: &mut Memory, _g: &Global) -> Option<u64> {
        None
    }
}

/// The virtual machine.
pub struct Vm {
    pub(crate) module: std::rc::Rc<Module>,
    pub(crate) config: VmConfig,
    pub(crate) registry: HostRegistry,
    pub(crate) mem: Memory,
    pub(crate) stats: VmStats,
    pub(crate) out: Vec<String>,
    pub(crate) profile: SiteProfile,
    pub(crate) global_addrs: Vec<u64>,
    pub(crate) addr_to_func: HashMap<u64, FuncId>,
    pub(crate) func_to_addr: HashMap<String, u64>,
    pub(crate) stack_ptr: u64,
    pub(crate) call_depth: u32,
    /// Compiled bytecode, cached with the registry version it was resolved
    /// against (installing a runtime library invalidates it).
    pub(crate) code: Option<(u64, std::rc::Rc<BcModule>)>,
    /// Retired bytecode register frames, recycled across calls so the
    /// dispatch loop does not pay an allocation per function invocation.
    pub(crate) frame_pool: Vec<Vec<RtVal>>,
    /// Shared phi-move buffer for the bytecode backend's edge moves. Only
    /// live inside a single `run_edge` application (no call can intervene),
    /// so one buffer serves every recursion depth.
    pub(crate) phi_scratch: Vec<(u32, RtVal)>,
    /// Per-opcode-class execute counts and attributed cost. Lives on the
    /// `Vm` (not in [`VmStats`]) so it survives trapped runs and stays out
    /// of the outcome-equality contract.
    pub(crate) op_metrics: OpMetrics,
    /// Cost-driven sampling profiler; present only when
    /// [`VmConfig::sample_interval`] is non-zero.
    pub(crate) sampler: Option<FlameSampler>,
    /// Cost total at which the next flamegraph sample is due; `u64::MAX`
    /// when sampling is off. Kept as a bare field (not inside the sampler)
    /// so the per-charge hot path is one compare with no `Option` walk.
    pub(crate) flame_next_at: u64,
    /// Sampler frame ids pre-interned per bytecode function index
    /// (`u32::MAX` for declarations), so the bytecode call path never
    /// hashes a name. Rebuilt alongside the bytecode cache.
    pub(crate) flame_fn_ids: Vec<u32>,
    /// Sampler frame ids pre-interned per bytecode host-pool entry.
    pub(crate) flame_host_ids: Vec<u32>,
    /// Wall-clock deadline for the current run (see [`Vm::set_deadline`]);
    /// checked only at budget polls, never on the per-charge hot path.
    pub(crate) deadline: Option<std::time::Instant>,
    /// Cooperative cancellation flag (see [`Vm::set_interrupt`]), raised
    /// from another thread and observed at budget polls.
    pub(crate) interrupt: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Cost total at which the next deadline/interrupt poll is due;
    /// `u64::MAX` when neither is installed. Same next-boundary cursor
    /// pattern as `flame_next_at`: the per-charge hot path stays one `u64`
    /// compare, and all the `Instant::now()`/atomic-load work lives behind
    /// it in the cold [`Vm::poll_budget`].
    pub(crate) poll_next_at: u64,
}

/// Cost units between deadline/interrupt polls. Small enough that a
/// runaway loop is caught within a fraction of a second, large enough
/// that `Instant::now()` never shows up in a profile.
const POLL_STRIDE: u64 = 1_000_000;

impl Vm {
    /// Loads `module` with the default global placement and host registry.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if loading fails (it currently never does, but the
    /// signature leaves room for load-time validation).
    pub fn new(module: Module, config: VmConfig) -> Result<Vm, Trap> {
        Vm::with_placer(module, config, &mut DefaultPlacer)
    }

    /// Loads `module`, consulting `placer` for every global variable.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if loading fails.
    pub fn with_placer(
        module: Module,
        config: VmConfig,
        placer: &mut dyn GlobalPlacer,
    ) -> Result<Vm, Trap> {
        let registry = default_registry(&config.cost);
        let mut mem = Memory::new();

        // Place globals.
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        let mut next_global = GLOBAL_BASE;
        for g in &module.globals {
            let addr = match placer.place(&mut mem, g) {
                Some(a) => a,
                None => {
                    let align = g.ty.align_of().max(8);
                    let a = (next_global + align - 1) & !(align - 1);
                    let size = g.size().max(1);
                    mem.map(a, size);
                    next_global = a + size;
                    a
                }
            };
            if let Init::Bytes(bytes) = &g.init {
                mem.write(addr, bytes).map_err(|f| Trap::UnmappedAccess {
                    addr: f.addr,
                    width: f.width,
                    write: true,
                    func: None,
                    line: None,
                })?;
            }
            global_addrs.push(addr);
        }

        // Assign fake addresses to functions for indirect calls.
        let mut addr_to_func = HashMap::new();
        let mut func_to_addr = HashMap::new();
        for (i, f) in module.functions.iter().enumerate() {
            let addr = FUNC_BASE + (i as u64 + 1) * 16;
            addr_to_func.insert(addr, FuncId::new(i));
            func_to_addr.insert(f.name.clone(), addr);
        }

        Ok(Vm {
            module: std::rc::Rc::new(module),
            config,
            registry,
            mem,
            stats: VmStats::default(),
            out: Vec::new(),
            profile: SiteProfile::new(),
            global_addrs,
            addr_to_func,
            func_to_addr,
            stack_ptr: STACK_BASE,
            call_depth: 0,
            code: None,
            frame_pool: Vec::new(),
            phi_scratch: Vec::new(),
            op_metrics: OpMetrics::new(),
            sampler: match config.sample_interval {
                0 => None,
                n => Some(FlameSampler::new(n)),
            },
            flame_next_at: match config.sample_interval {
                0 => u64::MAX,
                n => n,
            },
            flame_fn_ids: Vec::new(),
            flame_host_ids: Vec::new(),
            deadline: None,
            interrupt: None,
            poll_next_at: u64::MAX,
        })
    }

    /// Installs a wall-clock deadline: execution traps with
    /// [`Trap::DeadlineExceeded`] at the first budget poll after `deadline`
    /// passes. Polls are clocked by charged cost (every [`POLL_STRIDE`]
    /// units), so runs that never reach a poll are unaffected.
    pub fn set_deadline(&mut self, deadline: std::time::Instant) {
        self.deadline = Some(deadline);
        self.poll_next_at = self.stats.cost_total.saturating_add(POLL_STRIDE);
    }

    /// Installs a cooperative cancellation flag: when another thread stores
    /// `true`, execution traps with [`Trap::Interrupted`] at the next
    /// budget poll.
    pub fn set_interrupt(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.interrupt = Some(flag);
        self.poll_next_at = self.stats.cost_total.saturating_add(POLL_STRIDE);
    }

    /// Mutable access to the host registry (to install runtime libraries).
    pub fn registry_mut(&mut self) -> &mut HostRegistry {
        &mut self.registry
    }

    /// The loaded module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Per-check-site profile collected so far.
    pub fn profile(&self) -> &SiteProfile {
        &self.profile
    }

    /// Program output so far.
    pub fn output(&self) -> &[String] {
        &self.out
    }

    /// Memory (for white-box tests and runtime setup).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Memory (read-only, for counter snapshots).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Per-opcode-class execute counts and attributed cost collected so
    /// far. The costs sum exactly to [`VmStats::cost_total`].
    pub fn op_metrics(&self) -> &OpMetrics {
        &self.op_metrics
    }

    /// The folded stacks accumulated by the sampling profiler, or `None`
    /// when [`VmConfig::sample_interval`] is zero. Materialized on demand:
    /// the sampler keeps stacks in a compact interned form while running.
    pub fn flame(&self) -> Option<telemetry::FoldedStacks> {
        self.sampler.as_ref().map(|s| s.folded())
    }

    /// Address of a global by name.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        self.module.global_by_name(name).map(|(gid, _)| self.global_addrs[gid.index()])
    }

    /// Runs function `name` with `args` to completion.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that ended execution, if any.
    pub fn run(&mut self, name: &str, args: &[RtVal]) -> Result<ExecOutcome, Trap> {
        let fid = match self.module.function_by_name(name) {
            Some((fid, f)) if !f.is_declaration => fid,
            _ => return Err(Trap::UnknownFunction(name.to_string())),
        };
        let ret = match self.config.backend {
            VmBackend::Walk => self.exec_function(fid, args.to_vec(), None)?,
            VmBackend::Bytecode => {
                let code = self.bytecode();
                self.exec_bc(&code, fid.index(), args.to_vec(), None)?
            }
        };
        self.stats.mapped_bytes = self.mem.mapped_bytes();
        Ok(ExecOutcome {
            ret,
            stats: self.stats.clone(),
            output: self.out.clone(),
            profile: self.profile.clone(),
        })
    }

    /// Performs any ahead-of-execution work the configured backend needs
    /// (compiling to bytecode); a no-op for the walker. [`Vm::run`] does
    /// this lazily — calling it explicitly lets drivers time compilation
    /// separately from execution.
    pub fn prepare(&mut self) {
        if self.config.backend == VmBackend::Bytecode {
            let _ = self.bytecode();
        }
    }

    /// The module compiled to bytecode against the current VM state (placed
    /// globals, host registry, cost model). Compiled once and cached; the
    /// cache is invalidated when the registry changes.
    pub fn bytecode(&mut self) -> std::rc::Rc<BcModule> {
        let version = self.registry.version();
        if let Some((v, code)) = &self.code {
            if *v == version {
                return std::rc::Rc::clone(code);
            }
        }
        let code = std::rc::Rc::new(bytecode::compile(
            &self.module,
            &self.registry,
            &self.config.cost,
            &self.global_addrs,
            &self.func_to_addr,
        ));
        self.code = Some((version, std::rc::Rc::clone(&code)));
        if let Some(s) = &mut self.sampler {
            // Pre-intern every callee name so the bytecode call path pushes
            // frames by id without hashing. Declarations keep a sentinel;
            // they have no body to execute under.
            self.flame_fn_ids = code
                .funcs
                .iter()
                .map(|f| f.as_ref().map_or(u32::MAX, |f| s.intern(&f.name)))
                .collect();
            self.flame_host_ids = code.host_names.iter().map(|n| s.intern(n)).collect();
        }
        code
    }

    /// A host-free, thread-shareable snapshot of the compiled bytecode
    /// (compiling it first if needed). See [`Vm::adopt_bytecode`].
    pub fn bytecode_image(&mut self) -> bytecode::BcImage {
        self.bytecode().image()
    }

    /// Installs a pre-compiled bytecode image instead of compiling the
    /// loaded module, re-resolving the image's host-pool entries against
    /// this VM's registry. The image must come from a VM with the same
    /// module, runtime setup, and cost model — then execution is
    /// bit-for-bit identical to compiling locally (the artifact-store
    /// tests in `bench`/`serve` hold this equal).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first host function this VM's registry
    /// does not provide. The VM is left unchanged on error; callers fall
    /// back to [`Vm::prepare`].
    pub fn adopt_bytecode(&mut self, image: &bytecode::BcImage) -> Result<(), String> {
        let code = std::rc::Rc::new(image.resolve(&self.registry)?);
        self.code = Some((self.registry.version(), std::rc::Rc::clone(&code)));
        if let Some(s) = &mut self.sampler {
            self.flame_fn_ids = code
                .funcs
                .iter()
                .map(|f| f.as_ref().map_or(u32::MAX, |f| s.intern(&f.name)))
                .collect();
            self.flame_host_ids = code.host_names.iter().map(|n| s.intern(n)).collect();
        }
        Ok(())
    }

    /// Charges `cost` application-cost units attributed to `class`, takes
    /// any flamegraph samples now due, and enforces the cost budget.
    #[inline]
    pub(crate) fn charge_app(&mut self, class: OpClass, cost: u64) -> Result<(), Trap> {
        self.stats.cost_total += cost;
        self.stats.cost_app += cost;
        self.op_metrics.record(class, cost);
        if self.stats.cost_total >= self.flame_next_at {
            self.flame_sample();
        }
        if self.stats.cost_total >= self.poll_next_at {
            self.poll_budget()?;
        }
        if self.stats.cost_total > self.config.max_cost {
            return Err(Trap::CostLimit);
        }
        Ok(())
    }

    /// The cold half of the deadline/interrupt check: only reachable when a
    /// deadline or interrupt flag is installed (`poll_next_at` is
    /// `u64::MAX` otherwise). Advances the poll cursor by [`POLL_STRIDE`].
    #[cold]
    #[inline(never)]
    pub(crate) fn poll_budget(&mut self) -> Result<(), Trap> {
        if let Some(flag) = &self.interrupt {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(Trap::Interrupted);
            }
        }
        if let Some(d) = self.deadline {
            if std::time::Instant::now() >= d {
                return Err(Trap::DeadlineExceeded);
            }
        }
        self.poll_next_at = self.stats.cost_total.saturating_add(POLL_STRIDE);
        Ok(())
    }

    /// The cold half of the sampling check: records every flamegraph sample
    /// now due and advances the boundary cursor. Only reachable when a
    /// sampler is configured (`flame_next_at` is `u64::MAX` otherwise).
    #[cold]
    #[inline(never)]
    pub(crate) fn flame_sample(&mut self) {
        let s = self.sampler.as_mut().expect("finite flame_next_at implies a sampler");
        self.flame_next_at = s.sample_until(self.flame_next_at, self.stats.cost_total);
    }

    fn exec_function(
        &mut self,
        fid: FuncId,
        args: Vec<RtVal>,
        loc: Option<u32>,
    ) -> Result<Option<RtVal>, Trap> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        self.call_depth += 1;
        if let Some(s) = &mut self.sampler {
            s.push(&self.module.functions[fid.index()].name, loc);
        }
        let saved_sp = self.stack_ptr;
        let result = self.exec_function_inner(fid, args);
        self.stack_ptr = saved_sp;
        self.call_depth -= 1;
        if let Some(s) = &mut self.sampler {
            s.pop();
        }
        result
    }

    /// Executes the phi cluster at the head of `cur` (simultaneous
    /// assignment semantics); returns the index of the first non-phi
    /// instruction. Split out of the interpreter loop to keep the
    /// per-recursion stack frame small.
    #[inline(never)]
    fn exec_phis(
        &mut self,
        fid: FuncId,
        cur: BlockId,
        prev: Option<BlockId>,
        frame: &mut [Option<RtVal>],
    ) -> Result<usize, Trap> {
        let module = std::rc::Rc::clone(&self.module);
        let func = &module.functions[fid.index()];
        let block = &func.blocks[cur.index()];
        let mut phi_updates: Vec<(usize, RtVal)> = Vec::new();
        let mut first_non_phi = 0;
        for (pos, &iid) in block.instrs.iter().enumerate() {
            let instr = &func.instrs[iid.index()];
            if let InstrKind::Phi { ty, incoming } = &instr.kind {
                let p = prev.expect("phi in entry block");
                let op = incoming
                    .iter()
                    .find(|(b, _)| *b == p)
                    .map(|(_, op)| op.clone())
                    .ok_or_else(|| {
                        Trap::Unsupported(format!("phi without incoming for {p} in @{}", func.name))
                    })?;
                let v = self.eval(fid, frame, &op, ty)?;
                let result = instr.result.expect("phi result");
                phi_updates.push((result.index(), v));
                first_non_phi = pos + 1;
            } else {
                break;
            }
        }
        for (idx, v) in phi_updates {
            frame[idx] = Some(v);
        }
        Ok(first_non_phi)
    }

    fn exec_function_inner(
        &mut self,
        fid: FuncId,
        args: Vec<RtVal>,
    ) -> Result<Option<RtVal>, Trap> {
        let module = std::rc::Rc::clone(&self.module);
        let func = &module.functions[fid.index()];
        debug_assert!(!func.is_declaration);
        let nvalues = func.values.len();
        let mut frame: Vec<Option<RtVal>> = vec![None; nvalues];
        for (i, a) in args.into_iter().enumerate() {
            frame[i] = Some(a);
        }

        let mut cur = BlockId::new(0);
        let mut prev: Option<BlockId> = None;
        loop {
            // Phase 1: evaluate all phis of this block against the old frame.
            let first_non_phi = self.exec_phis(fid, cur, prev, &mut frame)?;

            // Phase 2: the rest of the block.
            let block = &module.functions[fid.index()].blocks[cur.index()];
            for pos in first_non_phi..block.instrs.len() {
                let iid = block.instrs[pos];
                let instr = &module.functions[fid.index()].instrs[iid.index()];
                self.stats.instrs_executed += 1;
                let loc = instr.loc.map(|l| l.line);
                let value = self
                    .exec_instr(fid, &mut frame, &instr.kind, loc)
                    .map_err(|t| t.with_frame(&module.functions[fid.index()].name, loc))?;
                if let (Some(result), Some(v)) = (instr.result, value) {
                    frame[result.index()] = Some(v);
                }
            }

            // Terminator.
            match &block.term {
                Terminator::Ret(op) => {
                    self.charge_app(OpClass::Ret, self.config.cost.ret)?;
                    return match op {
                        None => Ok(None),
                        Some(op) => {
                            let ty = &module.functions[fid.index()].ret_ty;
                            Ok(Some(self.eval(fid, &frame, op, ty)?))
                        }
                    };
                }
                Terminator::Br(b) => {
                    self.charge_app(OpClass::Br, self.config.cost.br)?;
                    prev = Some(cur);
                    cur = *b;
                }
                Terminator::CondBr { cond, then_bb, else_bb } => {
                    self.charge_app(OpClass::CondBr, self.config.cost.condbr)?;
                    let c = self.eval(fid, &frame, cond, &Type::I1)?.as_int();
                    prev = Some(cur);
                    cur = if c & 1 != 0 { *then_bb } else { *else_bb };
                }
                Terminator::Unreachable => {
                    return Err(Trap::Unsupported("executed unreachable".into()));
                }
            }
        }
    }

    /// Evaluates an operand in the context of a frame.
    fn eval(
        &self,
        fid: FuncId,
        frame: &[Option<RtVal>],
        op: &Operand,
        ty_hint: &Type,
    ) -> Result<RtVal, Trap> {
        Ok(match op {
            Operand::Val(v) => frame[v.index()].unwrap_or_else(|| {
                // SSA guarantees definition; undef-initialized phi paths can
                // still observe None — treat as zero like LLVM's undef.
                let _ = fid;
                zero_of(ty_hint)
            }),
            Operand::ConstInt { ty, value } => RtVal::Int(*value as u64).truncated(ty),
            Operand::ConstFloat(f) => RtVal::Float(*f),
            Operand::Null => RtVal::Int(0),
            Operand::GlobalAddr(g) => RtVal::Int(self.global_addrs[g.index()]),
            Operand::FuncAddr(name) => RtVal::Int(
                *self.func_to_addr.get(name).ok_or_else(|| Trap::UnknownFunction(name.clone()))?,
            ),
            Operand::Undef(ty) => zero_of(ty),
        })
    }

    pub(crate) fn mem_err(f: Fault) -> Trap {
        Trap::UnmappedAccess {
            addr: f.addr,
            width: f.width,
            write: f.write,
            func: None,
            line: None,
        }
    }

    /// Executes one instruction. Calls are handled here (so that the
    /// recursion path holds only small Rust frames); everything else is
    /// delegated to [`Self::exec_data_instr`], whose large match would
    /// otherwise dominate per-recursion stack usage in debug builds.
    fn exec_instr(
        &mut self,
        fid: FuncId,
        frame: &mut [Option<RtVal>],
        kind: &InstrKind,
        loc: Option<u32>,
    ) -> Result<Option<RtVal>, Trap> {
        match kind {
            InstrKind::Call { callee, args, ret } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    let ty = self.module.functions[fid.index()].operand_type(a);
                    argv.push(self.eval(fid, frame, a, &ty)?);
                }
                self.dispatch_call(callee, argv, ret, loc)
            }
            InstrKind::CallIndirect { callee, args, ret } => {
                let target = self.eval(fid, frame, callee, &Type::Ptr)?.as_int();
                let callee_fid =
                    *self.addr_to_func.get(&target).ok_or(Trap::BadIndirectCall(target))?;
                let name = self.module.functions[callee_fid.index()].name.clone();
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    let ty = self.module.functions[fid.index()].operand_type(a);
                    argv.push(self.eval(fid, frame, a, &ty)?);
                }
                self.dispatch_call(&name, argv, ret, loc)
            }
            other => self.exec_data_instr(fid, frame, other),
        }
    }

    #[inline(never)]
    fn exec_data_instr(
        &mut self,
        fid: FuncId,
        frame: &mut [Option<RtVal>],
        kind: &InstrKind,
    ) -> Result<Option<RtVal>, Trap> {
        let cost = &self.config.cost;
        match kind {
            InstrKind::Alloca { ty, count } => {
                self.charge_app(OpClass::Alloca, cost.alloca)?;
                let n = self.eval(fid, frame, count, &Type::I64)?.as_int();
                let size = (ty.size_of().max(1)).saturating_mul(n.max(1));
                let addr = (self.stack_ptr + 15) & !15;
                self.stack_ptr = addr + size;
                self.mem.map(addr, size);
                Ok(Some(RtVal::Int(addr)))
            }
            InstrKind::Load { ty, ptr } => {
                self.charge_app(OpClass::Load, cost.load)?;
                let addr = self.eval(fid, frame, ptr, &Type::Ptr)?.as_int();
                let width = scalar_width(ty)?;
                let bits = self.mem.read_uint(addr, width).map_err(Self::mem_err)?;
                Ok(Some(RtVal::from_bits(ty, bits).truncated_if_int(ty)))
            }
            InstrKind::Store { ty, value, ptr } => {
                self.charge_app(OpClass::Store, cost.store)?;
                let addr = self.eval(fid, frame, ptr, &Type::Ptr)?.as_int();
                let v = self.eval(fid, frame, value, ty)?;
                let width = scalar_width(ty)?;
                self.mem.write_uint(addr, width, v.to_bits()).map_err(Self::mem_err)?;
                Ok(None)
            }
            InstrKind::Gep { elem_ty, base, indices } => {
                self.charge_app(OpClass::Gep, cost.gep)?;
                let mut addr = self.eval(fid, frame, base, &Type::Ptr)?.as_int();
                let mut cur_ty = elem_ty.clone();
                for (i, idx) in indices.iter().enumerate() {
                    let idx_ty = Type::I64;
                    let iv = self.eval(fid, frame, idx, &idx_ty)?;
                    let signed = match idx {
                        Operand::ConstInt { ty, value } => {
                            let _ = ty;
                            *value
                        }
                        Operand::Val(v) => {
                            let fty = self.module.functions[fid.index()].value_type(*v).clone();
                            iv.as_signed(&fty)
                        }
                        _ => iv.as_int() as i64,
                    };
                    if i == 0 {
                        addr =
                            addr.wrapping_add(signed.wrapping_mul(cur_ty.size_of() as i64) as u64);
                    } else {
                        match &cur_ty {
                            Type::Struct(_) => {
                                let fi = signed as usize;
                                addr = addr.wrapping_add(cur_ty.field_offset(fi));
                                cur_ty = cur_ty.element_type(fi).clone();
                            }
                            Type::Array(elem, _) => {
                                addr = addr.wrapping_add(
                                    (signed).wrapping_mul(elem.size_of() as i64) as u64,
                                );
                                cur_ty = (**elem).clone();
                            }
                            other => {
                                return Err(Trap::Unsupported(format!(
                                    "gep step into non-aggregate {other}"
                                )))
                            }
                        }
                    }
                }
                Ok(Some(RtVal::Int(addr)))
            }
            InstrKind::Phi { .. } => unreachable!("phis handled at block entry"),
            InstrKind::Select { ty, cond, then_value, else_value } => {
                self.charge_app(OpClass::Select, cost.arith)?;
                let c = self.eval(fid, frame, cond, &Type::I1)?.as_int();
                let v = if c & 1 != 0 {
                    self.eval(fid, frame, then_value, ty)?
                } else {
                    self.eval(fid, frame, else_value, ty)?
                };
                Ok(Some(v))
            }
            InstrKind::Bin { op, ty, lhs, rhs } => {
                self.charge_app(OpClass::Bin, cost.arith)?;
                let a = self.eval(fid, frame, lhs, ty)?;
                let b = self.eval(fid, frame, rhs, ty)?;
                Ok(Some(exec_bin(*op, ty, a, b)?))
            }
            InstrKind::Icmp { pred, ty, lhs, rhs } => {
                self.charge_app(OpClass::Icmp, cost.arith)?;
                let a = self.eval(fid, frame, lhs, ty)?;
                let b = self.eval(fid, frame, rhs, ty)?;
                Ok(Some(RtVal::Int(exec_icmp(*pred, ty, a, b) as u64)))
            }
            InstrKind::Fcmp { pred, lhs, rhs } => {
                self.charge_app(OpClass::Fcmp, cost.arith)?;
                let a = self.eval(fid, frame, lhs, &Type::F64)?.as_float();
                let b = self.eval(fid, frame, rhs, &Type::F64)?.as_float();
                let r = match pred {
                    FcmpPred::Oeq => a == b,
                    FcmpPred::One => a != b,
                    FcmpPred::Olt => a < b,
                    FcmpPred::Ole => a <= b,
                    FcmpPred::Ogt => a > b,
                    FcmpPred::Oge => a >= b,
                };
                Ok(Some(RtVal::Int(r as u64)))
            }
            InstrKind::Cast { op, value, from, to } => {
                self.charge_app(OpClass::Cast, cost.arith)?;
                let v = self.eval(fid, frame, value, from)?;
                Ok(Some(exec_cast(*op, v, from, to)))
            }
            InstrKind::Call { .. } | InstrKind::CallIndirect { .. } => {
                unreachable!("calls are handled by exec_instr")
            }
            InstrKind::MemCpy { dst, src, len } => {
                let d = self.eval(fid, frame, dst, &Type::Ptr)?.as_int();
                let s = self.eval(fid, frame, src, &Type::Ptr)?.as_int();
                let n = self.eval(fid, frame, len, &Type::I64)?.as_int();
                self.charge_app(OpClass::MemCpy, cost.memop_base + (n / 8) * cost.memop_per_word)?;
                self.mem.copy(d, s, n).map_err(Self::mem_err)?;
                Ok(None)
            }
            InstrKind::MemSet { dst, byte, len } => {
                let d = self.eval(fid, frame, dst, &Type::Ptr)?.as_int();
                let b = self.eval(fid, frame, byte, &Type::I8)?.as_int() as u8;
                let n = self.eval(fid, frame, len, &Type::I64)?.as_int();
                self.charge_app(OpClass::MemSet, cost.memop_base + (n / 8) * cost.memop_per_word)?;
                self.mem.fill(d, b, n).map_err(Self::mem_err)?;
                Ok(None)
            }
            InstrKind::Nop => Ok(None),
        }
    }

    fn dispatch_call(
        &mut self,
        callee: &str,
        argv: Vec<RtVal>,
        ret: &Type,
        loc: Option<u32>,
    ) -> Result<Option<RtVal>, Trap> {
        // Defined module function?
        if let Some((callee_fid, f)) = self.module.function_by_name(callee) {
            if !f.is_declaration {
                self.charge_app(
                    OpClass::Call,
                    self.config.cost.call + self.config.cost.call_per_arg * argv.len() as u64,
                )?;
                return self.exec_function(callee_fid, argv, loc);
            }
        }
        // Host function?
        if let Some(hf) = self.registry.get(callee).cloned() {
            // The host function charges through `HostCtx` without ticking the
            // sampler; the cost_total delta across the invocation attributes
            // its whole cost to the callee's class, and one deferred tick
            // samples with the synthetic host frame still pushed. This exact
            // sequence is mirrored by the bytecode backend's host-call path.
            let class = classify_host(callee);
            if let Some(s) = &mut self.sampler {
                s.push(callee, loc);
            }
            let before = self.stats.cost_total;
            let r = {
                let mut ctx = HostCtx {
                    mem: &mut self.mem,
                    stats: &mut self.stats,
                    out: &mut self.out,
                    profile: &mut self.profile,
                };
                hf(&mut ctx, &argv)
            };
            self.op_metrics.record(class, self.stats.cost_total - before);
            if let Some(s) = &mut self.sampler {
                if self.stats.cost_total >= self.flame_next_at {
                    self.flame_next_at = s.sample_until(self.flame_next_at, self.stats.cost_total);
                }
                s.pop();
            }
            let r = r?;
            if self.stats.cost_total >= self.poll_next_at {
                self.poll_budget()?;
            }
            if self.stats.cost_total > self.config.max_cost {
                return Err(Trap::CostLimit);
            }
            return Ok(if *ret == Type::Void { None } else { Some(r) });
        }
        Err(Trap::UnknownFunction(callee.to_string()))
    }
}

impl fmt::Debug for Vm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm").field("module", &self.module.name).field("stats", &self.stats).finish()
    }
}

fn zero_of(ty: &Type) -> RtVal {
    match ty {
        Type::F64 => RtVal::Float(0.0),
        _ => RtVal::Int(0),
    }
}

fn scalar_width(ty: &Type) -> Result<u64, Trap> {
    match ty {
        Type::I1 | Type::I8 => Ok(1),
        Type::I16 => Ok(2),
        Type::I32 => Ok(4),
        Type::I64 | Type::F64 | Type::Ptr => Ok(8),
        other => Err(Trap::Unsupported(format!("aggregate load/store of {other}"))),
    }
}

pub(crate) trait TruncIfInt {
    fn truncated_if_int(self, ty: &Type) -> RtVal;
}

impl TruncIfInt for RtVal {
    fn truncated_if_int(self, ty: &Type) -> RtVal {
        match self {
            RtVal::Int(_) if ty.is_int() => self.truncated(ty),
            other => other,
        }
    }
}

pub(crate) fn exec_bin(op: BinOp, ty: &Type, a: RtVal, b: RtVal) -> Result<RtVal, Trap> {
    if op.is_float() {
        let (x, y) = (a.as_float(), b.as_float());
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!(),
        };
        return Ok(RtVal::Float(r));
    }
    let bits = if ty.is_int() { ty.int_bits() } else { 64 };
    let ua = a.as_int();
    let ub = b.as_int();
    let v: u64 = match op {
        BinOp::Add => ua.wrapping_add(ub),
        BinOp::Sub => ua.wrapping_sub(ub),
        BinOp::Mul => ua.wrapping_mul(ub),
        BinOp::UDiv => {
            if ub == 0 {
                return Err(Trap::DivByZero);
            }
            ua / ub
        }
        BinOp::URem => {
            if ub == 0 {
                return Err(Trap::DivByZero);
            }
            ua % ub
        }
        BinOp::SDiv => {
            let (sa, sb) = (a.as_signed(ty), b.as_signed(ty));
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_div(sb) as u64
        }
        BinOp::SRem => {
            let (sa, sb) = (a.as_signed(ty), b.as_signed(ty));
            if sb == 0 {
                return Err(Trap::DivByZero);
            }
            sa.wrapping_rem(sb) as u64
        }
        BinOp::And => ua & ub,
        BinOp::Or => ua | ub,
        BinOp::Xor => ua ^ ub,
        BinOp::Shl => ua.wrapping_shl(ub as u32 % bits),
        BinOp::LShr => ua.wrapping_shr(ub as u32 % bits),
        BinOp::AShr => (a.as_signed(ty) >> (ub as u32 % bits)) as u64,
        _ => unreachable!(),
    };
    Ok(RtVal::Int(v).truncated(ty))
}

pub(crate) fn exec_icmp(pred: IcmpPred, ty: &Type, a: RtVal, b: RtVal) -> bool {
    let (ua, ub) = (a.as_int(), b.as_int());
    match pred {
        IcmpPred::Eq => ua == ub,
        IcmpPred::Ne => ua != ub,
        IcmpPred::Ult => ua < ub,
        IcmpPred::Ule => ua <= ub,
        IcmpPred::Ugt => ua > ub,
        IcmpPred::Uge => ua >= ub,
        IcmpPred::Slt | IcmpPred::Sle | IcmpPred::Sgt | IcmpPred::Sge => {
            let sty = if ty.is_ptr() { Type::I64 } else { ty.clone() };
            let (sa, sb) = (a.as_signed(&sty), b.as_signed(&sty));
            match pred {
                IcmpPred::Slt => sa < sb,
                IcmpPred::Sle => sa <= sb,
                IcmpPred::Sgt => sa > sb,
                IcmpPred::Sge => sa >= sb,
                _ => unreachable!(),
            }
        }
    }
}

pub(crate) fn exec_cast(op: CastOp, v: RtVal, from: &Type, to: &Type) -> RtVal {
    match op {
        CastOp::Zext => RtVal::Int(v.as_int()), // already zero-extended
        CastOp::Sext => RtVal::Int(v.as_signed(from) as u64).truncated(to),
        CastOp::Trunc => v.truncated(to),
        CastOp::PtrToInt => RtVal::Int(v.as_int()).truncated(to),
        CastOp::IntToPtr => RtVal::Int(v.as_int()),
        CastOp::Bitcast => RtVal::from_bits(to, v.to_bits()),
        CastOp::SiToFp => RtVal::Float(v.as_signed(from) as f64),
        CastOp::FpToSi => RtVal::Int(v.as_float() as i64 as u64).truncated(to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mir::builder::ModuleBuilder;

    fn run_main(m: Module) -> Result<ExecOutcome, Trap> {
        let mut vm = Vm::new(m, VmConfig::default())?;
        vm.run("main", &[])
    }

    #[test]
    fn arithmetic_and_return() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = mb.function("main", vec![], Type::I64);
        let a = fb.add(Type::I64, Operand::i64(40), Operand::i64(2));
        fb.ret(Some(a));
        fb.finish();
        let out = run_main(mb.finish()).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 42);
        assert!(out.stats.cost_total > 0);
    }

    fn spin_module() -> Module {
        // A long-running cell: ~10^12 iterations, far beyond any test's
        // patience but within the cost budget for a while — the budget
        // poll must cut it short.
        let src = r#"
            define i64 @main() {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %c = icmp slt i64, %i, i64 1000000000000
              condbr %c, body, exit
            body:
              %next = add i64, %i, i64 1
              br header
            exit:
              ret %i
            }
        "#;
        mir::parser::parse_module(src).unwrap()
    }

    #[test]
    fn deadline_traps_long_running_cells_on_both_backends() {
        for backend in [crate::VmBackend::Walk, crate::VmBackend::Bytecode] {
            let cfg = VmConfig { backend, ..VmConfig::default() };
            let mut vm = Vm::new(spin_module(), cfg).unwrap();
            vm.set_deadline(std::time::Instant::now());
            assert!(matches!(vm.run("main", &[]), Err(Trap::DeadlineExceeded)), "{backend:?}");
        }
    }

    #[test]
    fn interrupt_flag_traps_long_running_cells() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let flag = Arc::new(AtomicBool::new(true));
        let mut vm = Vm::new(spin_module(), VmConfig::default()).unwrap();
        vm.set_interrupt(Arc::clone(&flag));
        assert!(matches!(vm.run("main", &[]), Err(Trap::Interrupted)));
    }

    #[test]
    fn future_deadline_does_not_perturb_results() {
        let mut plain = Vm::new(spin_module(), VmConfig::default()).unwrap();
        // Bound the spin to something a test can execute.
        let mut vm = {
            let mut mb = ModuleBuilder::new("m");
            let mut fb = mb.function("main", vec![], Type::I64);
            let a = fb.add(Type::I64, Operand::i64(40), Operand::i64(2));
            fb.ret(Some(a));
            fb.finish();
            Vm::new(mb.finish(), VmConfig::default()).unwrap()
        };
        vm.set_deadline(std::time::Instant::now() + std::time::Duration::from_secs(3600));
        let out = vm.run("main", &[]).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 42);
        // The long spin still hits the ordinary cost ceiling, not the
        // deadline, when no deadline is armed.
        plain.config.max_cost = 1_000_000;
        let trap = plain.run("main", &[]).unwrap_err();
        assert!(matches!(trap, Trap::CostLimit), "{trap}");
    }

    #[test]
    fn adopted_bytecode_image_reproduces_results() {
        let module = spin_module();
        let cfg = VmConfig {
            backend: crate::VmBackend::Bytecode,
            max_cost: 1_000_000,
            ..VmConfig::default()
        };
        let mut donor = Vm::new(module.clone(), cfg).unwrap();
        donor.prepare();
        let image = donor.bytecode_image();
        let donor_trap = donor.run("main", &[]).unwrap_err();

        let mut vm = Vm::new(module.clone(), cfg).unwrap();
        vm.adopt_bytecode(&image).unwrap();
        let trap = vm.run("main", &[]).unwrap_err();
        assert_eq!(trap.to_string(), donor_trap.to_string());
        assert_eq!(vm.stats.cost_total, donor.stats.cost_total);

        // A stale image naming an unknown host is refused, and the VM
        // still works via ordinary preparation afterwards.
        let mut stale = image.clone();
        stale.host_names.push("no-such-host".to_string());
        stale.host_classes.push(crate::OpClass::Host);
        let mut vm = Vm::new(module, cfg).unwrap();
        assert!(vm.adopt_bytecode(&stale).is_err());
        vm.prepare();
        assert!(vm.run("main", &[]).is_err());
    }

    #[test]
    fn loop_sums_correctly() {
        // sum 0..10 = 45 via memory-allocated counter.
        let src = r#"
            define i64 @main() {
            entry:
              br header
            header:
              %i = phi i64, [entry: i64 0], [body: %next]
              %acc = phi i64, [entry: i64 0], [body: %acc2]
              %c = icmp slt i64, %i, i64 10
              condbr %c, body, exit
            body:
              %acc2 = add i64, %acc, %i
              %next = add i64, %i, i64 1
              br header
            exit:
              ret %acc
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        let out = run_main(m).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), 45);
    }

    #[test]
    fn alloca_load_store() {
        let src = r#"
            define i64 @main() {
            entry:
              %p = alloca i64, i64 1
              store i64, i64 77, %p
              %v = load i64, %p
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 77);
    }

    #[test]
    fn globals_and_gep() {
        let src = r#"
            global @arr : [10 x i32] = zero
            define i64 @main() {
            entry:
              %p = gep i32, @arr, [i64 3]
              store i32, i32 123, %p
              %q = gep i32, @arr, [i64 3]
              %v = load i32, %q
              %w = zext %v, i32 to i64
              ret %w
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 123);
    }

    #[test]
    fn struct_gep_walks_fields() {
        let src = r#"
            global @s : { i8, i64, i32 } = zero
            define i64 @main() {
            entry:
              %p = gep { i8, i64, i32 }, @s, [i64 0, i32 1]
              store i64, i64 55, %p
              %v = load i64, %p
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 55);
    }

    #[test]
    fn function_calls_and_recursion() {
        let src = r#"
            define i64 @fib(i64 %n) {
            entry:
              %c = icmp slt i64, %n, i64 2
              condbr %c, base, rec
            base:
              ret %n
            rec:
              %n1 = sub i64, %n, i64 1
              %n2 = sub i64, %n, i64 2
              %f1 = call i64 @fib(%n1)
              %f2 = call i64 @fib(%n2)
              %s = add i64, %f1, %f2
              ret %s
            }
            define i64 @main() {
            entry:
              %r = call i64 @fib(i64 10)
              ret %r
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 55);
    }

    #[test]
    fn malloc_and_heap_access() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 64)
              %q = gep i64, %p, [i64 2]
              store i64, i64 9, %q
              %v = load i64, %q
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 9);
    }

    #[test]
    fn unmapped_access_traps() {
        let src = r#"
            define i64 @main() {
            entry:
              %p = inttoptr i64 64, i64 to ptr
              %v = load i64, %p
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        match run_main(m) {
            Err(Trap::UnmappedAccess { addr: 64, .. }) => {}
            other => panic!("expected unmapped trap, got {other:?}"),
        }
    }

    #[test]
    fn oob_into_mapped_page_is_silent() {
        // C-like behaviour: an 8-byte overflow past a heap allocation stays
        // on the mapped page and is NOT caught without instrumentation.
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %p = call ptr @malloc(i64 16)
              %q = gep i64, %p, [i64 3]
              store i64, i64 1, %q
              ret i64 0
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert!(run_main(m).is_ok());
    }

    #[test]
    fn division_by_zero_traps() {
        let src = r#"
            define i64 @main() {
            entry:
              %z = sub i64, i64 1, i64 1
              %v = sdiv i64, i64 10, %z
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m), Err(Trap::DivByZero));
    }

    #[test]
    fn cost_limit_stops_infinite_loop() {
        let src = r#"
            define i64 @main() {
            entry:
              br entry2
            entry2:
              br entry2
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        let mut vm = Vm::new(m, VmConfig { max_cost: 10_000, ..Default::default() }).unwrap();
        assert_eq!(vm.run("main", &[]), Err(Trap::CostLimit));
    }

    #[test]
    fn print_output_captured() {
        let src = r#"
            hostdecl void @print_i64(i64)
            define i64 @main() {
            entry:
              call void @print_i64(i64 7)
              call void @print_i64(i64 8)
              ret i64 0
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        let out = run_main(m).unwrap();
        assert_eq!(out.output, vec!["7", "8"]);
    }

    #[test]
    fn indirect_call_through_function_pointer() {
        let src = r#"
            define i64 @double(i64 %x) {
            entry:
              %r = mul i64, %x, i64 2
              ret %r
            }
            define i64 @main() {
            entry:
              %p = alloca ptr, i64 1
              store ptr, @fn:double, %p
              %f = load ptr, %p
              %r = call_indirect i64 %f(i64 21)
              ret %r
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 42);
    }

    #[test]
    fn bad_indirect_call_traps() {
        let src = r#"
            define i64 @main() {
            entry:
              %p = inttoptr i64 4096, i64 to ptr
              %r = call_indirect i64 %p()
              ret %r
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert!(matches!(run_main(m), Err(Trap::BadIndirectCall(4096))));
    }

    #[test]
    fn memcpy_and_memset() {
        let src = r#"
            hostdecl ptr @malloc(i64)
            define i64 @main() {
            entry:
              %a = call ptr @malloc(i64 32)
              %b = call ptr @malloc(i64 32)
              memset %a, i8 65, i64 8
              memcpy %b, %a, i64 8
              %v = load i8, %b
              %w = zext %v, i8 to i64
              ret %w
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 65);
    }

    #[test]
    fn float_pipeline() {
        let src = r#"
            define i64 @main() {
            entry:
              %a = sitofp i64 3, i64 to f64
              %b = fmul f64, %a, %a
              %c = fptosi %b, f64 to i64
              ret %c
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 9);
    }

    #[test]
    fn i8_overflow_wraps() {
        let src = r#"
            define i64 @main() {
            entry:
              %a = add i8, i8 200, i8 100
              %b = zext %a, i8 to i64
              ret %b
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 44); // 300 % 256
    }

    #[test]
    fn stack_reclaimed_across_calls() {
        // Two sequential calls reuse the same stack area: their allocas get
        // the same address.
        let src = r#"
            define i64 @probe() {
            entry:
              %p = alloca i64, i64 1
              %v = ptrtoint %p, ptr to i64
              ret %v
            }
            define i64 @main() {
            entry:
              %a = call i64 @probe()
              %b = call i64 @probe()
              %d = sub i64, %a, %b
              ret %d
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 0);
    }

    #[test]
    fn uninitialized_global_is_zero() {
        let src = r#"
            global @g : i64 = zero
            define i64 @main() {
            entry:
              %v = load i64, @g
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 0);
    }

    #[test]
    fn global_initializer_bytes() {
        let src = r#"
            global @g : [4 x i8] = bytes [1 2 3 4]
            define i64 @main() {
            entry:
              %p = gep i8, @g, [i64 2]
              %v = load i8, %p
              %w = zext %v, i8 to i64
              ret %w
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 3);
    }

    #[test]
    fn select_works() {
        let src = r#"
            define i64 @main() {
            entry:
              %c = icmp sgt i64, i64 5, i64 3
              %v = select i64, %c, i64 100, i64 200
              ret %v
            }
        "#;
        let m = mir::parser::parse_module(src).unwrap();
        assert_eq!(run_main(m).unwrap().ret.unwrap().as_int(), 100);
    }
}
