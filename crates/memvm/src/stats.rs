//! Execution statistics: cost accounting, dynamic check counters, and the
//! per-check-site profile.

use std::iter::Sum;
use std::ops::AddAssign;

/// Counters collected during one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Total cost units charged (the paper's "execution time" proxy).
    pub cost_total: u64,
    /// Cost charged by application instructions.
    pub cost_app: u64,
    /// Cost charged by dereference/invariant checks.
    pub cost_checks: u64,
    /// Cost charged by metadata propagation (trie, shadow stack, base
    /// recovery).
    pub cost_metadata: u64,
    /// Cost charged by allocator helpers.
    pub cost_allocator: u64,
    /// Cost charged by other host functions (I/O etc.).
    pub cost_other: u64,
    /// Number of executed IR instructions.
    pub instrs_executed: u64,
    /// Dynamic count of dereference checks executed.
    pub checks_executed: u64,
    /// Dynamic count of dereference checks that ran with *wide bounds*
    /// (unable to validate anything) — the Table 2 numerator.
    pub checks_wide: u64,
    /// Dynamic count of invariant (escape) checks executed (Low-Fat).
    pub invariant_checks_executed: u64,
    /// Dynamic count of metadata lookups (trie / shadow stack loads).
    pub metadata_loads: u64,
    /// Dynamic count of metadata stores.
    pub metadata_stores: u64,
    /// Total mapped program memory at the end of the run (bytes) — the
    /// memory-overhead axis (allocator padding, red zones, metadata is
    /// host-side and reported separately).
    pub mapped_bytes: u64,
}

impl VmStats {
    /// Percentage of dereference checks that used wide bounds (Table 2).
    pub fn wide_check_percent(&self) -> f64 {
        if self.checks_executed == 0 {
            0.0
        } else {
            100.0 * self.checks_wide as f64 / self.checks_executed as f64
        }
    }
}

impl AddAssign<&VmStats> for VmStats {
    fn add_assign(&mut self, rhs: &VmStats) {
        self.cost_total += rhs.cost_total;
        self.cost_app += rhs.cost_app;
        self.cost_checks += rhs.cost_checks;
        self.cost_metadata += rhs.cost_metadata;
        self.cost_allocator += rhs.cost_allocator;
        self.cost_other += rhs.cost_other;
        self.instrs_executed += rhs.instrs_executed;
        self.checks_executed += rhs.checks_executed;
        self.checks_wide += rhs.checks_wide;
        self.invariant_checks_executed += rhs.invariant_checks_executed;
        self.metadata_loads += rhs.metadata_loads;
        self.metadata_stores += rhs.metadata_stores;
        self.mapped_bytes += rhs.mapped_bytes;
    }
}

impl AddAssign for VmStats {
    fn add_assign(&mut self, rhs: VmStats) {
        *self += &rhs;
    }
}

impl Sum for VmStats {
    fn sum<I: Iterator<Item = VmStats>>(iter: I) -> VmStats {
        let mut acc = VmStats::default();
        for s in iter {
            acc += s;
        }
        acc
    }
}

impl<'a> Sum<&'a VmStats> for VmStats {
    fn sum<I: Iterator<Item = &'a VmStats>>(iter: I) -> VmStats {
        let mut acc = VmStats::default();
        for s in iter {
            acc += s;
        }
        acc
    }
}

/// Dynamic counters for a single check site.
///
/// A *check site* is one statically inserted check instruction; the static
/// half ([`mir::srcloc::CheckSite`]) lives in the module's site table and
/// carries the source attribution, while these counters record what the
/// site did at run time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// Times the site's check executed.
    pub hits: u64,
    /// Times it executed with wide bounds (validated nothing).
    pub wide: u64,
    /// Cost units the site charged into the checks bucket.
    pub cost: u64,
}

/// Per-check-site dynamic profile, indexed by check-site id.
///
/// Runtime check helpers call [`SiteProfile::record`] with the trailing
/// site-id operand of their call; the totals reconcile exactly with the
/// aggregate counters in [`VmStats`] (`checks_executed` +
/// `invariant_checks_executed` = total hits, `checks_wide` = total wide,
/// `cost_checks` = total cost) when every executed check carries a site id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiteProfile {
    counts: Vec<SiteCounts>,
}

impl SiteProfile {
    /// An empty profile.
    pub fn new() -> SiteProfile {
        SiteProfile::default()
    }

    /// Records one execution of check site `site`.
    pub fn record(&mut self, site: usize, wide: bool, cost: u64) {
        if site >= self.counts.len() {
            self.counts.resize(site + 1, SiteCounts::default());
        }
        let c = &mut self.counts[site];
        c.hits += 1;
        if wide {
            c.wide += 1;
        }
        c.cost += cost;
    }

    /// Counters for every site seen so far, indexed by site id. Sites past
    /// the highest recorded id are not represented; use [`SiteProfile::get`]
    /// for zero-defaulting access.
    pub fn counts(&self) -> &[SiteCounts] {
        &self.counts
    }

    /// Counters for `site` (all-zero if the site never executed).
    pub fn get(&self, site: usize) -> SiteCounts {
        self.counts.get(site).copied().unwrap_or_default()
    }

    /// Whether no site has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| c.hits == 0)
    }

    /// Sum of hits over all sites.
    pub fn total_hits(&self) -> u64 {
        self.counts.iter().map(|c| c.hits).sum()
    }

    /// Sum of wide executions over all sites.
    pub fn total_wide(&self) -> u64 {
        self.counts.iter().map(|c| c.wide).sum()
    }

    /// Sum of cost over all sites.
    pub fn total_cost(&self) -> u64 {
        self.counts.iter().map(|c| c.cost).sum()
    }
}

impl AddAssign<&SiteProfile> for SiteProfile {
    fn add_assign(&mut self, rhs: &SiteProfile) {
        if rhs.counts.len() > self.counts.len() {
            self.counts.resize(rhs.counts.len(), SiteCounts::default());
        }
        for (a, b) in self.counts.iter_mut().zip(&rhs.counts) {
            a.hits += b.hits;
            a.wide += b.wide;
            a.cost += b.cost;
        }
    }
}

impl AddAssign for SiteProfile {
    fn add_assign(&mut self, rhs: SiteProfile) {
        *self += &rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_percent() {
        let mut s = VmStats::default();
        assert_eq!(s.wide_check_percent(), 0.0);
        s.checks_executed = 200;
        s.checks_wide = 3;
        assert!((s.wide_check_percent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vmstats_add_assign_sums_every_field() {
        let mut a = VmStats {
            cost_total: 1,
            cost_app: 2,
            cost_checks: 3,
            cost_metadata: 4,
            cost_allocator: 5,
            cost_other: 6,
            instrs_executed: 7,
            checks_executed: 8,
            checks_wide: 9,
            invariant_checks_executed: 10,
            metadata_loads: 11,
            metadata_stores: 12,
            mapped_bytes: 13,
        };
        let b = a.clone();
        a += &b;
        assert_eq!(a.cost_total, 2);
        assert_eq!(a.cost_other, 12);
        assert_eq!(a.instrs_executed, 14);
        assert_eq!(a.checks_wide, 18);
        assert_eq!(a.mapped_bytes, 26);
    }

    #[test]
    fn vmstats_sum_matches_repeated_add() {
        let one = VmStats { cost_total: 10, checks_executed: 4, ..VmStats::default() };
        let total: VmStats = vec![one.clone(), one.clone(), one.clone()].into_iter().sum();
        let mut by_add = VmStats::default();
        for _ in 0..3 {
            by_add += one.clone();
        }
        assert_eq!(total, by_add);
        assert_eq!(total.cost_total, 30);
        assert_eq!(total.checks_executed, 12);
        let by_ref: VmStats = [&one, &one, &one].into_iter().sum();
        assert_eq!(by_ref, total);
    }

    #[test]
    fn site_profile_records_and_totals() {
        let mut p = SiteProfile::new();
        assert!(p.is_empty());
        p.record(2, false, 5);
        p.record(2, true, 5);
        p.record(0, false, 3);
        assert_eq!(p.get(2), SiteCounts { hits: 2, wide: 1, cost: 10 });
        assert_eq!(p.get(0), SiteCounts { hits: 1, wide: 0, cost: 3 });
        assert_eq!(p.get(1), SiteCounts::default());
        assert_eq!(p.get(99), SiteCounts::default());
        assert_eq!(p.total_hits(), 3);
        assert_eq!(p.total_wide(), 1);
        assert_eq!(p.total_cost(), 13);
        assert!(!p.is_empty());
    }

    #[test]
    fn site_profile_merge_aligns_lengths() {
        let mut a = SiteProfile::new();
        a.record(0, false, 1);
        let mut b = SiteProfile::new();
        b.record(3, true, 7);
        a += &b;
        assert_eq!(a.get(0), SiteCounts { hits: 1, wide: 0, cost: 1 });
        assert_eq!(a.get(3), SiteCounts { hits: 1, wide: 1, cost: 7 });
        assert_eq!(a.total_hits(), 2);
    }
}
