//! Execution statistics: cost accounting and dynamic check counters.

/// Counters collected during one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Total cost units charged (the paper's "execution time" proxy).
    pub cost_total: u64,
    /// Cost charged by application instructions.
    pub cost_app: u64,
    /// Cost charged by dereference/invariant checks.
    pub cost_checks: u64,
    /// Cost charged by metadata propagation (trie, shadow stack, base
    /// recovery).
    pub cost_metadata: u64,
    /// Cost charged by allocator helpers.
    pub cost_allocator: u64,
    /// Cost charged by other host functions (I/O etc.).
    pub cost_other: u64,
    /// Number of executed IR instructions.
    pub instrs_executed: u64,
    /// Dynamic count of dereference checks executed.
    pub checks_executed: u64,
    /// Dynamic count of dereference checks that ran with *wide bounds*
    /// (unable to validate anything) — the Table 2 numerator.
    pub checks_wide: u64,
    /// Dynamic count of invariant (escape) checks executed (Low-Fat).
    pub invariant_checks_executed: u64,
    /// Dynamic count of metadata lookups (trie / shadow stack loads).
    pub metadata_loads: u64,
    /// Dynamic count of metadata stores.
    pub metadata_stores: u64,
    /// Total mapped program memory at the end of the run (bytes) — the
    /// memory-overhead axis (allocator padding, red zones, metadata is
    /// host-side and reported separately).
    pub mapped_bytes: u64,
}

impl VmStats {
    /// Percentage of dereference checks that used wide bounds (Table 2).
    pub fn wide_check_percent(&self) -> f64 {
        if self.checks_executed == 0 {
            0.0
        } else {
            100.0 * self.checks_wide as f64 / self.checks_executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_percent() {
        let mut s = VmStats::default();
        assert_eq!(s.wide_check_percent(), 0.0);
        s.checks_executed = 200;
        s.checks_wide = 3;
        assert!((s.wide_check_percent() - 1.5).abs() < 1e-12);
    }
}
