//! Cost-driven sampling profiler.
//!
//! Instead of a wall-clock timer, the sampler is clocked by the VM's
//! deterministic cost model: after every charge it takes one sample per
//! `interval` cost units crossed since the last sample, recording the current
//! guest call stack into a folded-stacks accumulator. Because both
//! execution backends charge the same costs in the same order with the same
//! stack shape, the profile is byte-identical across `--vm walk` and
//! `--vm bytecode`, across repeated runs, and independent of host load.
//!
//! Frame labels carry source provenance: the entry function is its bare
//! name, callees are `name:LINE` where `LINE` is the *call-site* line in the
//! caller (matching trap backtrace attribution), and host functions appear
//! as synthetic leaf frames under their registry name.
//!
//! The hot path is allocation-free in the steady state: frame names are
//! interned once (push hashes the `&str`, no `format!`), the live stack is a
//! `Vec<(u32, u32)>`, and stacks are only materialized into strings when
//! [`FlameSampler::folded`] renders the final profile — so sampling stays
//! cheap enough to leave on across a whole evaluation sweep.

use std::collections::HashMap;

use telemetry::FoldedStacks;

/// A compact frame: interned name id + call-site line biased by one
/// (0 = no provenance, i.e. an entry function).
type Frame = (u32, u32);

/// A sampling profiler clocked by charged cost units.
///
/// The next-boundary cursor lives on the *owner* (the VM keeps it as a bare
/// `u64` field, `u64::MAX` when sampling is off), so the per-charge hot path
/// is a single integer compare; the sampler itself is only consulted on the
/// cold boundary-crossing path via [`FlameSampler::sample_until`].
#[derive(Clone, Debug)]
pub struct FlameSampler {
    interval: u64,
    names: Vec<String>,
    ids: HashMap<String, u32>,
    stack: Vec<Frame>,
    counts: HashMap<Vec<Frame>, u64>,
    samples: u64,
}

impl FlameSampler {
    /// Creates a sampler taking one sample every `interval` cost units.
    /// `interval` must be non-zero (an interval of 0 means "sampling off"
    /// and is handled by not constructing a sampler at all).
    pub fn new(interval: u64) -> FlameSampler {
        assert!(interval > 0, "sample interval must be non-zero");
        FlameSampler {
            interval,
            names: Vec::new(),
            ids: HashMap::new(),
            stack: Vec::new(),
            counts: HashMap::new(),
            samples: 0,
        }
    }

    /// The configured sampling interval in cost units.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Interns `name`, returning a stable id for [`FlameSampler::push_id`].
    /// Callers that know their callees ahead of time (the bytecode backend)
    /// intern once per function and keep the call hot path hash-free.
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        match self.ids.get(name) {
            Some(&id) => id,
            None => {
                let id = self.names.len() as u32;
                self.names.push(name.to_string());
                self.ids.insert(name.to_string(), id);
                id
            }
        }
    }

    /// Pushes a frame for the function interned as `id`, entered from
    /// call-site line `loc` (`None` for the entry function or calls
    /// without provenance). Allocation- and hash-free.
    #[inline]
    pub(crate) fn push_id(&mut self, id: u32, loc: Option<u32>) {
        self.stack.push((id, loc.map_or(0, |l| l.saturating_add(1))));
    }

    /// Pushes a frame for `func` entered from call-site line `loc`
    /// (`None` for the entry function or calls without provenance).
    pub(crate) fn push(&mut self, func: &str, loc: Option<u32>) {
        let id = self.intern(func);
        self.push_id(id, loc);
    }

    /// Pops the innermost frame.
    pub(crate) fn pop(&mut self) {
        self.stack.pop();
    }

    /// Records one sample per interval boundary in `next_at..=cost_total`
    /// and returns the next boundary for the owner to store. One sample per
    /// boundary crossed means `samples * interval <= cost_total` always
    /// holds after a run. Cold: callers guard with a plain compare against
    /// their cached boundary, so this only runs when a sample is due.
    pub(crate) fn sample_until(&mut self, mut next_at: u64, cost_total: u64) -> u64 {
        while cost_total >= next_at {
            *self.counts.entry(self.stack.clone()).or_insert(0) += 1;
            self.samples += 1;
            next_at += self.interval;
        }
        next_at
    }

    /// Materializes the accumulated samples as folded stacks. The result
    /// is deterministic regardless of internal hash order (the folded
    /// accumulator sorts by stack key).
    pub fn folded(&self) -> FoldedStacks {
        let mut out = FoldedStacks::new();
        let mut key = String::new();
        for (stack, &count) in &self.counts {
            if stack.is_empty() {
                continue; // sampled outside any guest frame (VM setup)
            }
            key.clear();
            for (i, &(id, line)) in stack.iter().enumerate() {
                if i > 0 {
                    key.push(';');
                }
                key.push_str(&self.names[id as usize]);
                if line > 0 {
                    key.push(':');
                    key.push_str(itoa(line - 1).as_str());
                }
            }
            out.record_key(&key, count);
        }
        out
    }

    /// Total number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

fn itoa(v: u32) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_interval_boundary() {
        let mut s = FlameSampler::new(10);
        let mut next = s.interval();
        s.push("main", None);
        next = s.sample_until(next, 9); // below first boundary: no sample
        assert_eq!(s.samples(), 0);
        next = s.sample_until(next, 10); // crosses 10
        assert_eq!(s.samples(), 1);
        s.sample_until(next, 35); // crosses 20 and 30 in one charge
        assert_eq!(s.samples(), 3);
        assert_eq!(s.folded().render(), "main 3\n");
    }

    #[test]
    fn stack_labels_carry_call_site_lines() {
        let mut s = FlameSampler::new(5);
        let mut next = s.interval();
        s.push("main", None);
        s.push("work", Some(12));
        next = s.sample_until(next, 5);
        s.pop();
        s.sample_until(next, 10);
        assert_eq!(s.folded().render(), "main 1\nmain;work:12 1\n");
    }

    #[test]
    fn samples_times_interval_bounded_by_cost() {
        let mut s = FlameSampler::new(7);
        let mut next = s.interval();
        s.push("m", None);
        for c in [3u64, 8, 8, 20, 21, 50] {
            next = s.sample_until(next, c);
        }
        assert!(s.samples() * s.interval() <= 50);
        assert_eq!(s.samples(), 7); // boundaries 7,14,21,28,35,42,49
    }

    #[test]
    fn interning_keeps_distinct_call_sites_distinct() {
        let mut s = FlameSampler::new(1);
        let mut next = s.interval();
        s.push("main", None);
        s.push("f", Some(3));
        next = s.sample_until(next, 1);
        s.pop();
        s.push("f", Some(9));
        next = s.sample_until(next, 2);
        s.pop();
        s.sample_until(next, 3);
        assert_eq!(s.folded().render(), "main 1\nmain;f:3 1\nmain;f:9 1\n");
        assert_eq!(s.samples(), 3);
    }
}
