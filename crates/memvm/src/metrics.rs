//! Per-opcode-class execution metrics.
//!
//! Every cost unit the VM charges is attributed to an [`OpClass`]: one class
//! per data/terminator opcode kind, one per specialized check helper, and a
//! catch-all [`OpClass::Host`] for other host functions (whose cost is
//! captured as the `cost_total` delta across the invocation, so allocator /
//! metadata / I/O helper costs land here too). The attribution is complete
//! by construction: summing [`OpMetrics`] costs over every class reproduces
//! [`crate::VmStats::cost_total`] exactly, which the metrics export and the
//! CI reconciliation check assert.
//!
//! Both execution backends classify identically (the bytecode compiler
//! pre-computes host classes per pool entry; the walker classifies by name),
//! so the per-class counters are part of the backends' byte-identical
//! observable behaviour.

/// The cost-attribution class of one charged operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// Stack allocation.
    Alloca,
    /// Scalar load.
    Load,
    /// Scalar store.
    Store,
    /// Address computation.
    Gep,
    /// Conditional select.
    Select,
    /// Integer/float arithmetic.
    Bin,
    /// Integer comparison.
    Icmp,
    /// Float comparison.
    Fcmp,
    /// Type cast.
    Cast,
    /// Call of a defined function (the call overhead charge, not the body).
    Call,
    /// Function return.
    Ret,
    /// Unconditional branch.
    Br,
    /// Conditional branch.
    CondBr,
    /// Bulk copy.
    MemCpy,
    /// Bulk fill.
    MemSet,
    /// `__sb_check` dereference check.
    CheckSb,
    /// `__lf_check` dereference check.
    CheckLf,
    /// `__rz_check` dereference check.
    CheckRz,
    /// `__lf_invariant` escape check.
    LfInvariant,
    /// Any other host function (allocator, metadata, I/O, ...).
    Host,
    /// Charges with no better classification (compile-time-known traps).
    Other,
}

/// Number of [`OpClass`] variants (array-table size).
pub const OP_CLASS_COUNT: usize = 21;

impl OpClass {
    /// Every class, in stable serialization order.
    pub const ALL: [OpClass; OP_CLASS_COUNT] = [
        OpClass::Alloca,
        OpClass::Load,
        OpClass::Store,
        OpClass::Gep,
        OpClass::Select,
        OpClass::Bin,
        OpClass::Icmp,
        OpClass::Fcmp,
        OpClass::Cast,
        OpClass::Call,
        OpClass::Ret,
        OpClass::Br,
        OpClass::CondBr,
        OpClass::MemCpy,
        OpClass::MemSet,
        OpClass::CheckSb,
        OpClass::CheckLf,
        OpClass::CheckRz,
        OpClass::LfInvariant,
        OpClass::Host,
        OpClass::Other,
    ];

    /// Stable label used in metrics exports and bytecode disassembly.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Alloca => "alloca",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Gep => "gep",
            OpClass::Select => "select",
            OpClass::Bin => "bin",
            OpClass::Icmp => "icmp",
            OpClass::Fcmp => "fcmp",
            OpClass::Cast => "cast",
            OpClass::Call => "call",
            OpClass::Ret => "ret",
            OpClass::Br => "br",
            OpClass::CondBr => "condbr",
            OpClass::MemCpy => "memcpy",
            OpClass::MemSet => "memset",
            OpClass::CheckSb => "check_sb",
            OpClass::CheckLf => "check_lf",
            OpClass::CheckRz => "check_rz",
            OpClass::LfInvariant => "lf_invariant",
            OpClass::Host => "host",
            OpClass::Other => "other",
        }
    }

    /// Inverse of [`OpClass::name`] (bytecode parsing).
    pub fn from_name(s: &str) -> Option<OpClass> {
        OpClass::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// Classifies a host function by name: the four specialized check helpers
/// get their own classes; everything else is [`OpClass::Host`].
pub fn classify_host(name: &str) -> OpClass {
    match name {
        "__sb_check" => OpClass::CheckSb,
        "__lf_check" => OpClass::CheckLf,
        "__rz_check" => OpClass::CheckRz,
        "__lf_invariant" => OpClass::LfInvariant,
        _ => OpClass::Host,
    }
}

/// Execute counts and attributed cost per [`OpClass`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpMetrics {
    counts: [u64; OP_CLASS_COUNT],
    costs: [u64; OP_CLASS_COUNT],
}

impl Default for OpMetrics {
    fn default() -> OpMetrics {
        OpMetrics { counts: [0; OP_CLASS_COUNT], costs: [0; OP_CLASS_COUNT] }
    }
}

impl OpMetrics {
    /// All-zero metrics.
    pub fn new() -> OpMetrics {
        OpMetrics::default()
    }

    /// Records one execution of `class` costing `cost` units.
    #[inline(always)]
    pub(crate) fn record(&mut self, class: OpClass, cost: u64) {
        let i = class as usize;
        self.counts[i] += 1;
        self.costs[i] += cost;
    }

    /// Times `class` executed.
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class as usize]
    }

    /// Cost units attributed to `class`.
    pub fn cost(&self, class: OpClass) -> u64 {
        self.costs[class as usize]
    }

    /// Sum of counts over all classes.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of attributed cost over all classes; reconciles exactly with
    /// [`crate::VmStats::cost_total`] after a run.
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Iterates `(class, count, cost)` over classes that executed at least
    /// once, in [`OpClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, u64, u64)> + '_ {
        OpClass::ALL.iter().map(|&c| (c, self.count(c), self.cost(c))).filter(|&(_, n, _)| n > 0)
    }
}

impl std::ops::AddAssign<&OpMetrics> for OpMetrics {
    fn add_assign(&mut self, rhs: &OpMetrics) {
        for i in 0..OP_CLASS_COUNT {
            self.counts[i] += rhs.counts[i];
            self.costs[i] += rhs.costs[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant_with_unique_names() {
        assert_eq!(OpClass::ALL.len(), OP_CLASS_COUNT);
        let mut names: Vec<&str> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), OP_CLASS_COUNT, "duplicate class name");
        for c in OpClass::ALL {
            assert_eq!(OpClass::from_name(c.name()), Some(c));
        }
        assert_eq!(OpClass::from_name("bogus"), None);
    }

    #[test]
    fn classify_host_maps_checks() {
        assert_eq!(classify_host("__sb_check"), OpClass::CheckSb);
        assert_eq!(classify_host("__lf_check"), OpClass::CheckLf);
        assert_eq!(classify_host("__rz_check"), OpClass::CheckRz);
        assert_eq!(classify_host("__lf_invariant"), OpClass::LfInvariant);
        assert_eq!(classify_host("malloc"), OpClass::Host);
        assert_eq!(classify_host("__sb_trie_set"), OpClass::Host);
    }

    #[test]
    fn record_and_totals() {
        let mut m = OpMetrics::new();
        m.record(OpClass::Load, 2);
        m.record(OpClass::Load, 2);
        m.record(OpClass::Host, 37);
        assert_eq!(m.count(OpClass::Load), 2);
        assert_eq!(m.cost(OpClass::Load), 4);
        assert_eq!(m.count(OpClass::Store), 0);
        assert_eq!(m.total_count(), 3);
        assert_eq!(m.total_cost(), 41);
        let nonzero: Vec<_> = m.iter().collect();
        assert_eq!(nonzero, vec![(OpClass::Load, 2, 4), (OpClass::Host, 1, 37)]);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = OpMetrics::new();
        a.record(OpClass::Bin, 1);
        let mut b = OpMetrics::new();
        b.record(OpClass::Bin, 1);
        b.record(OpClass::Ret, 1);
        a += &b;
        assert_eq!(a.count(OpClass::Bin), 2);
        assert_eq!(a.cost(OpClass::Bin), 2);
        assert_eq!(a.count(OpClass::Ret), 1);
    }
}
