#![warn(missing_docs)]

//! A byte-addressable virtual machine for [`mir`] programs.
//!
//! `memvm` is the "hardware" of the reproduction: it interprets `mir`
//! modules over a sparse 64-bit address space with a **deterministic cost
//! model**, playing the role the authors' x86-64 test machine plays in the
//! paper. Because costs are charged per executed instruction (and per
//! runtime-helper invocation), "execution time" comparisons between
//! instrumentation configurations are exactly reproducible.
//!
//! Key properties that matter for the paper's experiments:
//!
//! * **C-like memory semantics.** An out-of-bounds access only traps when it
//!   hits an *unmapped page*; accesses into padding or a neighbouring
//!   allocation silently succeed, as on real hardware. Detecting such
//!   accesses is the instrumentation's job, not the VM's.
//! * **Host functions** model the linked runtime library (checks, metadata
//!   structures, allocators). They are registered by name and can carry
//!   state; the default `malloc` can be replaced wholesale, which is how
//!   Low-Fat Pointers substitute their allocator.
//! * **Statistics** record cost per category (application, checks, metadata,
//!   allocator) and dynamic check counts, including how many checks ran with
//!   *wide bounds* — the quantity of Table 2.
//!
//! # Example
//!
//! ```
//! use mir::builder::ModuleBuilder;
//! use mir::types::Type;
//! use memvm::{Vm, VmConfig};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let mut fb = mb.function("main", vec![], Type::I64);
//! let v = fb.add(Type::I64, mir::Operand::i64(40), mir::Operand::i64(2));
//! fb.ret(Some(v));
//! fb.finish();
//! let module = mb.finish();
//!
//! let mut vm = Vm::new(module, VmConfig::default()).unwrap();
//! let outcome = vm.run("main", &[]).unwrap();
//! assert_eq!(outcome.ret.unwrap().as_int(), 42);
//! ```

pub mod bytecode;
pub mod cost;
mod exec;
pub mod host;
pub mod interp;
pub mod layout;
pub mod memory;
pub mod metrics;
pub mod profiler;
pub mod stats;
pub mod value;

pub use bytecode::{parse_bytecode, BcImage, BcModule, VmBackend};
pub use cost::CostModel;
pub use host::{CostCategory, HostCtx, HostRegistry};
pub use interp::{ExecOutcome, Trap, Vm, VmConfig};
pub use memory::{MemCounters, Memory};
pub use metrics::{classify_host, OpClass, OpMetrics};
pub use profiler::FlameSampler;
pub use stats::{SiteCounts, SiteProfile, VmStats};
pub use value::RtVal;
