//! The deterministic cost model.
//!
//! Each executed IR instruction charges a fixed number of abstract cost
//! units (think "cycles"); runtime helpers charge costs derived from the
//! instruction sequences the paper describes for them. The *relative* costs
//! are what matters — they are chosen so that the structural facts from the
//! paper hold by construction:
//!
//! * a SoftBound check (two compares + branch, Figure 2) is cheaper than a
//!   Low-Fat check (region-index extraction, size-table load, subtraction
//!   chain, Figure 5) — §5.2's explanation for `crafty`;
//! * a trie lookup (two dependent table loads plus index arithmetic,
//!   [24, Fig. 3]) is clearly more expensive than recomputing a low-fat base
//!   (shift, table load, mask) — §5.2's explanation for `equake`;
//! * metadata stores (trie updates) cost more than lookups (allocation check
//!   on the secondary table);
//! * allocator costs make the low-fat allocator slightly more expensive per
//!   call than a bump allocator (size-class dispatch + alignment).

/// Per-instruction and per-helper cost constants.
#[derive(Copy, Clone, Debug)]
pub struct CostModel {
    /// Integer/float arithmetic, compares, selects, casts.
    pub arith: u64,
    /// A load that (presumably) hits cache.
    pub load: u64,
    /// A store.
    pub store: u64,
    /// Address computation (`gep`).
    pub gep: u64,
    /// Unconditional branch.
    pub br: u64,
    /// Conditional branch.
    pub condbr: u64,
    /// Per-call fixed overhead (prologue/epilogue, well-predicted).
    pub call: u64,
    /// Additional per-argument move cost.
    pub call_per_arg: u64,
    /// Return.
    pub ret: u64,
    /// Stack allocation (pointer bump).
    pub alloca: u64,
    /// Fixed part of `memcpy`/`memset`.
    pub memop_base: u64,
    /// Per-8-bytes part of `memcpy`/`memset`.
    pub memop_per_word: u64,
    /// Default cost of a host call whose registration does not override it.
    pub host_default: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            arith: 1,
            load: 3,
            store: 3,
            gep: 1,
            br: 1,
            condbr: 2,
            call: 5,
            call_per_arg: 1,
            ret: 1,
            alloca: 2,
            memop_base: 10,
            memop_per_word: 1,
            host_default: 5,
        }
    }
}

/// Costs of the runtime helpers, exported so the instrumentation runtime
/// registers helpers with paper-consistent relative costs.
pub mod helper {
    /// SoftBound dereference check: `ptr < base || ptr+width > bound`
    /// (Figure 2: two compares, an or, a branch).
    pub const SB_CHECK: u64 = 7;
    /// Low-Fat dereference check (Figure 5): region index, size-table load,
    /// base mask, subtract, compare, branch.
    pub const LF_CHECK: u64 = 8;
    /// Low-Fat escape/invariant check (§3.3): same shape as the check.
    pub const LF_INVARIANT: u64 = 8;
    /// Low-Fat base recovery: shift, size-table load, mask.
    pub const LF_BASE: u64 = 5;
    /// Trie lookup of one bounds component: primary-table load, secondary
    /// load, index arithmetic.
    pub const SB_TRIE_GET: u64 = 14;
    /// Trie store of both components incl. secondary-table presence check.
    pub const SB_TRIE_SET: u64 = 18;
    /// Shadow-stack slot read.
    pub const SB_SS_GET: u64 = 4;
    /// Shadow-stack slot write.
    pub const SB_SS_SET: u64 = 4;
    /// Shadow-stack frame push/pop.
    pub const SB_SS_FRAME: u64 = 4;
    /// Bump allocation in the default allocator.
    pub const MALLOC: u64 = 40;
    /// Default-allocator free.
    pub const FREE: u64 = 15;
    /// Low-fat heap allocation: size-class dispatch + free-list pop.
    pub const LF_MALLOC: u64 = 48;
    /// Low-fat free: size-class dispatch + free-list push.
    pub const LF_FREE: u64 = 18;
    /// Low-fat stack allocation (aliased stack bump).
    pub const LF_STACK_ALLOC: u64 = 6;
    /// Low-fat stack save/restore.
    pub const LF_STACK_SAVERESTORE: u64 = 2;
    /// Red-zone (ASan-style) shadow check: shadow load, compare, branch.
    pub const RZ_CHECK: u64 = 5;
    /// Red-zone malloc: padding + shadow poisoning.
    pub const RZ_MALLOC: u64 = 55;
    /// Red-zone free.
    pub const RZ_FREE: u64 = 20;
    /// Red-zone stack allocation (bump + poke shadow).
    pub const RZ_STACK_ALLOC: u64 = 8;
    /// Red-zone stack save/restore.
    pub const RZ_STACK_SAVERESTORE: u64 = 2;
    /// Printing (I/O, identical in all configurations).
    pub const PRINT: u64 = 50;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_consistent_orderings() {
        // Evaluated in a const block so changing the constants breaks the
        // build, not just the test run.
        const {
            // SoftBound checks are cheaper than Low-Fat checks (§5.2, crafty).
            assert!(helper::SB_CHECK < helper::LF_CHECK);
            // Loading bounds from the trie (both components) costs more than
            // recomputing a low-fat base (§5.2, equake).
            assert!(2 * helper::SB_TRIE_GET > helper::LF_BASE);
            // Metadata stores cost at least as much as lookups.
            assert!(helper::SB_TRIE_SET >= helper::SB_TRIE_GET);
        }
    }

    #[test]
    fn default_model_sane() {
        let c = CostModel::default();
        assert!(c.load >= c.arith);
        assert!(c.call > c.br);
    }
}
