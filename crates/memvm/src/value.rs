//! Runtime values.

use mir::types::Type;

/// A runtime value: integers and pointers are raw 64-bit words (narrower
/// integers are stored zero-extended), doubles are `f64`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum RtVal {
    /// Integer or pointer bits.
    Int(u64),
    /// IEEE-754 double.
    Float(f64),
}

impl RtVal {
    /// The integer/pointer bits.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float (a type-confusion bug in the caller).
    pub fn as_int(self) -> u64 {
        match self {
            RtVal::Int(v) => v,
            RtVal::Float(f) => panic!("expected integer value, found float {f}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    pub fn as_float(self) -> f64 {
        match self {
            RtVal::Float(f) => f,
            RtVal::Int(v) => panic!("expected float value, found int {v}"),
        }
    }

    /// Interprets the integer bits as a signed value of integer type `ty`.
    pub fn as_signed(self, ty: &Type) -> i64 {
        let v = self.as_int();
        match ty {
            Type::I1 => (v & 1) as i64,
            Type::I8 => v as u8 as i8 as i64,
            Type::I16 => v as u16 as i16 as i64,
            Type::I32 => v as u32 as i32 as i64,
            _ => v as i64,
        }
    }

    /// Zero-truncates the integer bits to integer type `ty`'s width.
    pub fn truncated(self, ty: &Type) -> RtVal {
        let v = self.as_int();
        let t = match ty {
            Type::I1 => v & 1,
            Type::I8 => v & 0xFF,
            Type::I16 => v & 0xFFFF,
            Type::I32 => v & 0xFFFF_FFFF,
            _ => v,
        };
        RtVal::Int(t)
    }

    /// Raw bit pattern (for `bitcast` and in-memory representation).
    pub fn to_bits(self) -> u64 {
        match self {
            RtVal::Int(v) => v,
            RtVal::Float(f) => f.to_bits(),
        }
    }

    /// Reconstructs a value of type `ty` from raw bits.
    pub fn from_bits(ty: &Type, bits: u64) -> RtVal {
        match ty {
            Type::F64 => RtVal::Float(f64::from_bits(bits)),
            _ => RtVal::Int(bits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_interpretation() {
        assert_eq!(RtVal::Int(0xFF).as_signed(&Type::I8), -1);
        assert_eq!(RtVal::Int(0xFF).as_signed(&Type::I16), 255);
        assert_eq!(RtVal::Int(u64::MAX).as_signed(&Type::I64), -1);
        assert_eq!(RtVal::Int(1).as_signed(&Type::I1), 1);
    }

    #[test]
    fn truncation() {
        assert_eq!(RtVal::Int(0x1FF).truncated(&Type::I8), RtVal::Int(0xFF));
        assert_eq!(RtVal::Int(3).truncated(&Type::I1), RtVal::Int(1));
    }

    #[test]
    fn bit_roundtrip_float() {
        let v = RtVal::Float(std::f64::consts::E);
        let bits = v.to_bits();
        assert_eq!(RtVal::from_bits(&Type::F64, bits), v);
        assert_eq!(RtVal::from_bits(&Type::I64, 42), RtVal::Int(42));
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn type_confusion_panics() {
        let _ = RtVal::Float(1.0).as_int();
    }
}
