//! The bytecode dispatch loop.
//!
//! Executes [`crate::bytecode::BcModule`] programs with semantics
//! byte-identical to the tree-walking interpreter in [`crate::interp`]: the
//! same cost charges in the same order, the same statistics counters, the
//! same trap values and the same `with_frame` provenance annotation points.
//! The walker remains the reference; `tests/vm_backend.rs` holds the two
//! engines equal over the whole corpus.

use std::rc::Rc;

use mir::types::Type;

use crate::bytecode::{BcFunc, BcModule, CallTarget, IdxSpec, MoveEntry, Op, Src, NO_EDGE};
use crate::host::HostCtx;
use crate::interp::{exec_bin, exec_cast, exec_icmp, Trap, TruncIfInt, Vm};
use crate::layout::FUNC_BASE;
use crate::metrics::OpClass;
use crate::value::RtVal;

/// Resolves a pre-compiled operand against the frame. `BadFunc` operands
/// trap lazily, exactly like the walker's evaluation of a `FuncAddr` that
/// names no function.
#[inline(always)]
fn fetch(code: &BcModule, bf: &BcFunc, frame: &[RtVal], s: Src) -> Result<RtVal, Trap> {
    match s {
        Src::Reg(r) => Ok(frame[r as usize]),
        Src::Const(c) => Ok(bf.consts[c as usize]),
        Src::BadFunc(n) => Err(Trap::UnknownFunction(code.names[n as usize].clone())),
    }
}

/// Fetches a call's arguments into `v` (cleared first). The buffer comes
/// from the VM's frame pool so steady-state calls allocate nothing.
fn fetch_args_into(
    code: &BcModule,
    bf: &BcFunc,
    frame: &[RtVal],
    args: &[Src],
    v: &mut Vec<RtVal>,
) -> Result<(), Trap> {
    v.clear();
    for &a in args {
        v.push(fetch(code, bf, frame, a)?);
    }
    Ok(())
}

/// Applies the phi move list of a CFG edge: all reads happen against the
/// pre-edge frame (parallel assignment), buffered through `scratch`. A
/// `Missing` entry raises the walker's "phi without incoming" trap at the
/// same point in evaluation order.
fn run_edge(
    code: &BcModule,
    bf: &BcFunc,
    frame: &mut [RtVal],
    edge: u32,
    scratch: &mut Vec<(u32, RtVal)>,
) -> Result<(), Trap> {
    if edge == NO_EDGE {
        return Ok(());
    }
    // A single move needs no parallel-assignment buffering.
    if let [MoveEntry::Move { dst, src }] = &*bf.edges[edge as usize] {
        frame[*dst as usize] = fetch(code, bf, frame, *src)?;
        return Ok(());
    }
    scratch.clear();
    for m in bf.edges[edge as usize].iter() {
        match m {
            MoveEntry::Move { dst, src } => scratch.push((*dst, fetch(code, bf, frame, *src)?)),
            MoveEntry::Missing(msg) => return Err(Trap::Unsupported(msg.to_string())),
        }
    }
    for &(dst, v) in scratch.iter() {
        frame[dst as usize] = v;
    }
    Ok(())
}

/// Decodes a function address minted as `FUNC_BASE + (fid + 1) * 16`.
fn decode_func_addr(addr: u64, nfuncs: usize) -> Option<usize> {
    if addr <= FUNC_BASE {
        return None;
    }
    let off = addr - FUNC_BASE;
    if !off.is_multiple_of(16) {
        return None;
    }
    let k = off / 16;
    if k >= 1 && k <= nfuncs as u64 {
        Some((k - 1) as usize)
    } else {
        None
    }
}

/// Outcome of a terminator opcode.
enum Flow {
    /// Continue at this opcode index.
    Jump(usize),
    /// Function returned.
    Return(Option<RtVal>),
}

impl Vm {
    /// Executes compiled function `fidx` with `args`, enforcing the same
    /// call-depth limit and stack-pointer save/restore as the walker's
    /// `exec_function`.
    pub(crate) fn exec_bc(
        &mut self,
        code: &Rc<BcModule>,
        fidx: usize,
        args: Vec<RtVal>,
        loc: Option<u32>,
    ) -> Result<Option<RtVal>, Trap> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(Trap::StackOverflow);
        }
        self.call_depth += 1;
        if let Some(s) = &mut self.sampler {
            s.push_id(self.flame_fn_ids[fidx], loc);
        }
        let saved_sp = self.stack_ptr;
        let result = self.exec_bc_inner(code, fidx, args);
        self.stack_ptr = saved_sp;
        self.call_depth -= 1;
        if let Some(s) = &mut self.sampler {
            s.pop();
        }
        result
    }

    fn exec_bc_inner(
        &mut self,
        code: &Rc<BcModule>,
        fidx: usize,
        mut args: Vec<RtVal>,
    ) -> Result<Option<RtVal>, Trap> {
        let code = Rc::clone(code);
        let bf = code.funcs[fidx].as_ref().expect("call into declaration body");
        // Register frames are recycled through `frame_pool`: a trap abandons
        // the frame to the allocator, which is fine because traps always
        // abort the whole execution.
        let mut frame = self.frame_pool.pop().unwrap_or_default();
        frame.clear();
        frame.extend_from_slice(&bf.reg_init);
        for (i, a) in args.drain(..).enumerate() {
            frame[i] = a;
        }
        self.frame_pool.push(args);
        let mut pc = 0usize;
        loop {
            match &bf.ops[pc] {
                Op::Ret { .. } | Op::Br { .. } | Op::CondBr { .. } | Op::Unreachable => {
                    match self.bc_term(&code, bf, &mut frame, pc)? {
                        Flow::Jump(t) => pc = t,
                        Flow::Return(v) => {
                            self.frame_pool.push(frame);
                            return Ok(v);
                        }
                    }
                }
                op @ (Op::CallStatic { .. } | Op::CallIndirect { .. }) => {
                    self.stats.instrs_executed += 1;
                    self.bc_call(&code, bf, &mut frame, op, bf.locs[pc])
                        .map_err(|t| t.with_frame(&bf.name, bf.locs[pc]))?;
                    pc += 1;
                }
                op @ (Op::CallHost { .. }
                | Op::CallUnknown { .. }
                | Op::SbCheck(_)
                | Op::LfCheck(_)
                | Op::RzCheck(_)
                | Op::LfInvariant(_)) => {
                    self.stats.instrs_executed += 1;
                    self.bc_call_leaf(&code, bf, &mut frame, op, bf.locs[pc])
                        .map_err(|t| t.with_frame(&bf.name, bf.locs[pc]))?;
                    pc += 1;
                }
                op => {
                    self.stats.instrs_executed += 1;
                    self.bc_data_hot(&code, bf, &mut frame, op)
                        .map_err(|t| t.with_frame(&bf.name, bf.locs[pc]))?;
                    pc += 1;
                }
            }
        }
    }

    /// The hottest data opcodes, kept behind an `#[inline]` hint so release
    /// builds fold them straight into the dispatch loop while unoptimized
    /// builds keep `exec_bc_inner`'s per-recursion stack frame small.
    /// Everything else falls through to the outlined [`Vm::exec_bc_data`].
    #[inline]
    fn bc_data_hot(
        &mut self,
        code: &BcModule,
        bf: &BcFunc,
        frame: &mut [RtVal],
        op: &Op,
    ) -> Result<(), Trap> {
        match op {
            Op::Load { dst, ty, width, ptr } => {
                self.charge_app(OpClass::Load, self.config.cost.load)?;
                let addr = fetch(code, bf, frame, *ptr)?.as_int();
                let bits = self.mem.read_uint(addr, *width).map_err(Vm::mem_err)?;
                let ty = &bf.types[*ty as usize];
                frame[*dst as usize] = RtVal::from_bits(ty, bits).truncated_if_int(ty);
                Ok(())
            }
            Op::Store { width, ptr, val } => {
                self.charge_app(OpClass::Store, self.config.cost.store)?;
                let addr = fetch(code, bf, frame, *ptr)?.as_int();
                let v = fetch(code, bf, frame, *val)?;
                self.mem.write_uint(addr, *width, v.to_bits()).map_err(Vm::mem_err)
            }
            Op::Bin { dst, op, ty, lhs, rhs } => {
                self.charge_app(OpClass::Bin, self.config.cost.arith)?;
                let a = fetch(code, bf, frame, *lhs)?;
                let b = fetch(code, bf, frame, *rhs)?;
                frame[*dst as usize] = exec_bin(*op, &bf.types[*ty as usize], a, b)?;
                Ok(())
            }
            Op::Icmp { dst, pred, ty, lhs, rhs } => {
                self.charge_app(OpClass::Icmp, self.config.cost.arith)?;
                let a = fetch(code, bf, frame, *lhs)?;
                let b = fetch(code, bf, frame, *rhs)?;
                frame[*dst as usize] =
                    RtVal::Int(exec_icmp(*pred, &bf.types[*ty as usize], a, b) as u64);
                Ok(())
            }
            Op::Gep { dst, base, off, terms } => {
                self.charge_app(OpClass::Gep, self.config.cost.gep)?;
                let mut addr = fetch(code, bf, frame, *base)?.as_int().wrapping_add(*off);
                for t in terms.iter() {
                    let signed = match &t.spec {
                        IdxSpec::RawConst(v) => *v,
                        IdxSpec::Signed(ty) => {
                            fetch(code, bf, frame, t.src)?.as_signed(&bf.types[*ty as usize])
                        }
                        IdxSpec::Unsigned => fetch(code, bf, frame, t.src)?.as_int() as i64,
                    };
                    addr = addr.wrapping_add(signed.wrapping_mul(t.size) as u64);
                }
                frame[*dst as usize] = RtVal::Int(addr);
                Ok(())
            }
            Op::Cast { dst, op, from, to, val } => {
                self.charge_app(OpClass::Cast, self.config.cost.arith)?;
                let v = fetch(code, bf, frame, *val)?;
                frame[*dst as usize] =
                    exec_cast(*op, v, &bf.types[*from as usize], &bf.types[*to as usize]);
                Ok(())
            }
            Op::Select { dst, cond, t, e } => {
                self.charge_app(OpClass::Select, self.config.cost.arith)?;
                let c = fetch(code, bf, frame, *cond)?.as_int();
                let v = if c & 1 != 0 {
                    fetch(code, bf, frame, *t)?
                } else {
                    fetch(code, bf, frame, *e)?
                };
                frame[*dst as usize] = v;
                Ok(())
            }
            Op::Alloca { dst, size, count } => {
                self.charge_app(OpClass::Alloca, self.config.cost.alloca)?;
                let n = fetch(code, bf, frame, *count)?.as_int();
                let total = size.saturating_mul(n.max(1));
                let addr = (self.stack_ptr + 15) & !15;
                self.stack_ptr = addr + total;
                self.mem.map(addr, total);
                frame[*dst as usize] = RtVal::Int(addr);
                Ok(())
            }
            op => self.exec_bc_data(code, bf, frame, op),
        }
    }

    /// Terminator opcodes. The `#[inline]` hint folds them into the
    /// dispatch loop in release builds; unoptimized builds ignore the hint,
    /// keeping the per-recursion stack frame of `exec_bc_inner` small.
    #[inline]
    fn bc_term(
        &mut self,
        code: &BcModule,
        bf: &BcFunc,
        frame: &mut [RtVal],
        pc: usize,
    ) -> Result<Flow, Trap> {
        match &bf.ops[pc] {
            Op::Ret { val } => {
                self.charge_app(OpClass::Ret, self.config.cost.ret)?;
                match val {
                    None => Ok(Flow::Return(None)),
                    Some(s) => Ok(Flow::Return(Some(fetch(code, bf, frame, *s)?))),
                }
            }
            Op::Br { target, edge } => {
                self.charge_app(OpClass::Br, self.config.cost.br)?;
                run_edge(code, bf, frame, *edge, &mut self.phi_scratch)?;
                Ok(Flow::Jump(*target as usize))
            }
            Op::CondBr { cond, tt, te, et, ee } => {
                self.charge_app(OpClass::CondBr, self.config.cost.condbr)?;
                let c = fetch(code, bf, frame, *cond)?.as_int();
                let (t, e) = if c & 1 != 0 { (*tt, *te) } else { (*et, *ee) };
                run_edge(code, bf, frame, e, &mut self.phi_scratch)?;
                Ok(Flow::Jump(t as usize))
            }
            Op::Unreachable => Err(Trap::Unsupported("executed unreachable".into())),
            _ => unreachable!("non-terminator opcode routed to bc_term"),
        }
    }

    /// The two call opcodes that can recurse into `exec_bc`. Only this
    /// function sits on the interpreter recursion path besides
    /// `exec_bc`/`exec_bc_inner`, so its frame is kept deliberately small
    /// (the host-call family lives in [`Vm::bc_call_leaf`]). Keeping it
    /// outlined also keeps the dispatch loop's register pressure low.
    #[inline(never)]
    fn bc_call(
        &mut self,
        code: &Rc<BcModule>,
        bf: &BcFunc,
        frame: &mut [RtVal],
        op: &Op,
        loc: Option<u32>,
    ) -> Result<(), Trap> {
        match op {
            Op::CallStatic { dst, fid, charge, args } => {
                let mut argv = self.frame_pool.pop().unwrap_or_default();
                fetch_args_into(code, bf, frame, args, &mut argv)?;
                self.charge_app(OpClass::Call, *charge)?;
                if let Some(v) = self.exec_bc(code, *fid as usize, argv, loc)? {
                    frame[*dst as usize] = v;
                }
            }
            Op::CallIndirect { dst, void, charge, callee, args } => {
                let target = fetch(code, bf, frame, *callee)?.as_int();
                let fid = decode_func_addr(target, code.funcs.len())
                    .ok_or(Trap::BadIndirectCall(target))?;
                let mut argv = self.frame_pool.pop().unwrap_or_default();
                fetch_args_into(code, bf, frame, args, &mut argv)?;
                match code.targets[fid] {
                    CallTarget::Static(f) => {
                        self.charge_app(OpClass::Call, *charge)?;
                        if let Some(v) = self.exec_bc(code, f as usize, argv, loc)? {
                            frame[*dst as usize] = v;
                        }
                    }
                    CallTarget::Host(h) => {
                        let r = self.bc_host_call(code, h, &argv, loc)?;
                        self.frame_pool.push(argv);
                        if !*void {
                            frame[*dst as usize] = r;
                        }
                    }
                    CallTarget::Unknown(n) => {
                        return Err(Trap::UnknownFunction(code.names[n as usize].clone()));
                    }
                }
            }
            _ => unreachable!("non-recursing opcode routed to bc_call"),
        }
        Ok(())
    }

    /// Host calls, specialized checks, and unknown-function calls: none of
    /// these re-enter `exec_bc`, so their (larger) frame pops before any
    /// deeper interpreter recursion. Outlined for the same register-pressure
    /// reason as [`Vm::bc_call`].
    #[inline(never)]
    fn bc_call_leaf(
        &mut self,
        code: &BcModule,
        bf: &BcFunc,
        frame: &mut [RtVal],
        op: &Op,
        loc: Option<u32>,
    ) -> Result<(), Trap> {
        match op {
            Op::CallHost { dst, host, void, args } => {
                let mut argv = self.frame_pool.pop().unwrap_or_default();
                fetch_args_into(code, bf, frame, args, &mut argv)?;
                let r = self.bc_host_call(code, *host, &argv, loc)?;
                self.frame_pool.push(argv);
                if !*void {
                    frame[*dst as usize] = r;
                }
            }
            Op::SbCheck(c) | Op::LfCheck(c) | Op::RzCheck(c) | Op::LfInvariant(c) => {
                let mut buf = [RtVal::Int(0); 5];
                let n = c.n as usize;
                for (slot, &a) in buf[..n].iter_mut().zip(c.args.iter()) {
                    *slot = fetch(code, bf, frame, a)?;
                }
                self.bc_host_call(code, c.host, &buf[..n], loc)?;
            }
            Op::CallUnknown { name, args } => {
                // The walker evaluates the arguments first (they may trap),
                // then fails the by-name dispatch.
                for &a in args.iter() {
                    fetch(code, bf, frame, a)?;
                }
                return Err(Trap::UnknownFunction(code.names[*name as usize].clone()));
            }
            _ => unreachable!("non-host opcode routed to bc_call_leaf"),
        }
        Ok(())
    }

    /// Invokes host-pool entry `h`, then applies the walker's post-call cost
    /// check (host functions charge through `HostCtx` without a limit check;
    /// the dispatcher enforces the budget afterwards). The cost_total delta
    /// across the invocation is attributed to the entry's pre-computed
    /// [`OpClass`], and the sampler ticks once with a synthetic host frame
    /// pushed — the exact sequence of the walker's `dispatch_call`.
    fn bc_host_call(
        &mut self,
        code: &BcModule,
        h: u32,
        argv: &[RtVal],
        loc: Option<u32>,
    ) -> Result<RtVal, Trap> {
        let hf = &code.hosts[h as usize];
        let class = code.host_classes[h as usize];
        if let Some(s) = &mut self.sampler {
            s.push_id(self.flame_host_ids[h as usize], loc);
        }
        let before = self.stats.cost_total;
        let r = {
            let mut ctx = HostCtx {
                mem: &mut self.mem,
                stats: &mut self.stats,
                out: &mut self.out,
                profile: &mut self.profile,
            };
            hf(&mut ctx, argv)
        };
        self.op_metrics.record(class, self.stats.cost_total - before);
        if let Some(s) = &mut self.sampler {
            if self.stats.cost_total >= self.flame_next_at {
                self.flame_next_at = s.sample_until(self.flame_next_at, self.stats.cost_total);
            }
            s.pop();
        }
        let r = r?;
        if self.stats.cost_total >= self.poll_next_at {
            self.poll_budget()?;
        }
        if self.stats.cost_total > self.config.max_cost {
            return Err(Trap::CostLimit);
        }
        Ok(r)
    }

    /// The colder data opcodes (the hot ones live in [`Vm::bc_data_hot`]),
    /// one arm per walker `exec_data_instr` arm, preserving its
    /// charge/evaluate/act ordering exactly.
    #[inline(never)]
    fn exec_bc_data(
        &mut self,
        code: &BcModule,
        bf: &BcFunc,
        frame: &mut [RtVal],
        op: &Op,
    ) -> Result<(), Trap> {
        let cost = self.config.cost;
        match op {
            Op::GepDyn { dst, elem_ty, base, indices } => {
                self.charge_app(OpClass::Gep, cost.gep)?;
                let mut addr = fetch(code, bf, frame, *base)?.as_int();
                let mut cur_ty = bf.types[*elem_ty as usize].clone();
                for (i, (src, spec)) in indices.iter().enumerate() {
                    let signed = match spec {
                        IdxSpec::RawConst(v) => *v,
                        IdxSpec::Signed(ty) => {
                            fetch(code, bf, frame, *src)?.as_signed(&bf.types[*ty as usize])
                        }
                        IdxSpec::Unsigned => fetch(code, bf, frame, *src)?.as_int() as i64,
                    };
                    if i == 0 {
                        addr =
                            addr.wrapping_add(signed.wrapping_mul(cur_ty.size_of() as i64) as u64);
                    } else {
                        match &cur_ty {
                            Type::Struct(_) => {
                                let fi = signed as usize;
                                addr = addr.wrapping_add(cur_ty.field_offset(fi));
                                cur_ty = cur_ty.element_type(fi).clone();
                            }
                            Type::Array(elem, _) => {
                                addr =
                                    addr.wrapping_add(
                                        signed.wrapping_mul(elem.size_of() as i64) as u64
                                    );
                                cur_ty = (**elem).clone();
                            }
                            other => {
                                return Err(Trap::Unsupported(format!(
                                    "gep step into non-aggregate {other}"
                                )))
                            }
                        }
                    }
                }
                frame[*dst as usize] = RtVal::Int(addr);
            }
            Op::Fcmp { dst, pred, lhs, rhs } => {
                self.charge_app(OpClass::Fcmp, cost.arith)?;
                let a = fetch(code, bf, frame, *lhs)?.as_float();
                let b = fetch(code, bf, frame, *rhs)?.as_float();
                let r = match pred {
                    mir::instr::FcmpPred::Oeq => a == b,
                    mir::instr::FcmpPred::One => a != b,
                    mir::instr::FcmpPred::Olt => a < b,
                    mir::instr::FcmpPred::Ole => a <= b,
                    mir::instr::FcmpPred::Ogt => a > b,
                    mir::instr::FcmpPred::Oge => a >= b,
                };
                frame[*dst as usize] = RtVal::Int(r as u64);
            }
            Op::MemCpy { dst, src, len } => {
                let d = fetch(code, bf, frame, *dst)?.as_int();
                let s = fetch(code, bf, frame, *src)?.as_int();
                let n = fetch(code, bf, frame, *len)?.as_int();
                self.charge_app(OpClass::MemCpy, cost.memop_base + (n / 8) * cost.memop_per_word)?;
                self.mem.copy(d, s, n).map_err(Vm::mem_err)?;
            }
            Op::MemSet { dst, byte, len } => {
                let d = fetch(code, bf, frame, *dst)?.as_int();
                let b = fetch(code, bf, frame, *byte)?.as_int() as u8;
                let n = fetch(code, bf, frame, *len)?.as_int();
                self.charge_app(OpClass::MemSet, cost.memop_base + (n / 8) * cost.memop_per_word)?;
                self.mem.fill(d, b, n).map_err(Vm::mem_err)?;
            }
            Op::Nop => {}
            Op::TrapUnsupported { charge, class, pre, msg } => {
                self.charge_app(*class, *charge)?;
                for &s in pre.iter() {
                    fetch(code, bf, frame, s)?;
                }
                return Err(Trap::Unsupported(msg.to_string()));
            }
            _ => unreachable!("call/terminator/hot opcode routed to exec_bc_data"),
        }
        Ok(())
    }
}
