//! Sparse memory with lazy page materialization.
//!
//! Mapped-ness is tracked as a set of byte intervals; backing pages are
//! materialized only on first write (reads from mapped-but-untouched memory
//! return zeros). This makes multi-GiB allocations — like the > 1 GiB
//! array of the paper's `429mcf` discussion — free until touched, while
//! still faulting on accesses outside any mapping, mirroring a hardware
//! page fault. Out-of-bounds accesses that stay within mapped intervals
//! succeed silently — the behaviour memory-safety instrumentations exist
//! to catch.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::layout::PAGE_SIZE;

/// Multiplicative hasher for page-base keys. Page bases are already
/// well-distributed u64s; a Fibonacci multiply beats SipHash on the
/// per-access page lookup without any collision pathology (keys come
/// from the VM's own allocators, not an adversary).
#[derive(Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn finish(&self) -> u64 {
        // Mix the high bits down: HashMap keys buckets on the low bits.
        self.0 ^ (self.0 >> 32)
    }
}

/// Number of direct-mapped hot-page slots (power of two).
const HOT_SLOTS: usize = 16;

/// A sparse memory with interval-tracked mappings.
pub struct Memory {
    /// Direct-mapped cache of recently accessed materialized pages, held
    /// *out of* `pages`: repeated accesses to the same few pages (the
    /// common pattern in loops, and in an instrumentation's data/shadow
    /// interleave) skip the hash lookup entirely. Invariant: a page lives
    /// either in its slot here or in `pages`, never both.
    hot: [Option<(u64, Box<[u8]>)>; HOT_SLOTS],
    /// Materialized pages (page base → bytes), minus the `hot` slots.
    pages: HashMap<u64, Box<[u8]>, BuildHasherDefault<PageHasher>>,
    /// Mapped intervals: start → end (exclusive), non-overlapping, merged.
    ranges: BTreeMap<u64, u64>,
    mapped_bytes: u64,
    /// Hot-slot fast-path accesses (single-page access found in its slot).
    cache_hits: u64,
    /// Accesses that had to promote a page out of the hash map.
    cache_misses: u64,
    /// Promotions that evicted a previous occupant back into the map.
    cache_demotions: u64,
    /// Pages created on first write.
    pages_materialized: u64,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            hot: std::array::from_fn(|_| None),
            pages: HashMap::default(),
            ranges: BTreeMap::new(),
            mapped_bytes: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_demotions: 0,
            pages_materialized: 0,
        }
    }
}

/// Snapshot of [`Memory`]'s hot-page cache effectiveness counters.
///
/// *Hits* count accesses served by the direct-mapped hot-slot fast path;
/// *misses* count accesses that found their page in the hash map and
/// promoted it; *demotions* count promotions that evicted a slot's previous
/// occupant. Accesses to mapped-but-unmaterialized memory are neither hits
/// nor misses (there is nothing cached to find), and multi-page accesses
/// bypass the cache entirely. Because both VM backends perform identical
/// access sequences, these counters are deterministic and backend-invariant.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Hot-slot fast-path accesses.
    pub cache_hits: u64,
    /// Accesses that promoted a page from the hash map into a slot.
    pub cache_misses: u64,
    /// Promotions that demoted a previous slot occupant.
    pub cache_demotions: u64,
    /// Pages materialized on first write.
    pub pages_materialized: u64,
}

/// Error for accesses to unmapped addresses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// The faulting address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u64,
    /// Whether the access was a write.
    pub write: bool,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// Maps `[addr, addr+len)`, rounded out to page boundaries. Mapping is
    /// idempotent and never clears existing contents.
    pub fn map(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let start = Self::page_base(addr);
        let end = Self::page_base(addr.saturating_add(len - 1)) + PAGE_SIZE;
        self.insert_range(start, end);
    }

    fn insert_range(&mut self, mut start: u64, mut end: u64) {
        // Merge with any overlapping or adjacent intervals.
        loop {
            let mut merged = false;
            // Predecessor that might overlap/touch.
            if let Some((&s, &e)) = self.ranges.range(..=end).next_back() {
                if e >= start && !(s <= start && e >= end) {
                    start = start.min(s);
                    end = end.max(e);
                    self.ranges.remove(&s);
                    self.mapped_bytes -= e - s;
                    merged = true;
                } else if s <= start && e >= end {
                    return; // fully covered
                }
            }
            if !merged {
                break;
            }
        }
        self.ranges.insert(start, end);
        self.mapped_bytes += end - start;
    }

    /// Whether every byte of `[addr, addr+len)` is mapped.
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = match addr.checked_add(len) {
            Some(e) => e,
            None => return false,
        };
        let mut cur = addr;
        while cur < end {
            match self.ranges.range(..=cur).next_back() {
                Some((&_s, &e)) if e > cur => cur = e,
                _ => return false,
            }
        }
        true
    }

    /// Total mapped bytes (memory-overhead reporting).
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// Snapshot of the hot-page cache effectiveness counters.
    pub fn counters(&self) -> MemCounters {
        MemCounters {
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_demotions: self.cache_demotions,
            pages_materialized: self.pages_materialized,
        }
    }

    /// The direct-mapped `hot` slot for a page base.
    #[inline]
    fn slot_of(base: u64) -> usize {
        ((base / PAGE_SIZE) as usize) & (HOT_SLOTS - 1)
    }

    /// Promotes the materialized page at `base` into its `hot` slot,
    /// demoting the slot's current occupant back into `pages`. Returns
    /// `false` when `base` has no materialized page anywhere.
    #[inline]
    fn promote(&mut self, base: u64) -> bool {
        match self.pages.remove(&base) {
            Some(page) => {
                self.cache_misses += 1;
                let slot = &mut self.hot[Self::slot_of(base)];
                if let Some((old_base, old_page)) = slot.take() {
                    self.cache_demotions += 1;
                    self.pages.insert(old_base, old_page);
                }
                *slot = Some((base, page));
                true
            }
            None => false,
        }
    }

    /// The materialized page at `base` (hot slot or map), if any.
    #[inline]
    fn page(&self, base: u64) -> Option<&[u8]> {
        match &self.hot[Self::slot_of(base)] {
            Some((b, page)) if *b == base => Some(page),
            _ => self.pages.get(&base).map(|p| &**p),
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Fault> {
        // Fast path: the access sits inside one already-materialized
        // page. Pages only materialize inside mapped intervals (there is
        // no unmap), so a materialized page proves mapped-ness without
        // consulting the interval set.
        let base = Self::page_base(addr);
        let off = (addr - base) as usize;
        if off + buf.len() <= PAGE_SIZE as usize {
            match &self.hot[Self::slot_of(base)] {
                Some((b, page)) if *b == base => {
                    buf.copy_from_slice(&page[off..off + buf.len()]);
                    self.cache_hits += 1;
                    return Ok(());
                }
                _ => {
                    if self.promote(base) {
                        let (_, page) =
                            self.hot[Self::slot_of(base)].as_ref().expect("just promoted");
                        buf.copy_from_slice(&page[off..off + buf.len()]);
                        return Ok(());
                    }
                }
            }
        }
        if !self.is_mapped(addr, buf.len() as u64) {
            return Err(Fault { addr, width: buf.len() as u64, write: false });
        }
        let mut a = addr;
        let mut i = 0;
        while i < buf.len() {
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - i);
            match self.page(base) {
                Some(page) => buf[i..i + n].copy_from_slice(&page[off..off + n]),
                None => buf[i..i + n].fill(0), // mapped but untouched
            }
            a += n as u64;
            i += n;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), Fault> {
        // Fast path: same single-materialized-page shortcut as `read`.
        let base = Self::page_base(addr);
        let off = (addr - base) as usize;
        if off + buf.len() <= PAGE_SIZE as usize {
            match &mut self.hot[Self::slot_of(base)] {
                Some((b, page)) if *b == base => {
                    page[off..off + buf.len()].copy_from_slice(buf);
                    self.cache_hits += 1;
                    return Ok(());
                }
                _ => {
                    if self.promote(base) {
                        let (_, page) =
                            self.hot[Self::slot_of(base)].as_mut().expect("just promoted");
                        page[off..off + buf.len()].copy_from_slice(buf);
                        return Ok(());
                    }
                }
            }
        }
        if !self.is_mapped(addr, buf.len() as u64) {
            return Err(Fault { addr, width: buf.len() as u64, write: true });
        }
        let mut a = addr;
        let mut i = 0;
        while i < buf.len() {
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - i);
            // Route around the hot slots so a page never exists twice.
            let page = match &mut self.hot[Self::slot_of(base)] {
                Some((b, page)) if *b == base => page,
                _ => {
                    let materialized = &mut self.pages_materialized;
                    self.pages.entry(base).or_insert_with(|| {
                        *materialized += 1;
                        vec![0u8; PAGE_SIZE as usize].into_boxed_slice()
                    })
                }
            };
            page[off..off + n].copy_from_slice(&buf[i..i + n]);
            a += n as u64;
            i += n;
        }
        Ok(())
    }

    /// Reads a little-endian unsigned integer of `width` bytes (1..=8).
    pub fn read_uint(&mut self, addr: u64, width: u64) -> Result<u64, Fault> {
        // Width-specialized hot-slot path: fixed-size slice conversions
        // compile to single loads, unlike the variable-length copy in the
        // generic `read`.
        let base = Self::page_base(addr);
        let off = (addr - base) as usize;
        if off + width as usize <= PAGE_SIZE as usize {
            if let Some((b, page)) = &self.hot[Self::slot_of(base)] {
                if *b == base {
                    let v =
                        match width {
                            8 => u64::from_le_bytes(page[off..off + 8].try_into().expect("width")),
                            4 => u32::from_le_bytes(page[off..off + 4].try_into().expect("width"))
                                as u64,
                            2 => u16::from_le_bytes(page[off..off + 2].try_into().expect("width"))
                                as u64,
                            1 => page[off] as u64,
                            w => {
                                let mut buf = [0u8; 8];
                                buf[..w as usize].copy_from_slice(&page[off..off + w as usize]);
                                u64::from_le_bytes(buf)
                            }
                        };
                    self.cache_hits += 1;
                    return Ok(v);
                }
            }
        }
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..width as usize])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian unsigned integer of `width` bytes (1..=8).
    pub fn write_uint(&mut self, addr: u64, width: u64, value: u64) -> Result<(), Fault> {
        // Same width specialization as `read_uint`, on the mutable slot.
        let base = Self::page_base(addr);
        let off = (addr - base) as usize;
        if off + width as usize <= PAGE_SIZE as usize {
            if let Some((b, page)) = &mut self.hot[Self::slot_of(base)] {
                if *b == base {
                    match width {
                        8 => page[off..off + 8].copy_from_slice(&value.to_le_bytes()),
                        4 => page[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes()),
                        2 => page[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
                        1 => page[off] = value as u8,
                        w => {
                            let bytes = value.to_le_bytes();
                            page[off..off + w as usize].copy_from_slice(&bytes[..w as usize]);
                        }
                    }
                    self.cache_hits += 1;
                    return Ok(());
                }
            }
        }
        let bytes = value.to_le_bytes();
        self.write(addr, &bytes[..width as usize])
    }

    /// Copies `len` bytes from `src` to `dst` (regions may overlap).
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), Fault> {
        let mut buf = vec![0u8; len as usize];
        self.read(src, &mut buf)?;
        self.write(dst, &buf)
    }

    /// Fills `len` bytes at `dst` with `byte`.
    pub fn fill(&mut self, dst: u64, byte: u8, len: u64) -> Result<(), Fault> {
        let buf = vec![byte; len as usize];
        self.write(dst, &buf)
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("materialized_pages", &(self.pages.len() + self.hot.iter().flatten().count()))
            .field("mapped_bytes", &self.mapped_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_page() {
        let mut m = Memory::new();
        m.map(0x1000, 64);
        m.write_uint(0x1008, 8, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(m.read_uint(0x1008, 8).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(m.read_uint(0x1000, 4).unwrap(), 0);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.map(0x1FF8, 16);
        m.write_uint(0x1FFC, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_uint(0x1FFC, 8).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 8);
        assert!(m.read_uint(0x5000, 8).is_err());
        let f = m.write_uint(0x5000, 8, 1).unwrap_err();
        assert!(f.write);
    }

    #[test]
    fn access_straddling_mapping_end_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 8); // maps the whole page 0x1000..0x2000
        assert!(m.read_uint(0x1FFC, 8).is_err(), "crosses into unmapped 0x2000");
    }

    #[test]
    fn oob_within_mapped_page_succeeds() {
        let mut m = Memory::new();
        m.map(0x1000, 16);
        assert!(m.write_uint(0x1100, 8, 7).is_ok());
    }

    #[test]
    fn huge_mapping_is_lazy() {
        let mut m = Memory::new();
        m.map(0x10_0000_0000, 2 << 30); // 2 GiB
        assert_eq!(m.mapped_bytes(), 2 << 30);
        // Untouched reads are zero and materialize nothing.
        assert_eq!(m.read_uint(0x10_4000_0000, 8).unwrap(), 0);
        assert_eq!(m.pages.len(), 0);
        m.write_uint(0x10_4000_0000, 8, 5).unwrap();
        assert_eq!(m.pages.len(), 1);
        assert_eq!(m.read_uint(0x10_4000_0000, 8).unwrap(), 5);
    }

    #[test]
    fn narrow_widths() {
        let mut m = Memory::new();
        m.map(0x1000, 16);
        m.write_uint(0x1000, 1, 0xAB).unwrap();
        m.write_uint(0x1001, 2, 0xCDEF).unwrap();
        assert_eq!(m.read_uint(0x1000, 1).unwrap(), 0xAB);
        assert_eq!(m.read_uint(0x1001, 2).unwrap(), 0xCDEF);
        assert_eq!(m.read_uint(0x1000, 4).unwrap(), 0x00CD_EFAB);
    }

    #[test]
    fn copy_and_fill() {
        let mut m = Memory::new();
        m.map(0x1000, 64);
        m.write(0x1000, b"hello world!").unwrap();
        m.copy(0x1020, 0x1000, 12).unwrap();
        let mut buf = [0u8; 12];
        m.read(0x1020, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world!");
        m.fill(0x1000, 0xFF, 4).unwrap();
        assert_eq!(m.read_uint(0x1000, 4).unwrap(), 0xFFFF_FFFF);
    }

    #[test]
    fn overlapping_copy() {
        let mut m = Memory::new();
        m.map(0x1000, 32);
        m.write(0x1000, b"abcdef").unwrap();
        m.copy(0x1002, 0x1000, 6).unwrap();
        let mut buf = [0u8; 8];
        m.read(0x1000, &mut buf).unwrap();
        assert_eq!(&buf, b"ababcdef");
    }

    #[test]
    fn map_is_idempotent() {
        let mut m = Memory::new();
        m.map(0x1000, 8);
        m.write_uint(0x1000, 8, 42).unwrap();
        m.map(0x1000, 4096);
        assert_eq!(m.read_uint(0x1000, 8).unwrap(), 42);
    }

    #[test]
    fn interval_merging() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE);
        m.map(0x2000, PAGE_SIZE);
        m.map(0x5000, PAGE_SIZE);
        assert_eq!(m.ranges.len(), 2, "adjacent ranges merged");
        assert_eq!(m.mapped_bytes(), 3 * PAGE_SIZE);
        assert!(m.is_mapped(0x1000, 2 * PAGE_SIZE));
        assert!(!m.is_mapped(0x1000, 5 * PAGE_SIZE));
        // Overlapping remap keeps accounting correct.
        m.map(0x1800, 2 * PAGE_SIZE);
        assert_eq!(m.mapped_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn mapped_bytes_accounting() {
        let mut m = Memory::new();
        m.map(0, 1);
        assert_eq!(m.mapped_bytes(), PAGE_SIZE);
        m.map(0, PAGE_SIZE + 1);
        assert_eq!(m.mapped_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn cache_counters_track_crafted_pattern() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE);
        assert_eq!(m.counters(), MemCounters::default());

        // First write: the page is not yet materialized anywhere, so the
        // access is neither a hit nor a miss — it materializes the page
        // into the hash map (the hot slot stays empty).
        m.write_uint(0x1000, 8, 1).unwrap();
        assert_eq!(
            m.counters(),
            MemCounters {
                cache_hits: 0,
                cache_misses: 0,
                cache_demotions: 0,
                pages_materialized: 1
            }
        );

        // The next access finds the page in the map and promotes it: a miss.
        assert_eq!(m.read_uint(0x1000, 8).unwrap(), 1);
        assert_eq!(m.counters().cache_misses, 1);
        assert_eq!(m.counters().cache_hits, 0);

        // Repeated accesses to the promoted page are hot-slot hits.
        for _ in 0..10 {
            m.read_uint(0x1000, 8).unwrap();
        }
        m.write_uint(0x1000, 4, 7).unwrap();
        let c = m.counters();
        assert_eq!(c.cache_hits, 11);
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_demotions, 0);

        // A page HOT_SLOTS pages away maps to the same direct-mapped slot:
        // promoting it demotes the first page, and touching the first page
        // again demotes the second right back.
        let conflict = 0x1000 + HOT_SLOTS as u64 * PAGE_SIZE;
        m.map(conflict, PAGE_SIZE);
        m.write_uint(conflict, 8, 2).unwrap(); // materializes, slot untouched
        m.read_uint(conflict, 8).unwrap(); // miss + demotion of 0x1000's page
        let c = m.counters();
        assert_eq!(c.pages_materialized, 2);
        assert_eq!(c.cache_misses, 2);
        assert_eq!(c.cache_demotions, 1);
        m.read_uint(0x1000, 8).unwrap(); // miss + demotion of the conflict page
        let c = m.counters();
        assert_eq!(c.cache_misses, 3);
        assert_eq!(c.cache_demotions, 2);
    }
}
