//! Address-space layout of the virtual machine.
//!
//! The 64-bit address space is carved into coarse areas. The low part
//! (`0x1_0000_0000` … `0x1C_0000_0000`) is deliberately left to the Low-Fat
//! runtime, which partitions it into size-class regions of
//! [`REGION_BYTES`] each (cf. Figure 3 of the paper); everything the default
//! runtime allocates lives far above, so a pointer's high bits immediately
//! reveal whether it is low-fat.

/// Bytes per low-fat region (also the region-index shift): 4 GiB.
pub const REGION_BYTES: u64 = 1 << 32;

/// Base of the area where global variables are placed by default.
pub const GLOBAL_BASE: u64 = 0xD000_0000_0000;

/// Base of the default (non-low-fat) heap.
pub const HEAP_BASE: u64 = 0xE000_0000_0000;

/// Base of the call-stack area used by `alloca`.
pub const STACK_BASE: u64 = 0xF000_0000_0000;

/// Base of the fake "function address" area used for indirect calls; never
/// mapped as data.
pub const FUNC_BASE: u64 = 0xC000_0000_0000;

/// Size of one VM page.
pub const PAGE_SIZE: u64 = 4096;

/// The region index of an address (`addr / REGION_BYTES`).
#[inline]
pub fn region_index(addr: u64) -> u64 {
    addr >> 32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_are_disjoint_regions() {
        assert!(region_index(GLOBAL_BASE) > 27);
        assert!(region_index(HEAP_BASE) > 27);
        assert!(region_index(STACK_BASE) > 27);
        assert!(region_index(FUNC_BASE) > 27);
        assert_ne!(region_index(GLOBAL_BASE), region_index(HEAP_BASE));
        assert_ne!(region_index(HEAP_BASE), region_index(STACK_BASE));
    }

    #[test]
    fn region_math() {
        assert_eq!(region_index(0), 0);
        assert_eq!(region_index(REGION_BYTES), 1);
        assert_eq!(region_index(5 * REGION_BYTES + 123), 5);
    }
}
