//! A register-based bytecode lowering of [`mir`] for the VM.
//!
//! The tree-walking interpreter in [`crate::interp`] re-resolves every
//! operand, callee name, and type on every executed instruction. This module
//! lowers a loaded module to a dense register-based bytecode once, ahead of
//! execution:
//!
//! * operand references become pre-resolved register/constant-pool indices
//!   ([`Src`]); global and function addresses, integer/float literals and
//!   `undef` values are folded into a per-function constant pool;
//! * control flow is flattened to opcode indices, with per-CFG-edge phi
//!   move lists replacing per-block-entry phi scans;
//! * call targets are resolved at compile time (defined function, host
//!   function, or unknown), and the four per-mechanism check helpers
//!   (`__sb_check`, `__lf_check`, `__rz_check`, `__lf_invariant`) are
//!   specialized into dedicated opcodes carrying their check-site IDs;
//! * `gep` chains with constant indices fold into a single byte offset plus
//!   a list of scaled dynamic terms.
//!
//! The bytecode preserves the walker's semantics *exactly* — the same cost
//! charges in the same order, the same statistics counters, the same trap
//! values and provenance annotations. `tests/vm_backend.rs` enforces this
//! byte-for-byte over the whole corpus; the walker remains the reference
//! semantics.
//!
//! Compiled code can be disassembled to a stable textual form
//! ([`BcModule::disassemble`]) and parsed back ([`parse_bytecode`]), which
//! the property tests use to check the encoding round-trips. A parsed
//! module carries no host-function closures and therefore cannot be
//! executed; it exists for structural comparison only.

use std::collections::HashMap;
use std::fmt::Write as _;

use mir::instr::{BinOp, CastOp, FcmpPred, IcmpPred, InstrKind, Operand, Terminator};
use mir::module::Module;
use mir::types::Type;

use crate::cost::CostModel;
use crate::host::{HostFn, HostRegistry};
use crate::metrics::{classify_host, OpClass};
use crate::value::RtVal;

/// Which execution engine [`crate::Vm::run`] uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum VmBackend {
    /// The tree-walking interpreter: the reference semantics.
    Walk,
    /// The compiled register bytecode (default): byte-identical results,
    /// several times faster.
    #[default]
    Bytecode,
}

impl VmBackend {
    /// The flag spelling (`walk` / `bytecode`).
    pub fn name(self) -> &'static str {
        match self {
            VmBackend::Walk => "walk",
            VmBackend::Bytecode => "bytecode",
        }
    }
}

impl std::fmt::Display for VmBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for VmBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<VmBackend, String> {
        match s {
            "walk" | "walker" | "tree" => Ok(VmBackend::Walk),
            "bytecode" | "bc" => Ok(VmBackend::Bytecode),
            other => Err(format!("unknown VM backend `{other}` (expected walk|bytecode)")),
        }
    }
}

/// A pre-resolved operand: a register, a constant-pool slot, or a reference
/// to an unknown function name (which traps lazily, like the walker's
/// operand evaluation does).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Src {
    /// Frame register (the SSA value index).
    Reg(u32),
    /// Per-function constant-pool index.
    Const(u32),
    /// Module-level name-pool index of a `FuncAddr` operand that names no
    /// function; fetching it raises `Trap::UnknownFunction`.
    BadFunc(u32),
}

/// How a dynamic `gep` index is converted to a signed offset factor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IdxSpec {
    /// Constant index: the raw literal value (the walker ignores the
    /// constant's declared type here).
    RawConst(i64),
    /// SSA value: sign-extend from its declared type.
    Signed(u32),
    /// Any other operand: reinterpret the 64-bit value as signed.
    Unsigned,
}

/// One dynamic term of a folded `gep`: `addr += signed(src) * size`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GepTerm {
    /// The index operand.
    pub src: Src,
    /// Signedness interpretation of the fetched value.
    pub spec: IdxSpec,
    /// Element size the index scales by.
    pub size: i64,
}

/// One entry of a phi move list for a CFG edge.
#[derive(Clone, PartialEq, Debug)]
pub enum MoveEntry {
    /// Parallel assignment `reg[dst] = src` (reads happen before writes).
    Move {
        /// Destination register.
        dst: u32,
        /// Source operand, read against the pre-edge frame.
        src: Src,
    },
    /// A phi with no incoming value for this edge: taking the edge traps
    /// with this message (matching the walker).
    Missing(Box<str>),
}

/// Sentinel for "no phi moves on this edge".
pub const NO_EDGE: u32 = u32::MAX;

/// Sentinel check-site ID for check calls whose site argument is absent or
/// not a constant.
pub const NO_SITE: u32 = u32::MAX;

/// Payload shared by the four specialized check opcodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckOp {
    /// Host-pool index of the registered check helper.
    pub host: u32,
    /// Fixed argument slots (only the first `n` are used).
    pub args: [Src; 5],
    /// Number of arguments actually passed.
    pub n: u8,
    /// Pre-decoded check-site ID ([`NO_SITE`] when absent).
    pub site: u32,
}

/// A bytecode operation.
///
/// Data opcodes replicate the walker's per-instruction behaviour (same cost
/// charge, same operand evaluation order, same trap). Terminator opcodes
/// (`Ret`/`Br`/`CondBr`/`Unreachable`) do not count toward
/// `instrs_executed`, exactly like walker terminators.
#[allow(missing_docs)] // field names mirror the mir instruction set
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// Stack allocation; `size` is the pre-computed `max(size_of(ty), 1)`.
    Alloca {
        dst: u32,
        size: u64,
        count: Src,
    },
    /// Scalar load; `ty` indexes the function type pool.
    Load {
        dst: u32,
        ty: u32,
        width: u64,
        ptr: Src,
    },
    /// Scalar store (evaluates `ptr` before `val`, like the walker).
    Store {
        width: u64,
        ptr: Src,
        val: Src,
    },
    /// Folded address computation: `dst = base + off + Σ signed(term)`.
    Gep {
        dst: u32,
        base: Src,
        off: u64,
        terms: Box<[GepTerm]>,
    },
    /// Generic `gep` fallback for chains with dynamic struct indices;
    /// walks the type at runtime exactly like the interpreter.
    GepDyn {
        dst: u32,
        elem_ty: u32,
        base: Src,
        indices: Box<[(Src, IdxSpec)]>,
    },
    /// `dst = cond ? t : e`; only the taken arm is fetched.
    Select {
        dst: u32,
        cond: Src,
        t: Src,
        e: Src,
    },
    Bin {
        dst: u32,
        op: BinOp,
        ty: u32,
        lhs: Src,
        rhs: Src,
    },
    Icmp {
        dst: u32,
        pred: IcmpPred,
        ty: u32,
        lhs: Src,
        rhs: Src,
    },
    Fcmp {
        dst: u32,
        pred: FcmpPred,
        lhs: Src,
        rhs: Src,
    },
    Cast {
        dst: u32,
        op: CastOp,
        from: u32,
        to: u32,
        val: Src,
    },
    /// Call of a defined function, with the call cost pre-computed.
    CallStatic {
        dst: u32,
        fid: u32,
        charge: u64,
        args: Box<[Src]>,
    },
    /// Call of a registered host function.
    CallHost {
        dst: u32,
        host: u32,
        void: bool,
        args: Box<[Src]>,
    },
    /// Specialized `__sb_check` call site.
    SbCheck(CheckOp),
    /// Specialized `__lf_check` call site.
    LfCheck(CheckOp),
    /// Specialized `__rz_check` call site.
    RzCheck(CheckOp),
    /// Specialized `__lf_invariant` call site.
    LfInvariant(CheckOp),
    /// Call of a name that is neither defined nor a host function: evaluates
    /// the arguments (they may trap first), then raises `UnknownFunction`.
    CallUnknown {
        name: u32,
        args: Box<[Src]>,
    },
    /// Indirect call; the per-function-ID dispatch targets live in
    /// [`BcModule::targets`].
    CallIndirect {
        dst: u32,
        void: bool,
        charge: u64,
        callee: Src,
        args: Box<[Src]>,
    },
    MemCpy {
        dst: Src,
        src: Src,
        len: Src,
    },
    MemSet {
        dst: Src,
        byte: Src,
        len: Src,
    },
    Nop,
    /// An instruction known at compile time to trap `Unsupported`: charges
    /// `charge`, fetches `pre` (preserving any earlier operand trap), then
    /// raises the message.
    TrapUnsupported {
        charge: u64,
        class: OpClass,
        pre: Box<[Src]>,
        msg: Box<str>,
    },
    /// Return (charges `ret`, then evaluates the operand).
    Ret {
        val: Option<Src>,
    },
    /// Unconditional branch to opcode index `target`, running edge `edge`.
    Br {
        target: u32,
        edge: u32,
    },
    /// Conditional branch (charges, evaluates `cond`, runs the taken edge).
    CondBr {
        cond: Src,
        tt: u32,
        te: u32,
        et: u32,
        ee: u32,
    },
    Unreachable,
}

/// The dispatch target an indirect call through a function's address
/// resolves to (mirrors the walker's by-name dispatch, including its
/// behaviour for duplicate names).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CallTarget {
    /// A defined function.
    Static(u32),
    /// A host function (host-pool index).
    Host(u32),
    /// Neither: raises `UnknownFunction` with this name-pool entry.
    Unknown(u32),
}

/// A compiled function body.
#[derive(Clone)]
pub struct BcFunc {
    /// Function name (for trap provenance).
    pub name: String,
    /// Frame size in registers: one per SSA value plus a discard slot.
    pub nregs: u32,
    /// Number of parameters (they occupy registers `0..nparams`).
    pub nparams: u32,
    /// Registers whose declared type is `f64` (zero-initialized as floats).
    pub float_regs: Vec<u32>,
    /// Constant pool.
    pub consts: Vec<RtVal>,
    /// Type pool (types referenced by opcodes).
    pub types: Vec<Type>,
    /// The flattened opcode sequence; execution starts at index 0.
    pub ops: Vec<Op>,
    /// Source line per opcode (parallel to `ops`), for trap provenance.
    pub locs: Vec<Option<u32>>,
    /// Phi move lists, indexed by the edge IDs in branch opcodes.
    pub edges: Vec<Box<[MoveEntry]>>,
    /// Initial frame contents (derived from `nregs` + `float_regs`).
    pub(crate) reg_init: Box<[RtVal]>,
}

impl BcFunc {
    /// Rebuilds the derived initial-frame template. Must be called after
    /// constructing or mutating `nregs`/`float_regs`.
    pub fn seal(&mut self) {
        let mut init = vec![RtVal::Int(0); self.nregs as usize];
        for &r in &self.float_regs {
            if let Some(slot) = init.get_mut(r as usize) {
                *slot = RtVal::Float(0.0);
            }
        }
        self.reg_init = init.into_boxed_slice();
    }
}

impl std::fmt::Debug for BcFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BcFunc")
            .field("name", &self.name)
            .field("nregs", &self.nregs)
            .field("ops", &self.ops.len())
            .finish()
    }
}

/// A compiled module: one [`BcFunc`] per defined function, plus the shared
/// pools the opcodes reference.
#[derive(Clone, Default)]
pub struct BcModule {
    /// Compiled bodies, indexed by function ID (`None` for declarations).
    pub funcs: Vec<Option<BcFunc>>,
    /// Snapshot of the resolved host functions (empty in parsed modules).
    pub hosts: Vec<HostFn>,
    /// Names of the snapshot entries, parallel to `hosts`.
    pub host_names: Vec<String>,
    /// Metrics class of each snapshot entry, parallel to `hosts`
    /// (pre-computed so the dispatch loop never classifies by name).
    pub host_classes: Vec<OpClass>,
    /// Pool of unknown-function names referenced by `Src::BadFunc`,
    /// `Op::CallUnknown` and `CallTarget::Unknown`.
    pub names: Vec<String>,
    /// Indirect-call dispatch target per function ID.
    pub targets: Vec<CallTarget>,
    /// Number of check sites in the source module (for validation).
    pub nsites: usize,
}

impl std::fmt::Debug for BcModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BcModule")
            .field("funcs", &self.funcs.len())
            .field("hosts", &self.host_names)
            .finish()
    }
}

/// A thread-shareable snapshot of a compiled module: everything in
/// [`BcModule`] except the host-function closures (which are `Rc`-backed
/// and therefore pinned to one thread). Produced by [`BcModule::image`],
/// re-armed against a concrete VM's registry by
/// [`crate::interp::Vm::adopt_bytecode`] — the basis of cross-connection
/// bytecode caching in the evaluation service.
#[derive(Clone, Default, Debug)]
pub struct BcImage {
    /// Compiled bodies, indexed by function ID (`None` for declarations).
    pub funcs: Vec<Option<BcFunc>>,
    /// Names of the host-pool entries, in pool order; resolved back to
    /// closures at adoption time.
    pub host_names: Vec<String>,
    /// Metrics class of each host-pool entry, parallel to `host_names`.
    pub host_classes: Vec<OpClass>,
    /// Pool of unknown-function names.
    pub names: Vec<String>,
    /// Indirect-call dispatch target per function ID.
    pub targets: Vec<CallTarget>,
    /// Number of check sites in the source module.
    pub nsites: usize,
}

impl BcModule {
    /// Snapshots this module into a host-free [`BcImage`].
    pub fn image(&self) -> BcImage {
        BcImage {
            funcs: self.funcs.clone(),
            host_names: self.host_names.clone(),
            host_classes: self.host_classes.clone(),
            names: self.names.clone(),
            targets: self.targets.clone(),
            nsites: self.nsites,
        }
    }
}

impl BcImage {
    /// Rebuilds a runnable [`BcModule`] by resolving every host-pool entry
    /// against `registry`.
    ///
    /// # Errors
    ///
    /// Returns the name of the first host function the registry does not
    /// provide (the image was compiled against a different runtime setup).
    pub fn resolve(&self, registry: &crate::host::HostRegistry) -> Result<BcModule, String> {
        let mut hosts = Vec::with_capacity(self.host_names.len());
        for name in &self.host_names {
            match registry.get(name) {
                Some(hf) => hosts.push(hf.clone()),
                None => return Err(format!("host function @{name} not in registry")),
            }
        }
        Ok(BcModule {
            funcs: self.funcs.clone(),
            hosts,
            host_names: self.host_names.clone(),
            host_classes: self.host_classes.clone(),
            names: self.names.clone(),
            targets: self.targets.clone(),
            nsites: self.nsites,
        })
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Check helpers specialized into dedicated opcodes, with the argument
/// position of their check-site ID.
const CHECK_HELPERS: [(&str, usize); 4] =
    [("__sb_check", 4), ("__lf_check", 3), ("__rz_check", 2), ("__lf_invariant", 2)];

#[derive(Copy, Clone)]
enum Resolved {
    Static(u32),
    Host(u32),
    Unknown(u32),
}

struct Cx<'a> {
    module: &'a Module,
    registry: &'a HostRegistry,
    cost: &'a CostModel,
    global_addrs: &'a [u64],
    func_to_addr: &'a HashMap<String, u64>,
    names: Vec<String>,
    name_ix: HashMap<String, u32>,
    hosts: Vec<HostFn>,
    host_names: Vec<String>,
    host_classes: Vec<OpClass>,
    host_ix: HashMap<String, u32>,
    resolve_memo: HashMap<String, Resolved>,
}

impl Cx<'_> {
    fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&ix) = self.name_ix.get(name) {
            return ix;
        }
        let ix = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ix.insert(name.to_string(), ix);
        ix
    }

    fn intern_host(&mut self, name: &str, hf: HostFn) -> u32 {
        if let Some(&ix) = self.host_ix.get(name) {
            return ix;
        }
        let ix = self.hosts.len() as u32;
        self.hosts.push(hf);
        self.host_names.push(name.to_string());
        self.host_classes.push(classify_host(name));
        self.host_ix.insert(name.to_string(), ix);
        ix
    }

    /// Mirrors the walker's `dispatch_call` resolution order: first defined
    /// module function by name (first match wins), then host registry, then
    /// unknown.
    fn resolve(&mut self, name: &str) -> Resolved {
        if let Some(&r) = self.resolve_memo.get(name) {
            return r;
        }
        let r = match self.module.function_by_name(name) {
            Some((fid, f)) if !f.is_declaration => Resolved::Static(fid.index() as u32),
            _ => match self.registry.get(name).cloned() {
                Some(hf) => Resolved::Host(self.intern_host(name, hf)),
                None => Resolved::Unknown(self.intern_name(name)),
            },
        };
        self.resolve_memo.insert(name.to_string(), r);
        r
    }
}

struct FnCx {
    consts: Vec<RtVal>,
    const_ix: HashMap<(bool, u64), u32>,
    types: Vec<Type>,
    type_ix: HashMap<Type, u32>,
}

impl FnCx {
    fn constant(&mut self, v: RtVal) -> Src {
        let key = match v {
            RtVal::Int(i) => (false, i),
            RtVal::Float(f) => (true, f.to_bits()),
        };
        if let Some(&ix) = self.const_ix.get(&key) {
            return Src::Const(ix);
        }
        let ix = self.consts.len() as u32;
        self.consts.push(v);
        self.const_ix.insert(key, ix);
        Src::Const(ix)
    }

    fn ty(&mut self, t: &Type) -> u32 {
        if let Some(&ix) = self.type_ix.get(t) {
            return ix;
        }
        let ix = self.types.len() as u32;
        self.types.push(t.clone());
        self.type_ix.insert(t.clone(), ix);
        ix
    }
}

fn zero_of(ty: &Type) -> RtVal {
    match ty {
        Type::F64 => RtVal::Float(0.0),
        _ => RtVal::Int(0),
    }
}

/// Compiles `module` against the VM state the walker would execute it with:
/// the placed global addresses, the function address table, the host
/// registry, and the cost model (used to pre-compute call charges).
pub fn compile(
    module: &Module,
    registry: &HostRegistry,
    cost: &CostModel,
    global_addrs: &[u64],
    func_to_addr: &HashMap<String, u64>,
) -> BcModule {
    let mut cx = Cx {
        module,
        registry,
        cost,
        global_addrs,
        func_to_addr,
        names: Vec::new(),
        name_ix: HashMap::new(),
        hosts: Vec::new(),
        host_names: Vec::new(),
        host_classes: Vec::new(),
        host_ix: HashMap::new(),
        resolve_memo: HashMap::new(),
    };

    // Indirect-call dispatch targets: one per function ID, resolved through
    // the function's *name* (preserving the walker's duplicate-name
    // behaviour).
    let mut targets = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        let name = f.name.clone();
        targets.push(match cx.resolve(&name) {
            Resolved::Static(i) => CallTarget::Static(i),
            Resolved::Host(i) => CallTarget::Host(i),
            Resolved::Unknown(i) => CallTarget::Unknown(i),
        });
    }

    let mut funcs = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        if f.is_declaration {
            funcs.push(None);
        } else {
            funcs.push(Some(compile_function(&mut cx, f)));
        }
    }

    BcModule {
        funcs,
        hosts: cx.hosts,
        host_names: cx.host_names,
        host_classes: cx.host_classes,
        names: cx.names,
        targets,
        nsites: module.check_sites.len(),
    }
}

fn compile_function(cx: &mut Cx<'_>, func: &mir::function::Function) -> BcFunc {
    let nvalues = func.values.len();
    let discard = nvalues as u32;
    let mut fx = FnCx {
        consts: Vec::new(),
        const_ix: HashMap::new(),
        types: Vec::new(),
        type_ix: HashMap::new(),
    };

    // Leading phi clusters per block (compiled into edge move lists).
    let mut leading_phis: Vec<usize> = Vec::with_capacity(func.blocks.len());
    for b in &func.blocks {
        let mut n = 0;
        for &iid in &b.instrs {
            if matches!(func.instrs[iid.index()].kind, InstrKind::Phi { .. }) {
                n += 1;
            } else {
                break;
            }
        }
        leading_phis.push(n);
    }

    // Opcode index of each block's first (non-phi) opcode.
    let mut block_start: Vec<u32> = Vec::with_capacity(func.blocks.len());
    let mut pc = 0u32;
    for (bi, b) in func.blocks.iter().enumerate() {
        block_start.push(pc);
        pc += (b.instrs.len() - leading_phis[bi]) as u32 + 1;
    }

    let mut ops: Vec<Op> = Vec::with_capacity(pc as usize);
    let mut locs: Vec<Option<u32>> = Vec::with_capacity(pc as usize);
    let mut edges: Vec<Box<[MoveEntry]>> = Vec::new();
    let mut edge_memo: HashMap<(usize, usize), u32> = HashMap::new();

    for (bi, block) in func.blocks.iter().enumerate() {
        for &iid in block.instrs.iter().skip(leading_phis[bi]) {
            let instr = &func.instrs[iid.index()];
            let dst = instr.result.map(|v| v.index() as u32).unwrap_or(discard);
            let op = compile_instr(cx, &mut fx, func, &instr.kind, dst);
            ops.push(op);
            locs.push(instr.loc.map(|l| l.line));
        }

        // Terminator.
        let term_op = match &block.term {
            Terminator::Ret(v) => Op::Ret { val: v.as_ref().map(|o| operand(cx, &mut fx, o)) },
            Terminator::Br(b) => {
                let edge = edge_for(
                    cx,
                    &mut fx,
                    func,
                    &leading_phis,
                    &mut edges,
                    &mut edge_memo,
                    bi,
                    b.index(),
                );
                Op::Br { target: block_start[b.index()], edge }
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let te = edge_for(
                    cx,
                    &mut fx,
                    func,
                    &leading_phis,
                    &mut edges,
                    &mut edge_memo,
                    bi,
                    then_bb.index(),
                );
                let ee = edge_for(
                    cx,
                    &mut fx,
                    func,
                    &leading_phis,
                    &mut edges,
                    &mut edge_memo,
                    bi,
                    else_bb.index(),
                );
                Op::CondBr {
                    cond: operand(cx, &mut fx, cond),
                    tt: block_start[then_bb.index()],
                    te,
                    et: block_start[else_bb.index()],
                    ee,
                }
            }
            Terminator::Unreachable => Op::Unreachable,
        };
        ops.push(term_op);
        locs.push(None);
    }

    let mut float_regs: Vec<u32> = Vec::new();
    for (i, vi) in func.values.iter().enumerate() {
        if vi.ty == Type::F64 {
            float_regs.push(i as u32);
        }
    }

    let mut bf = BcFunc {
        name: func.name.clone(),
        nregs: nvalues as u32 + 1,
        nparams: func.params.len() as u32,
        float_regs,
        consts: fx.consts,
        types: fx.types,
        ops,
        locs,
        edges,
        reg_init: Box::new([]),
    };
    bf.seal();
    bf
}

/// Lowers an operand to a [`Src`], folding constants against the VM's
/// global/function address maps (the walker's `eval` semantics).
fn operand(cx: &mut Cx<'_>, fx: &mut FnCx, op: &Operand) -> Src {
    match op {
        Operand::Val(v) => Src::Reg(v.index() as u32),
        Operand::ConstInt { ty, value } => fx.constant(RtVal::Int(*value as u64).truncated(ty)),
        Operand::ConstFloat(f) => fx.constant(RtVal::Float(*f)),
        Operand::Null => fx.constant(RtVal::Int(0)),
        Operand::GlobalAddr(g) => fx.constant(RtVal::Int(cx.global_addrs[g.index()])),
        Operand::FuncAddr(name) => match cx.func_to_addr.get(name) {
            Some(a) => fx.constant(RtVal::Int(*a)),
            None => Src::BadFunc(cx.intern_name(name)),
        },
        Operand::Undef(ty) => fx.constant(zero_of(ty)),
    }
}

#[allow(clippy::too_many_arguments)]
fn edge_for(
    cx: &mut Cx<'_>,
    fx: &mut FnCx,
    func: &mir::function::Function,
    leading_phis: &[usize],
    edges: &mut Vec<Box<[MoveEntry]>>,
    memo: &mut HashMap<(usize, usize), u32>,
    pred: usize,
    succ: usize,
) -> u32 {
    if leading_phis[succ] == 0 {
        return NO_EDGE;
    }
    if let Some(&e) = memo.get(&(pred, succ)) {
        return e;
    }
    let pred_id = mir::ids::BlockId::new(pred);
    let mut entries: Vec<MoveEntry> = Vec::with_capacity(leading_phis[succ]);
    for &iid in func.blocks[succ].instrs.iter().take(leading_phis[succ]) {
        let instr = &func.instrs[iid.index()];
        let InstrKind::Phi { incoming, .. } = &instr.kind else { unreachable!() };
        match incoming.iter().find(|(b, _)| *b == pred_id) {
            Some((_, op)) => {
                let dst = instr.result.expect("phi result").index() as u32;
                entries.push(MoveEntry::Move { dst, src: operand(cx, fx, op) });
            }
            None => {
                // The walker evaluates phis in order and errors at the first
                // one lacking an incoming value; later phis never run.
                entries.push(MoveEntry::Missing(
                    format!("phi without incoming for {pred_id} in @{}", func.name).into(),
                ));
                break;
            }
        }
    }
    let e = edges.len() as u32;
    edges.push(entries.into_boxed_slice());
    memo.insert((pred, succ), e);
    e
}

fn scalar_width(ty: &Type) -> Option<u64> {
    match ty {
        Type::I1 | Type::I8 => Some(1),
        Type::I16 => Some(2),
        Type::I32 => Some(4),
        Type::I64 | Type::F64 | Type::Ptr => Some(8),
        _ => None,
    }
}

fn compile_instr(
    cx: &mut Cx<'_>,
    fx: &mut FnCx,
    func: &mir::function::Function,
    kind: &InstrKind,
    dst: u32,
) -> Op {
    let cost = *cx.cost;
    match kind {
        InstrKind::Alloca { ty, count } => {
            Op::Alloca { dst, size: ty.size_of().max(1), count: operand(cx, fx, count) }
        }
        InstrKind::Load { ty, ptr } => match scalar_width(ty) {
            Some(width) => Op::Load { dst, ty: fx.ty(ty), width, ptr: operand(cx, fx, ptr) },
            None => Op::TrapUnsupported {
                charge: cost.load,
                class: OpClass::Load,
                pre: vec![operand(cx, fx, ptr)].into_boxed_slice(),
                msg: format!("aggregate load/store of {ty}").into(),
            },
        },
        InstrKind::Store { ty, value, ptr } => match scalar_width(ty) {
            Some(width) => {
                Op::Store { width, ptr: operand(cx, fx, ptr), val: operand(cx, fx, value) }
            }
            None => Op::TrapUnsupported {
                charge: cost.store,
                class: OpClass::Store,
                pre: vec![operand(cx, fx, ptr), operand(cx, fx, value)].into_boxed_slice(),
                msg: format!("aggregate load/store of {ty}").into(),
            },
        },
        InstrKind::Gep { elem_ty, base, indices } => {
            compile_gep(cx, fx, func, dst, elem_ty, base, indices)
        }
        InstrKind::Phi { .. } => {
            // Phis are compiled into edge move lists; a phi below the leading
            // cluster is malformed IR (the walker would panic executing it).
            Op::TrapUnsupported {
                charge: 0,
                class: OpClass::Other,
                pre: Box::new([]),
                msg: "phi below block head".into(),
            }
        }
        InstrKind::Select { cond, then_value, else_value, .. } => Op::Select {
            dst,
            cond: operand(cx, fx, cond),
            t: operand(cx, fx, then_value),
            e: operand(cx, fx, else_value),
        },
        InstrKind::Bin { op, ty, lhs, rhs } => Op::Bin {
            dst,
            op: *op,
            ty: fx.ty(ty),
            lhs: operand(cx, fx, lhs),
            rhs: operand(cx, fx, rhs),
        },
        InstrKind::Icmp { pred, ty, lhs, rhs } => Op::Icmp {
            dst,
            pred: *pred,
            ty: fx.ty(ty),
            lhs: operand(cx, fx, lhs),
            rhs: operand(cx, fx, rhs),
        },
        InstrKind::Fcmp { pred, lhs, rhs } => {
            Op::Fcmp { dst, pred: *pred, lhs: operand(cx, fx, lhs), rhs: operand(cx, fx, rhs) }
        }
        InstrKind::Cast { op, value, from, to } => {
            Op::Cast { dst, op: *op, from: fx.ty(from), to: fx.ty(to), val: operand(cx, fx, value) }
        }
        InstrKind::Call { callee, args, ret } => {
            let srcs: Vec<Src> = args.iter().map(|a| operand(cx, fx, a)).collect();
            match cx.resolve(callee) {
                Resolved::Static(fid) => Op::CallStatic {
                    dst,
                    fid,
                    charge: cost.call + cost.call_per_arg * args.len() as u64,
                    args: srcs.into_boxed_slice(),
                },
                Resolved::Host(host) => {
                    let check = CHECK_HELPERS.iter().find(|(n, _)| n == callee);
                    match check {
                        Some(&(name, site_pos)) if *ret == Type::Void && srcs.len() <= 5 => {
                            let site = match args.get(site_pos) {
                                Some(Operand::ConstInt { value, .. }) => {
                                    u32::try_from(*value).unwrap_or(NO_SITE)
                                }
                                _ => NO_SITE,
                            };
                            let pad = fx.constant(RtVal::Int(0));
                            let mut a = [pad; 5];
                            for (i, s) in srcs.iter().enumerate() {
                                a[i] = *s;
                            }
                            let co = CheckOp { host, args: a, n: srcs.len() as u8, site };
                            match name {
                                "__sb_check" => Op::SbCheck(co),
                                "__lf_check" => Op::LfCheck(co),
                                "__rz_check" => Op::RzCheck(co),
                                "__lf_invariant" => Op::LfInvariant(co),
                                _ => unreachable!(),
                            }
                        }
                        _ => Op::CallHost {
                            dst,
                            host,
                            void: *ret == Type::Void,
                            args: srcs.into_boxed_slice(),
                        },
                    }
                }
                Resolved::Unknown(name) => Op::CallUnknown { name, args: srcs.into_boxed_slice() },
            }
        }
        InstrKind::CallIndirect { callee, args, ret } => Op::CallIndirect {
            dst,
            void: *ret == Type::Void,
            charge: cost.call + cost.call_per_arg * args.len() as u64,
            callee: operand(cx, fx, callee),
            args: args.iter().map(|a| operand(cx, fx, a)).collect::<Vec<_>>().into_boxed_slice(),
        },
        InstrKind::MemCpy { dst: d, src, len } => Op::MemCpy {
            dst: operand(cx, fx, d),
            src: operand(cx, fx, src),
            len: operand(cx, fx, len),
        },
        InstrKind::MemSet { dst: d, byte, len } => Op::MemSet {
            dst: operand(cx, fx, d),
            byte: operand(cx, fx, byte),
            len: operand(cx, fx, len),
        },
        InstrKind::Nop => Op::Nop,
    }
}

fn compile_gep(
    cx: &mut Cx<'_>,
    fx: &mut FnCx,
    func: &mir::function::Function,
    dst: u32,
    elem_ty: &Type,
    base: &Operand,
    indices: &[Operand],
) -> Op {
    let full_spec = |cx: &mut Cx<'_>, fx: &mut FnCx| -> Box<[(Src, IdxSpec)]> {
        indices
            .iter()
            .map(|idx| {
                let spec = match idx {
                    Operand::ConstInt { value, .. } => IdxSpec::RawConst(*value),
                    Operand::Val(v) => IdxSpec::Signed(fx.ty(func.value_type(*v))),
                    _ => IdxSpec::Unsigned,
                };
                (operand(cx, fx, idx), spec)
            })
            .collect()
    };

    let mut off = 0u64;
    let mut terms: Vec<GepTerm> = Vec::new();
    let mut cur_ty = elem_ty.clone();
    for (i, idx) in indices.iter().enumerate() {
        let cval = match idx {
            Operand::ConstInt { value, .. } => Some(*value),
            _ => None,
        };
        if i == 0 {
            let size = cur_ty.size_of() as i64;
            match cval {
                Some(v) => off = off.wrapping_add(v.wrapping_mul(size) as u64),
                None => {
                    let spec = match idx {
                        Operand::Val(v) => IdxSpec::Signed(fx.ty(func.value_type(*v))),
                        _ => IdxSpec::Unsigned,
                    };
                    terms.push(GepTerm { src: operand(cx, fx, idx), spec, size });
                }
            }
        } else {
            match cur_ty.clone() {
                Type::Struct(fields) => {
                    // A struct step needs a constant in-range index to fold;
                    // otherwise fall back to the generic runtime walk (which
                    // panics exactly where the walker would).
                    match cval {
                        Some(v) if (0..fields.len() as i64).contains(&v) => {
                            let fi = v as usize;
                            off = off.wrapping_add(cur_ty.field_offset(fi));
                            cur_ty = cur_ty.element_type(fi).clone();
                        }
                        _ => {
                            return Op::GepDyn {
                                dst,
                                elem_ty: fx.ty(elem_ty),
                                base: operand(cx, fx, base),
                                indices: full_spec(cx, fx),
                            };
                        }
                    }
                }
                Type::Array(elem, _) => {
                    let size = elem.size_of() as i64;
                    match cval {
                        Some(v) => off = off.wrapping_add(v.wrapping_mul(size) as u64),
                        None => {
                            let spec = match idx {
                                Operand::Val(v) => IdxSpec::Signed(fx.ty(func.value_type(*v))),
                                _ => IdxSpec::Unsigned,
                            };
                            terms.push(GepTerm { src: operand(cx, fx, idx), spec, size });
                        }
                    }
                    cur_ty = (*elem).clone();
                }
                other => {
                    // The walker charges, evaluates base and indices up to
                    // (and including) this one, then traps.
                    let mut pre = vec![operand(cx, fx, base)];
                    for pidx in &indices[..=i] {
                        pre.push(operand(cx, fx, pidx));
                    }
                    return Op::TrapUnsupported {
                        charge: cx.cost.gep,
                        class: OpClass::Gep,
                        pre: pre.into_boxed_slice(),
                        msg: format!("gep step into non-aggregate {other}").into(),
                    };
                }
            }
        }
    }
    Op::Gep { dst, base: operand(cx, fx, base), off, terms: terms.into_boxed_slice() }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

impl BcModule {
    /// Structural sanity check: every register operand fits the declared
    /// frame size, every pool index is in range, every branch target and
    /// edge ID is valid, and every decoded check-site ID is in range of the
    /// module's check-site table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (fid, bf) in self.funcs.iter().enumerate() {
            if let Some(bf) = bf {
                self.validate_func(bf).map_err(|e| format!("fn {fid} (@{}): {e}", bf.name))?;
            }
        }
        if self.targets.len() != self.funcs.len() {
            return Err("targets/funcs length mismatch".into());
        }
        for t in &self.targets {
            match *t {
                CallTarget::Static(i) => {
                    if self.funcs.get(i as usize).map(|f| f.is_some()) != Some(true) {
                        return Err(format!("indirect target fn {i} not a defined function"));
                    }
                }
                CallTarget::Host(i) => {
                    if i as usize >= self.host_names.len() {
                        return Err(format!("indirect target host {i} out of range"));
                    }
                }
                CallTarget::Unknown(i) => {
                    if i as usize >= self.names.len() {
                        return Err(format!("indirect target name {i} out of range"));
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_func(&self, bf: &BcFunc) -> Result<(), String> {
        if bf.nparams > bf.nregs {
            return Err("nparams exceeds nregs".into());
        }
        if bf.reg_init.len() != bf.nregs as usize {
            return Err("reg_init length mismatch".into());
        }
        if bf.locs.len() != bf.ops.len() {
            return Err("locs/ops length mismatch".into());
        }
        let src = |s: Src| -> Result<(), String> {
            match s {
                Src::Reg(r) if (r as usize) < bf.nregs as usize => Ok(()),
                Src::Reg(r) => Err(format!("register r{r} exceeds frame size {}", bf.nregs)),
                Src::Const(c) if (c as usize) < bf.consts.len() => Ok(()),
                Src::Const(c) => Err(format!("const c{c} out of range")),
                Src::BadFunc(n) if (n as usize) < self.names.len() => Ok(()),
                Src::BadFunc(n) => Err(format!("name n{n} out of range")),
            }
        };
        let reg = |r: u32| -> Result<(), String> {
            if r < bf.nregs {
                Ok(())
            } else {
                Err(format!("dst register r{r} exceeds frame size {}", bf.nregs))
            }
        };
        let ty = |t: u32| -> Result<(), String> {
            if (t as usize) < bf.types.len() {
                Ok(())
            } else {
                Err(format!("type t{t} out of range"))
            }
        };
        let target = |t: u32| -> Result<(), String> {
            if (t as usize) < bf.ops.len() {
                Ok(())
            } else {
                Err(format!("branch target {t} out of range"))
            }
        };
        let edge = |e: u32| -> Result<(), String> {
            if e == NO_EDGE || (e as usize) < bf.edges.len() {
                Ok(())
            } else {
                Err(format!("edge e{e} out of range"))
            }
        };
        let host = |h: u32| -> Result<(), String> {
            if (h as usize) < self.host_names.len() {
                Ok(())
            } else {
                Err(format!("host h{h} out of range"))
            }
        };
        let check = |co: &CheckOp| -> Result<(), String> {
            host(co.host)?;
            if co.n as usize > 5 {
                return Err("check arity exceeds 5".into());
            }
            for s in &co.args[..co.n as usize] {
                src(*s)?;
            }
            if co.site != NO_SITE && co.site as usize >= self.nsites {
                return Err(format!("check site {} out of range ({})", co.site, self.nsites));
            }
            Ok(())
        };

        for e in &bf.edges {
            for m in e.iter() {
                if let MoveEntry::Move { dst, src: s } = m {
                    reg(*dst)?;
                    src(*s)?;
                }
            }
        }

        for op in &bf.ops {
            match op {
                Op::Alloca { dst, count, .. } => {
                    reg(*dst)?;
                    src(*count)?;
                }
                Op::Load { dst, ty: t, ptr, .. } => {
                    reg(*dst)?;
                    ty(*t)?;
                    src(*ptr)?;
                }
                Op::Store { ptr, val, .. } => {
                    src(*ptr)?;
                    src(*val)?;
                }
                Op::Gep { dst, base, terms, .. } => {
                    reg(*dst)?;
                    src(*base)?;
                    for t in terms.iter() {
                        src(t.src)?;
                        if let IdxSpec::Signed(ti) = t.spec {
                            ty(ti)?;
                        }
                    }
                }
                Op::GepDyn { dst, elem_ty, base, indices } => {
                    reg(*dst)?;
                    ty(*elem_ty)?;
                    src(*base)?;
                    for (s, spec) in indices.iter() {
                        src(*s)?;
                        if let IdxSpec::Signed(ti) = spec {
                            ty(*ti)?;
                        }
                    }
                }
                Op::Select { dst, cond, t, e } => {
                    reg(*dst)?;
                    src(*cond)?;
                    src(*t)?;
                    src(*e)?;
                }
                Op::Bin { dst, ty: t, lhs, rhs, .. } | Op::Icmp { dst, ty: t, lhs, rhs, .. } => {
                    reg(*dst)?;
                    ty(*t)?;
                    src(*lhs)?;
                    src(*rhs)?;
                }
                Op::Fcmp { dst, lhs, rhs, .. } => {
                    reg(*dst)?;
                    src(*lhs)?;
                    src(*rhs)?;
                }
                Op::Cast { dst, from, to, val, .. } => {
                    reg(*dst)?;
                    ty(*from)?;
                    ty(*to)?;
                    src(*val)?;
                }
                Op::CallStatic { dst, fid, args, .. } => {
                    reg(*dst)?;
                    if self.funcs.get(*fid as usize).map(|f| f.is_some()) != Some(true) {
                        return Err(format!("static callee fn {fid} not defined"));
                    }
                    for a in args.iter() {
                        src(*a)?;
                    }
                }
                Op::CallHost { dst, host: h, args, .. } => {
                    reg(*dst)?;
                    host(*h)?;
                    for a in args.iter() {
                        src(*a)?;
                    }
                }
                Op::SbCheck(co) | Op::LfCheck(co) | Op::RzCheck(co) | Op::LfInvariant(co) => {
                    check(co)?;
                }
                Op::CallUnknown { name, args } => {
                    if *name as usize >= self.names.len() {
                        return Err(format!("unknown-call name n{name} out of range"));
                    }
                    for a in args.iter() {
                        src(*a)?;
                    }
                }
                Op::CallIndirect { dst, callee, args, .. } => {
                    reg(*dst)?;
                    src(*callee)?;
                    for a in args.iter() {
                        src(*a)?;
                    }
                }
                Op::MemCpy { dst, src: s, len } => {
                    src(*dst)?;
                    src(*s)?;
                    src(*len)?;
                }
                Op::MemSet { dst, byte, len } => {
                    src(*dst)?;
                    src(*byte)?;
                    src(*len)?;
                }
                Op::Nop => {}
                Op::TrapUnsupported { pre, .. } => {
                    for s in pre.iter() {
                        src(*s)?;
                    }
                }
                Op::Ret { val } => {
                    if let Some(v) = val {
                        src(*v)?;
                    }
                }
                Op::Br { target: t, edge: e } => {
                    target(*t)?;
                    edge(*e)?;
                }
                Op::CondBr { cond, tt, te, et, ee } => {
                    src(*cond)?;
                    target(*tt)?;
                    edge(*te)?;
                    target(*et)?;
                    edge(*ee)?;
                }
                Op::Unreachable => {}
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

fn src_tok(s: Src) -> String {
    match s {
        Src::Reg(r) => format!("r{r}"),
        Src::Const(c) => format!("c{c}"),
        Src::BadFunc(n) => format!("n{n}"),
    }
}

fn edge_tok(e: u32) -> String {
    if e == NO_EDGE {
        "-".to_string()
    } else {
        e.to_string()
    }
}

fn site_tok(s: u32) -> String {
    if s == NO_SITE {
        "-".to_string()
    } else {
        s.to_string()
    }
}

fn spec_tok(s: &IdxSpec) -> String {
    match s {
        IdxSpec::RawConst(v) => format!("k{v}"),
        IdxSpec::Signed(t) => format!("s{t}"),
        IdxSpec::Unsigned => "u".to_string(),
    }
}

fn list_tok(srcs: &[Src]) -> String {
    let items: Vec<String> = srcs.iter().map(|s| src_tok(*s)).collect();
    format!("[{}]", items.join(","))
}

impl BcModule {
    /// Renders the compiled module in a stable textual form that
    /// [`parse_bytecode`] reads back. Host-function *closures* are not part
    /// of the text (only their names), so a parsed module cannot execute.
    pub fn disassemble(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "bcmodule nfuncs={} nsites={}", self.funcs.len(), self.nsites);
        for (i, n) in self.names.iter().enumerate() {
            let _ = writeln!(s, "name n{i} @{n}");
        }
        for (i, n) in self.host_names.iter().enumerate() {
            let _ = writeln!(s, "host h{i} @{n}");
        }
        if !self.targets.is_empty() {
            let toks: Vec<String> = self
                .targets
                .iter()
                .map(|t| match t {
                    CallTarget::Static(i) => format!("s{i}"),
                    CallTarget::Host(i) => format!("h{i}"),
                    CallTarget::Unknown(i) => format!("u{i}"),
                })
                .collect();
            let _ = writeln!(s, "targets {}", toks.join(" "));
        }
        for (fid, bf) in self.funcs.iter().enumerate() {
            let Some(bf) = bf else { continue };
            let _ =
                writeln!(s, "func {fid} @{} nregs={} nparams={}", bf.name, bf.nregs, bf.nparams);
            for (i, t) in bf.types.iter().enumerate() {
                let _ = writeln!(s, "ftype t{i} {t}");
            }
            for (i, c) in bf.consts.iter().enumerate() {
                match c {
                    RtVal::Int(v) => {
                        let _ = writeln!(s, "fconst c{i} i 0x{v:x}");
                    }
                    RtVal::Float(f) => {
                        let _ = writeln!(s, "fconst c{i} f 0x{:016x}", f.to_bits());
                    }
                }
            }
            if !bf.float_regs.is_empty() {
                let toks: Vec<String> = bf.float_regs.iter().map(|r| r.to_string()).collect();
                let _ = writeln!(s, "fregs {}", toks.join(" "));
            }
            for (i, e) in bf.edges.iter().enumerate() {
                let _ = write!(s, "edge {i}");
                for m in e.iter() {
                    match m {
                        MoveEntry::Move { dst, src } => {
                            let _ = write!(s, " mv {dst} {}", src_tok(*src));
                        }
                        MoveEntry::Missing(msg) => {
                            let _ = write!(s, " miss {:?}", &**msg);
                        }
                    }
                }
                s.push('\n');
            }
            for (pc, op) in bf.ops.iter().enumerate() {
                match bf.locs[pc] {
                    Some(l) => {
                        let _ = write!(s, "op@{l} ");
                    }
                    None => s.push_str("op "),
                }
                let _ = writeln!(s, "{}", disasm_op(op));
            }
        }
        s
    }
}

fn disasm_op(op: &Op) -> String {
    match op {
        Op::Alloca { dst, size, count } => {
            format!("alloca d={dst} size={size} count={}", src_tok(*count))
        }
        Op::Load { dst, ty, width, ptr } => {
            format!("load d={dst} ty=t{ty} w={width} p={}", src_tok(*ptr))
        }
        Op::Store { width, ptr, val } => {
            format!("store w={width} p={} v={}", src_tok(*ptr), src_tok(*val))
        }
        Op::Gep { dst, base, off, terms } => {
            let ts: Vec<String> = terms
                .iter()
                .map(|t| format!("{}:{}:{}", src_tok(t.src), spec_tok(&t.spec), t.size))
                .collect();
            format!("gep d={dst} base={} off=0x{off:x} terms=[{}]", src_tok(*base), ts.join(","))
        }
        Op::GepDyn { dst, elem_ty, base, indices } => {
            let ts: Vec<String> = indices
                .iter()
                .map(|(s, spec)| format!("{}:{}", src_tok(*s), spec_tok(spec)))
                .collect();
            format!("gepdyn d={dst} ety=t{elem_ty} base={} idx=[{}]", src_tok(*base), ts.join(","))
        }
        Op::Select { dst, cond, t, e } => {
            format!("select d={dst} c={} t={} e={}", src_tok(*cond), src_tok(*t), src_tok(*e))
        }
        Op::Bin { dst, op, ty, lhs, rhs } => format!(
            "bin d={dst} o={} ty=t{ty} l={} r={}",
            op.mnemonic(),
            src_tok(*lhs),
            src_tok(*rhs)
        ),
        Op::Icmp { dst, pred, ty, lhs, rhs } => format!(
            "icmp d={dst} o={} ty=t{ty} l={} r={}",
            pred.mnemonic(),
            src_tok(*lhs),
            src_tok(*rhs)
        ),
        Op::Fcmp { dst, pred, lhs, rhs } => {
            format!("fcmp d={dst} o={} l={} r={}", pred.mnemonic(), src_tok(*lhs), src_tok(*rhs))
        }
        Op::Cast { dst, op, from, to, val } => {
            format!("cast d={dst} o={} from=t{from} to=t{to} v={}", op.mnemonic(), src_tok(*val))
        }
        Op::CallStatic { dst, fid, charge, args } => {
            format!("call d={dst} f={fid} charge={charge} args={}", list_tok(args))
        }
        Op::CallHost { dst, host, void, args } => {
            format!("callhost d={dst} h={host} void={} args={}", *void as u8, list_tok(args))
        }
        Op::SbCheck(co) => format!("sbcheck {}", disasm_check(co)),
        Op::LfCheck(co) => format!("lfcheck {}", disasm_check(co)),
        Op::RzCheck(co) => format!("rzcheck {}", disasm_check(co)),
        Op::LfInvariant(co) => format!("lfinv {}", disasm_check(co)),
        Op::CallUnknown { name, args } => {
            format!("callunknown name=n{name} args={}", list_tok(args))
        }
        Op::CallIndirect { dst, void, charge, callee, args } => format!(
            "callind d={dst} void={} charge={charge} callee={} args={}",
            *void as u8,
            src_tok(*callee),
            list_tok(args)
        ),
        Op::MemCpy { dst, src, len } => {
            format!("memcpy d={} s={} n={}", src_tok(*dst), src_tok(*src), src_tok(*len))
        }
        Op::MemSet { dst, byte, len } => {
            format!("memset d={} b={} n={}", src_tok(*dst), src_tok(*byte), src_tok(*len))
        }
        Op::Nop => "nop".to_string(),
        Op::TrapUnsupported { charge, class, pre, msg } => {
            format!(
                "trap charge={charge} class={} pre={} msg={:?}",
                class.name(),
                list_tok(pre),
                &**msg
            )
        }
        Op::Ret { val } => match val {
            Some(v) => format!("ret v={}", src_tok(*v)),
            None => "ret".to_string(),
        },
        Op::Br { target, edge } => format!("br t={target} e={}", edge_tok(*edge)),
        Op::CondBr { cond, tt, te, et, ee } => format!(
            "condbr c={} tt={tt} te={} et={et} ee={}",
            src_tok(*cond),
            edge_tok(*te),
            edge_tok(*ee)
        ),
        Op::Unreachable => "unreachable".to_string(),
    }
}

fn disasm_check(co: &CheckOp) -> String {
    format!("h={} n={} site={} args={}", co.host, co.n, site_tok(co.site), list_tok(&co.args))
}

// ---------------------------------------------------------------------------
// Parsing (round-trip of the disassembly)
// ---------------------------------------------------------------------------

fn parse_src(tok: &str) -> Result<Src, String> {
    let (tag, rest) = tok.split_at(1);
    let n: u32 = rest.parse().map_err(|_| format!("bad src token `{tok}`"))?;
    match tag {
        "r" => Ok(Src::Reg(n)),
        "c" => Ok(Src::Const(n)),
        "n" => Ok(Src::BadFunc(n)),
        _ => Err(format!("bad src token `{tok}`")),
    }
}

fn parse_spec(tok: &str) -> Result<IdxSpec, String> {
    if tok == "u" {
        return Ok(IdxSpec::Unsigned);
    }
    let (tag, rest) = tok.split_at(1);
    match tag {
        "s" => Ok(IdxSpec::Signed(rest.parse().map_err(|_| format!("bad spec `{tok}`"))?)),
        "k" => Ok(IdxSpec::RawConst(rest.parse().map_err(|_| format!("bad spec `{tok}`"))?)),
        _ => Err(format!("bad spec token `{tok}`")),
    }
}

fn parse_edge_ref(tok: &str) -> Result<u32, String> {
    if tok == "-" {
        Ok(NO_EDGE)
    } else {
        tok.parse().map_err(|_| format!("bad edge ref `{tok}`"))
    }
}

fn parse_site(tok: &str) -> Result<u32, String> {
    if tok == "-" {
        Ok(NO_SITE)
    } else {
        tok.parse().map_err(|_| format!("bad site `{tok}`"))
    }
}

fn parse_list(tok: &str) -> Result<Vec<Src>, String> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("bad list `{tok}`"))?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(parse_src).collect()
}

fn parse_u64_tok(tok: &str) -> Result<u64, String> {
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad number `{tok}`"))
    } else {
        tok.parse().map_err(|_| format!("bad number `{tok}`"))
    }
}

fn parse_tid(tok: &str) -> Result<u32, String> {
    tok.strip_prefix('t')
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad type ref `{tok}`"))
}

/// Unescapes a Rust-debug-style quoted string (`"..."`).
fn unquote(tok: &str) -> Result<String, String> {
    let inner = tok
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, got `{tok}`"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('u') => {
                let hex: String = chars.by_ref().skip(1).take_while(|&c| c != '}').collect();
                let v = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in `{tok}`"))?;
                out.push(char::from_u32(v).ok_or("bad \\u codepoint")?);
            }
            Some('x') => {
                let h1 = chars.next().ok_or("bad \\x escape")?;
                let h2 = chars.next().ok_or("bad \\x escape")?;
                let v = u32::from_str_radix(&format!("{h1}{h2}"), 16)
                    .map_err(|_| "bad \\x escape".to_string())?;
                out.push(char::from_u32(v).ok_or("bad \\x codepoint")?);
            }
            other => return Err(format!("bad escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Parses a type in the `mir` display grammar (`i64`, `ptr`, `[4 x i8]`,
/// `{ i8, i64 }`, ...).
fn parse_type(s: &str) -> Result<Type, String> {
    let (t, rest) = parse_type_inner(s.trim())?;
    if !rest.trim().is_empty() {
        return Err(format!("trailing input after type: `{rest}`"));
    }
    Ok(t)
}

fn parse_type_inner(s: &str) -> Result<(Type, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('[') {
        // [N x T]
        let rest = rest.trim_start();
        let num_end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
        let n: u64 = rest[..num_end].parse().map_err(|_| "bad array length".to_string())?;
        let rest =
            rest[num_end..].trim_start().strip_prefix('x').ok_or("expected `x` in array type")?;
        let (elem, rest) = parse_type_inner(rest)?;
        let rest = rest.trim_start().strip_prefix(']').ok_or("expected `]` closing array type")?;
        return Ok((Type::array(elem, n), rest));
    }
    if let Some(mut rest) = s.strip_prefix('{') {
        let mut fields = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Ok((Type::structure(fields), r));
            }
            let (f, r) = parse_type_inner(rest)?;
            fields.push(f);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r;
            }
        }
    }
    for (name, ty) in [
        ("void", Type::Void),
        ("i16", Type::I16),
        ("i32", Type::I32),
        ("i64", Type::I64),
        ("i1", Type::I1),
        ("i8", Type::I8),
        ("f64", Type::F64),
        ("ptr", Type::Ptr),
    ] {
        if let Some(rest) = s.strip_prefix(name) {
            return Ok((ty, rest));
        }
    }
    Err(format!("unknown type at `{s}`"))
}

fn parse_bin_op(tok: &str) -> Result<BinOp, String> {
    use BinOp::*;
    for op in [
        Add, Sub, Mul, SDiv, UDiv, SRem, URem, And, Or, Xor, Shl, LShr, AShr, FAdd, FSub, FMul,
        FDiv,
    ] {
        if op.mnemonic() == tok {
            return Ok(op);
        }
    }
    Err(format!("unknown bin op `{tok}`"))
}

fn parse_icmp_pred(tok: &str) -> Result<IcmpPred, String> {
    use IcmpPred::*;
    for p in [Eq, Ne, Slt, Sle, Sgt, Sge, Ult, Ule, Ugt, Uge] {
        if p.mnemonic() == tok {
            return Ok(p);
        }
    }
    Err(format!("unknown icmp pred `{tok}`"))
}

fn parse_fcmp_pred(tok: &str) -> Result<FcmpPred, String> {
    use FcmpPred::*;
    for p in [Oeq, One, Olt, Ole, Ogt, Oge] {
        if p.mnemonic() == tok {
            return Ok(p);
        }
    }
    Err(format!("unknown fcmp pred `{tok}`"))
}

fn parse_cast_op(tok: &str) -> Result<CastOp, String> {
    use CastOp::*;
    for op in [Zext, Sext, Trunc, PtrToInt, IntToPtr, Bitcast, SiToFp, FpToSi] {
        if op.mnemonic() == tok {
            return Ok(op);
        }
    }
    Err(format!("unknown cast op `{tok}`"))
}

/// Key=value accessor over an op line's tokens.
struct Fields<'a> {
    toks: &'a [&'a str],
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<&'a str, String> {
        for t in self.toks {
            if let Some(v) = t.strip_prefix(key) {
                if let Some(v) = v.strip_prefix('=') {
                    return Ok(v);
                }
            }
        }
        Err(format!("missing field `{key}`"))
    }
    fn reg(&self, key: &str) -> Result<u32, String> {
        self.get(key)?.parse().map_err(|_| format!("bad register in `{key}`"))
    }
    fn num(&self, key: &str) -> Result<u64, String> {
        parse_u64_tok(self.get(key)?)
    }
    fn src(&self, key: &str) -> Result<Src, String> {
        parse_src(self.get(key)?)
    }
    fn list(&self, key: &str) -> Result<Vec<Src>, String> {
        parse_list(self.get(key)?)
    }
    fn tid(&self, key: &str) -> Result<u32, String> {
        parse_tid(self.get(key)?)
    }
    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(format!("bad bool `{other}`")),
        }
    }
}

fn parse_check(f: &Fields<'_>) -> Result<CheckOp, String> {
    let args_v = f.list("args")?;
    if args_v.len() != 5 {
        return Err("check op must carry exactly 5 arg slots".into());
    }
    let mut args = [Src::Const(0); 5];
    args.copy_from_slice(&args_v);
    Ok(CheckOp {
        host: f.num("h")? as u32,
        args,
        n: f.num("n")? as u8,
        site: parse_site(f.get("site")?)?,
    })
}

fn parse_op(line: &str) -> Result<Op, String> {
    // `msg="..."` (always the last field) may contain spaces: split it off
    // before tokenizing.
    let (head, msg) = match line.find(" msg=") {
        Some(i) => (&line[..i], Some(unquote(line[i + 5..].trim())?)),
        None => (line, None),
    };
    let toks: Vec<&str> = head.split_whitespace().collect();
    let (&mn, rest) = toks.split_first().ok_or("empty op line")?;
    let f = Fields { toks: rest };
    Ok(match mn {
        "alloca" => Op::Alloca { dst: f.reg("d")?, size: f.num("size")?, count: f.src("count")? },
        "load" => {
            Op::Load { dst: f.reg("d")?, ty: f.tid("ty")?, width: f.num("w")?, ptr: f.src("p")? }
        }
        "store" => Op::Store { width: f.num("w")?, ptr: f.src("p")?, val: f.src("v")? },
        "gep" => {
            let terms_tok = f.get("terms")?;
            let inner = terms_tok
                .strip_prefix('[')
                .and_then(|t| t.strip_suffix(']'))
                .ok_or("bad terms list")?;
            let mut terms = Vec::new();
            if !inner.is_empty() {
                for t in inner.split(',') {
                    let mut parts = t.splitn(3, ':');
                    let src = parse_src(parts.next().ok_or("bad term")?)?;
                    let spec = parse_spec(parts.next().ok_or("bad term")?)?;
                    let size: i64 =
                        parts.next().ok_or("bad term")?.parse().map_err(|_| "bad term size")?;
                    terms.push(GepTerm { src, spec, size });
                }
            }
            Op::Gep {
                dst: f.reg("d")?,
                base: f.src("base")?,
                off: f.num("off")?,
                terms: terms.into_boxed_slice(),
            }
        }
        "gepdyn" => {
            let idx_tok = f.get("idx")?;
            let inner = idx_tok
                .strip_prefix('[')
                .and_then(|t| t.strip_suffix(']'))
                .ok_or("bad idx list")?;
            let mut indices = Vec::new();
            if !inner.is_empty() {
                for t in inner.split(',') {
                    let mut parts = t.splitn(2, ':');
                    let src = parse_src(parts.next().ok_or("bad idx")?)?;
                    let spec = parse_spec(parts.next().ok_or("bad idx")?)?;
                    indices.push((src, spec));
                }
            }
            Op::GepDyn {
                dst: f.reg("d")?,
                elem_ty: f.tid("ety")?,
                base: f.src("base")?,
                indices: indices.into_boxed_slice(),
            }
        }
        "select" => {
            Op::Select { dst: f.reg("d")?, cond: f.src("c")?, t: f.src("t")?, e: f.src("e")? }
        }
        "bin" => Op::Bin {
            dst: f.reg("d")?,
            op: parse_bin_op(f.get("o")?)?,
            ty: f.tid("ty")?,
            lhs: f.src("l")?,
            rhs: f.src("r")?,
        },
        "icmp" => Op::Icmp {
            dst: f.reg("d")?,
            pred: parse_icmp_pred(f.get("o")?)?,
            ty: f.tid("ty")?,
            lhs: f.src("l")?,
            rhs: f.src("r")?,
        },
        "fcmp" => Op::Fcmp {
            dst: f.reg("d")?,
            pred: parse_fcmp_pred(f.get("o")?)?,
            lhs: f.src("l")?,
            rhs: f.src("r")?,
        },
        "cast" => Op::Cast {
            dst: f.reg("d")?,
            op: parse_cast_op(f.get("o")?)?,
            from: f.tid("from")?,
            to: f.tid("to")?,
            val: f.src("v")?,
        },
        "call" => Op::CallStatic {
            dst: f.reg("d")?,
            fid: f.num("f")? as u32,
            charge: f.num("charge")?,
            args: f.list("args")?.into_boxed_slice(),
        },
        "callhost" => Op::CallHost {
            dst: f.reg("d")?,
            host: f.num("h")? as u32,
            void: f.boolean("void")?,
            args: f.list("args")?.into_boxed_slice(),
        },
        "sbcheck" => Op::SbCheck(parse_check(&f)?),
        "lfcheck" => Op::LfCheck(parse_check(&f)?),
        "rzcheck" => Op::RzCheck(parse_check(&f)?),
        "lfinv" => Op::LfInvariant(parse_check(&f)?),
        "callunknown" => Op::CallUnknown {
            name: f
                .get("name")?
                .strip_prefix('n')
                .and_then(|n| n.parse().ok())
                .ok_or("bad name ref")?,
            args: f.list("args")?.into_boxed_slice(),
        },
        "callind" => Op::CallIndirect {
            dst: f.reg("d")?,
            void: f.boolean("void")?,
            charge: f.num("charge")?,
            callee: f.src("callee")?,
            args: f.list("args")?.into_boxed_slice(),
        },
        "memcpy" => Op::MemCpy { dst: f.src("d")?, src: f.src("s")?, len: f.src("n")? },
        "memset" => Op::MemSet { dst: f.src("d")?, byte: f.src("b")?, len: f.src("n")? },
        "nop" => Op::Nop,
        "trap" => Op::TrapUnsupported {
            charge: f.num("charge")?,
            class: f
                .get("class")
                .and_then(|c| OpClass::from_name(c).ok_or_else(|| format!("bad class `{c}`")))?,
            pre: f.list("pre")?.into_boxed_slice(),
            msg: msg.ok_or("trap op missing msg")?.into(),
        },
        "ret" => match f.get("v") {
            Ok(v) => Op::Ret { val: Some(parse_src(v)?) },
            Err(_) => Op::Ret { val: None },
        },
        "br" => Op::Br { target: f.num("t")? as u32, edge: parse_edge_ref(f.get("e")?)? },
        "condbr" => Op::CondBr {
            cond: f.src("c")?,
            tt: f.num("tt")? as u32,
            te: parse_edge_ref(f.get("te")?)?,
            et: f.num("et")? as u32,
            ee: parse_edge_ref(f.get("ee")?)?,
        },
        "unreachable" => Op::Unreachable,
        other => return Err(format!("unknown op mnemonic `{other}`")),
    })
}

/// Parses the textual form produced by [`BcModule::disassemble`] back into a
/// structurally identical [`BcModule`] (modulo host-function closures, which
/// are not serializable — `hosts` is left empty).
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn parse_bytecode(text: &str) -> Result<BcModule, String> {
    let mut m = BcModule::default();
    let mut cur: Option<(usize, BcFunc)> = None;
    let mut nfuncs = 0usize;

    let finish = |m: &mut BcModule, cur: &mut Option<(usize, BcFunc)>| -> Result<(), String> {
        if let Some((fid, mut bf)) = cur.take() {
            bf.seal();
            *m.funcs.get_mut(fid).ok_or("func id out of range")? = Some(bf);
        }
        Ok(())
    };

    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |e: String| format!("line {}: {e}", lno + 1);
        let mut toks = line.split_whitespace();
        let head = toks.next().unwrap();
        match head {
            "bcmodule" => {
                let f = Fields { toks: &line.split_whitespace().skip(1).collect::<Vec<_>>() };
                nfuncs = f.num("nfuncs").map_err(err)? as usize;
                m.nsites = f.num("nsites").map_err(err)? as usize;
                m.funcs = vec![None; nfuncs];
            }
            "name" => {
                let _ix = toks.next().ok_or_else(|| err("missing name index".into()))?;
                let n = toks
                    .next()
                    .and_then(|t| t.strip_prefix('@'))
                    .ok_or_else(|| err("missing @name".into()))?;
                m.names.push(n.to_string());
            }
            "host" => {
                let _ix = toks.next().ok_or_else(|| err("missing host index".into()))?;
                let n = toks
                    .next()
                    .and_then(|t| t.strip_prefix('@'))
                    .ok_or_else(|| err("missing @name".into()))?;
                m.host_names.push(n.to_string());
                m.host_classes.push(classify_host(n));
            }
            "targets" => {
                for t in toks {
                    let (tag, rest) = t.split_at(1);
                    let n: u32 = rest.parse().map_err(|_| err(format!("bad target `{t}`")))?;
                    m.targets.push(match tag {
                        "s" => CallTarget::Static(n),
                        "h" => CallTarget::Host(n),
                        "u" => CallTarget::Unknown(n),
                        _ => return Err(err(format!("bad target `{t}`"))),
                    });
                }
            }
            "func" => {
                finish(&mut m, &mut cur).map_err(|e| err(e.to_string()))?;
                let fid: usize = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad func id".into()))?;
                let name = toks
                    .next()
                    .and_then(|t| t.strip_prefix('@'))
                    .ok_or_else(|| err("missing @name".into()))?
                    .to_string();
                let f = Fields { toks: &line.split_whitespace().skip(3).collect::<Vec<_>>() };
                cur = Some((
                    fid,
                    BcFunc {
                        name,
                        nregs: f.num("nregs").map_err(err)? as u32,
                        nparams: f.num("nparams").map_err(err)? as u32,
                        float_regs: Vec::new(),
                        consts: Vec::new(),
                        types: Vec::new(),
                        ops: Vec::new(),
                        locs: Vec::new(),
                        edges: Vec::new(),
                        reg_init: Box::new([]),
                    },
                ));
            }
            "ftype" => {
                let bf = &mut cur.as_mut().ok_or_else(|| err("ftype outside func".into()))?.1;
                let tid_tok = toks.next().ok_or_else(|| err("missing type id".into()))?;
                let rest = line.find(tid_tok).map(|i| &line[i + tid_tok.len()..]).unwrap_or("");
                bf.types.push(parse_type(rest).map_err(err)?);
            }
            "fconst" => {
                let bf = &mut cur.as_mut().ok_or_else(|| err("fconst outside func".into()))?.1;
                let _ix = toks.next().ok_or_else(|| err("missing const id".into()))?;
                let kind = toks.next().ok_or_else(|| err("missing const kind".into()))?;
                let val =
                    parse_u64_tok(toks.next().ok_or_else(|| err("missing const value".into()))?)
                        .map_err(err)?;
                bf.consts.push(match kind {
                    "i" => RtVal::Int(val),
                    "f" => RtVal::Float(f64::from_bits(val)),
                    other => return Err(err(format!("bad const kind `{other}`"))),
                });
            }
            "fregs" => {
                let bf = &mut cur.as_mut().ok_or_else(|| err("fregs outside func".into()))?.1;
                for t in toks {
                    bf.float_regs.push(t.parse().map_err(|_| err(format!("bad reg `{t}`")))?);
                }
            }
            "edge" => {
                let bf = &mut cur.as_mut().ok_or_else(|| err("edge outside func".into()))?.1;
                let _ix = toks.next().ok_or_else(|| err("missing edge id".into()))?;
                let mut entries = Vec::new();
                // Entries: `mv <dst> <src>` pairs, optionally terminated by
                // `miss "<escaped message>"` (which consumes the line tail).
                let after_ix = {
                    let mut it = line.splitn(3, char::is_whitespace);
                    it.next();
                    it.next();
                    it.next().unwrap_or("").trim()
                };
                let mut rest = after_ix;
                loop {
                    rest = rest.trim_start();
                    if rest.is_empty() {
                        break;
                    }
                    if let Some(tail) = rest.strip_prefix("miss ") {
                        entries.push(MoveEntry::Missing(unquote(tail.trim()).map_err(err)?.into()));
                        break;
                    }
                    let tail = rest
                        .strip_prefix("mv ")
                        .ok_or_else(|| err(format!("bad edge entry at `{rest}`")))?;
                    let mut it = tail.splitn(3, char::is_whitespace);
                    let dst: u32 = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err("bad mv dst".into()))?;
                    let src = parse_src(it.next().ok_or_else(|| err("bad mv src".into()))?)
                        .map_err(err)?;
                    entries.push(MoveEntry::Move { dst, src });
                    rest = it.next().unwrap_or("");
                }
                bf.edges.push(entries.into_boxed_slice());
            }
            _ if head == "op" || head.starts_with("op@") => {
                let bf = &mut cur.as_mut().ok_or_else(|| err("op outside func".into()))?.1;
                let loc = match head.strip_prefix("op@") {
                    Some(l) => Some(l.parse().map_err(|_| err(format!("bad loc `{head}`")))?),
                    None => None,
                };
                let body = line[head.len()..].trim();
                bf.ops.push(parse_op(body).map_err(err)?);
                bf.locs.push(loc);
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    finish(&mut m, &mut cur)?;
    if m.funcs.len() != nfuncs {
        return Err("function count mismatch".into());
    }
    Ok(m)
}
