//! Host functions: the runtime library interface.
//!
//! Instrumentation mechanisms ship a runtime library (checks, metadata
//! structures, allocators). In this VM those are *host functions*: named
//! entry points holding Rust state, registered before execution. The default
//! registry provides `malloc`/`free` (bump allocator), printing, and
//! `abort`; instrumentation runtimes extend or *replace* entries (Low-Fat
//! Pointers replace `malloc` wholesale, as the paper notes external heap
//! allocations automatically become low-fat).

use std::collections::HashMap;
use std::rc::Rc;

use crate::cost::{helper, CostModel};
use crate::interp::Trap;
use crate::memory::Memory;
use crate::stats::{SiteProfile, VmStats};
use crate::value::RtVal;

/// Which statistics bucket a host function's cost lands in.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CostCategory {
    /// Application work (default bucket for app-visible helpers).
    App,
    /// Safety checks.
    Checks,
    /// Metadata propagation.
    Metadata,
    /// Allocator work.
    Allocator,
    /// Everything else (I/O, ...).
    Other,
}

/// Mutable VM state handed to host functions.
pub struct HostCtx<'a> {
    /// The VM memory.
    pub mem: &'a mut Memory,
    /// Statistics (host functions update check counters directly).
    pub stats: &'a mut VmStats,
    /// Program output lines (`print_*` helpers append here).
    pub out: &'a mut Vec<String>,
    /// Per-check-site dynamic counters (check helpers record here).
    pub profile: &'a mut SiteProfile,
}

impl HostCtx<'_> {
    /// Charges `cost` units into `category`.
    pub fn charge(&mut self, category: CostCategory, cost: u64) {
        self.stats.cost_total += cost;
        match category {
            CostCategory::App => self.stats.cost_app += cost,
            CostCategory::Checks => self.stats.cost_checks += cost,
            CostCategory::Metadata => self.stats.cost_metadata += cost,
            CostCategory::Allocator => self.stats.cost_allocator += cost,
            CostCategory::Other => self.stats.cost_other += cost,
        }
    }

    /// Records one execution of check site `site` in the per-site profile.
    ///
    /// Check helpers call this with the same `cost` they charge into
    /// [`CostCategory::Checks`], so per-site cost totals reconcile exactly
    /// with [`VmStats::cost_checks`].
    pub fn record_site(&mut self, site: usize, wide: bool, cost: u64) {
        self.profile.record(site, wide, cost);
    }
}

/// The boxed host-function type. Returns the result value (use
/// `RtVal::Int(0)` for `void` helpers) or a [`Trap`].
pub type HostFn = Rc<dyn Fn(&mut HostCtx<'_>, &[RtVal]) -> Result<RtVal, Trap>>;

/// A registry of host functions, keyed by name.
#[derive(Clone, Default)]
pub struct HostRegistry {
    map: HashMap<String, HostFn>,
    version: u64,
}

impl HostRegistry {
    /// An empty registry.
    pub fn new() -> HostRegistry {
        HostRegistry::default()
    }

    /// Registers (or replaces) a host function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut HostCtx<'_>, &[RtVal]) -> Result<RtVal, Trap> + 'static,
    ) {
        self.version += 1;
        self.map.insert(name.into(), Rc::new(f));
    }

    /// A counter bumped on every [`HostRegistry::register`] call.
    ///
    /// The bytecode backend caches compiled code keyed on this value, so
    /// installing (or replacing) a runtime library after a compile
    /// invalidates the cache and call sites are re-resolved.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Looks up a host function.
    pub fn get(&self, name: &str) -> Option<&HostFn> {
        self.map.get(name)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Names of all registered host functions (sorted), for diagnostics.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for HostRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRegistry").field("names", &self.names()).finish()
    }
}

/// State of the default bump allocator.
#[derive(Debug)]
pub struct BumpAllocator {
    next: u64,
    /// Total bytes handed out.
    pub allocated: u64,
}

impl BumpAllocator {
    /// Creates a bump allocator starting at `base`.
    pub fn new(base: u64) -> BumpAllocator {
        BumpAllocator { next: base, allocated: 0 }
    }

    /// Allocates `size` bytes with 16-byte alignment, mapping the pages.
    pub fn alloc(&mut self, mem: &mut Memory, size: u64) -> u64 {
        let size = size.max(1);
        let addr = (self.next + 15) & !15;
        self.next = addr + size;
        self.allocated += size;
        mem.map(addr, size);
        addr
    }
}

/// Builds the default registry: `malloc`, `calloc`, `free`, `print_i64`,
/// `print_f64`, `print_str`, `abort`.
///
/// The allocator state is shared behind an `Rc<RefCell<..>>`, so cloning the
/// registry aliases the same heap.
pub fn default_registry(cost: &CostModel) -> HostRegistry {
    use std::cell::RefCell;
    let _ = cost;
    let mut reg = HostRegistry::new();
    let heap = Rc::new(RefCell::new(BumpAllocator::new(crate::layout::HEAP_BASE)));

    {
        let heap = heap.clone();
        reg.register("malloc", move |ctx, args| {
            ctx.charge(CostCategory::Allocator, helper::MALLOC);
            let size = args[0].as_int();
            Ok(RtVal::Int(heap.borrow_mut().alloc(ctx.mem, size)))
        });
    }
    {
        let heap = heap.clone();
        reg.register("calloc", move |ctx, args| {
            let n = args[0].as_int();
            let sz = args[1].as_int();
            let total = n.saturating_mul(sz);
            ctx.charge(CostCategory::Allocator, helper::MALLOC + total / 8);
            // Pages are zero on map; nothing else to do.
            Ok(RtVal::Int(heap.borrow_mut().alloc(ctx.mem, total)))
        });
    }
    reg.register("free", move |ctx, _args| {
        ctx.charge(CostCategory::Allocator, helper::FREE);
        Ok(RtVal::Int(0))
    });
    reg.register("print_i64", |ctx, args| {
        ctx.charge(CostCategory::Other, helper::PRINT);
        let v = args[0].as_int() as i64;
        ctx.out.push(v.to_string());
        Ok(RtVal::Int(0))
    });
    reg.register("print_f64", |ctx, args| {
        ctx.charge(CostCategory::Other, helper::PRINT);
        let v = args[0].as_float();
        ctx.out.push(format!("{v:.6}"));
        Ok(RtVal::Int(0))
    });
    reg.register("print_str", |ctx, args| {
        ctx.charge(CostCategory::Other, helper::PRINT);
        // Reads a NUL-terminated string from memory.
        let mut addr = args[0].as_int();
        let mut bytes = Vec::new();
        loop {
            let b = ctx.mem.read_uint(addr, 1).map_err(|f| Trap::UnmappedAccess {
                addr: f.addr,
                width: 1,
                write: false,
                func: None,
                line: None,
            })? as u8;
            if b == 0 || bytes.len() > 4096 {
                break;
            }
            bytes.push(b);
            addr += 1;
        }
        ctx.out.push(String::from_utf8_lossy(&bytes).into_owned());
        Ok(RtVal::Int(0))
    });
    reg.register("abort", |_ctx, _args| Err(Trap::Abort("abort() called".into())));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (Memory, VmStats, Vec<String>, SiteProfile) {
        (Memory::new(), VmStats::default(), Vec::new(), SiteProfile::new())
    }

    #[test]
    fn default_registry_has_core_helpers() {
        let reg = default_registry(&CostModel::default());
        for name in ["malloc", "calloc", "free", "print_i64", "print_f64", "abort"] {
            assert!(reg.contains(name), "{name} missing");
        }
    }

    #[test]
    fn malloc_maps_memory_and_charges_allocator() {
        let reg = default_registry(&CostModel::default());
        let (mut mem, mut stats, mut out, mut prof) = ctx_parts();
        let mut ctx =
            HostCtx { mem: &mut mem, stats: &mut stats, out: &mut out, profile: &mut prof };
        let f = reg.get("malloc").unwrap().clone();
        let p = f(&mut ctx, &[RtVal::Int(100)]).unwrap().as_int();
        assert!(p >= crate::layout::HEAP_BASE);
        assert_eq!(p % 16, 0);
        assert!(mem.is_mapped(p, 100));
        assert!(stats.cost_allocator > 0);
    }

    #[test]
    fn consecutive_mallocs_do_not_overlap() {
        let reg = default_registry(&CostModel::default());
        let (mut mem, mut stats, mut out, mut prof) = ctx_parts();
        let mut ctx =
            HostCtx { mem: &mut mem, stats: &mut stats, out: &mut out, profile: &mut prof };
        let f = reg.get("malloc").unwrap().clone();
        let a = f(&mut ctx, &[RtVal::Int(24)]).unwrap().as_int();
        let b = f(&mut ctx, &[RtVal::Int(24)]).unwrap().as_int();
        assert!(b >= a + 24);
    }

    #[test]
    fn print_appends_output() {
        let reg = default_registry(&CostModel::default());
        let (mut mem, mut stats, mut out, mut prof) = ctx_parts();
        let mut ctx =
            HostCtx { mem: &mut mem, stats: &mut stats, out: &mut out, profile: &mut prof };
        let f = reg.get("print_i64").unwrap().clone();
        f(&mut ctx, &[RtVal::Int((-5i64) as u64)]).unwrap();
        assert_eq!(out, vec!["-5".to_string()]);
    }

    #[test]
    fn replacement_overrides() {
        let mut reg = default_registry(&CostModel::default());
        reg.register("malloc", |_ctx, _args| Ok(RtVal::Int(0x1234)));
        let (mut mem, mut stats, mut out, mut prof) = ctx_parts();
        let mut ctx =
            HostCtx { mem: &mut mem, stats: &mut stats, out: &mut out, profile: &mut prof };
        let f = reg.get("malloc").unwrap().clone();
        assert_eq!(f(&mut ctx, &[RtVal::Int(8)]).unwrap().as_int(), 0x1234);
    }
}
