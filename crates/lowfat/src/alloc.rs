//! Low-fat heap and stack allocators.
//!
//! Both allocators hand out size-class-aligned objects inside the low-fat
//! regions. The heap allocator keeps a free list per region; the stack
//! allocator bumps per-region watermarks that are rolled back wholesale by
//! `save`/`restore` tokens (mirroring the NDSS'17 stack scheme, where stack
//! frames live in aliased low-fat memory and unwind in LIFO order).
//!
//! Heap and stack coexist in the same regions without colliding: the heap
//! bumps *up* from the bottom of each region, the stack bumps *down* from
//! the top.

use crate::layout::{alloc_size, class_for_request, NUM_REGIONS, REGION_SHIFT};

/// Result of a successful allocation: the object address and the padded
/// (class) size the embedder must map.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Allocation {
    /// Base address of the object (size-class aligned).
    pub addr: u64,
    /// The class size actually reserved.
    pub class_size: u64,
}

#[derive(Clone, Debug)]
struct RegionState {
    /// Next object index for upward (heap) bumping; starts at 1 so that no
    /// object sits exactly at the region base.
    next_up: u64,
    /// Next object index for downward (stack) bumping, exclusive.
    next_down: u64,
    /// Free list of object addresses (heap only).
    free: Vec<u64>,
}

impl RegionState {
    fn new(region: u64) -> RegionState {
        let objects = (1u64 << REGION_SHIFT) / alloc_size(region);
        RegionState { next_up: 1, next_down: objects, free: Vec::new() }
    }
}

/// The low-fat heap allocator (one free list per size class).
#[derive(Clone, Debug)]
pub struct LowFatHeap {
    regions: Vec<RegionState>,
    /// Total successful low-fat allocations.
    pub alloc_count: u64,
    /// Requests that did not fit any class (fell back to the default
    /// allocator — the Table 2 `429mcf` path).
    pub fallback_count: u64,
}

impl Default for LowFatHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl LowFatHeap {
    /// Creates an empty heap.
    pub fn new() -> LowFatHeap {
        let regions = (1..=NUM_REGIONS).map(RegionState::new).collect();
        LowFatHeap { regions, alloc_count: 0, fallback_count: 0 }
    }

    /// Allocates `size` bytes; `None` means the request cannot be served
    /// low-fat (too large or region exhausted) and the caller must fall back
    /// to the standard allocator.
    pub fn alloc(&mut self, size: u64) -> Option<Allocation> {
        let Some(region) = class_for_request(size) else {
            self.fallback_count += 1;
            return None;
        };
        let class_size = alloc_size(region);
        let st = &mut self.regions[(region - 1) as usize];
        let addr = if let Some(a) = st.free.pop() {
            a
        } else {
            if st.next_up >= st.next_down {
                self.fallback_count += 1;
                return None; // region exhausted
            }
            let a = (region << REGION_SHIFT) + st.next_up * class_size;
            st.next_up += 1;
            a
        };
        self.alloc_count += 1;
        Some(Allocation { addr, class_size })
    }

    /// Returns an object to its region's free list.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a low-fat object base produced by this
    /// allocator's layout (callers route non-low-fat frees to the default
    /// allocator first).
    pub fn free(&mut self, addr: u64) {
        let region = addr >> REGION_SHIFT;
        assert!((1..=NUM_REGIONS).contains(&region), "free of non-low-fat pointer 0x{addr:x}");
        let class_size = alloc_size(region);
        assert_eq!(addr & (class_size - 1), 0, "free of interior pointer 0x{addr:x}");
        self.regions[(region - 1) as usize].free.push(addr);
    }
}

/// Rollback token for the low-fat stack.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StackToken(usize);

impl StackToken {
    /// Raw representation (for passing through a VM register).
    pub fn as_raw(self) -> u64 {
        self.0 as u64
    }

    /// Reconstructs a token from its raw representation.
    pub fn from_raw(raw: u64) -> StackToken {
        StackToken(raw as usize)
    }
}

/// The low-fat stack allocator.
#[derive(Clone, Debug, Default)]
pub struct LowFatStack {
    /// Log of (region, previous `next_down`) entries for rollback.
    log: Vec<(u64, u64)>,
    /// Downward watermarks per region, lazily initialized.
    marks: Vec<Option<u64>>,
}

impl LowFatStack {
    /// Creates an empty stack allocator.
    pub fn new() -> LowFatStack {
        LowFatStack { log: Vec::new(), marks: vec![None; NUM_REGIONS as usize] }
    }

    /// Captures the current stack height.
    pub fn save(&self) -> StackToken {
        StackToken(self.log.len())
    }

    /// Allocates `size` bytes of stack space; `None` falls back to the
    /// regular (unprotected) stack.
    pub fn alloc(&mut self, size: u64) -> Option<Allocation> {
        let region = class_for_request(size)?;
        let class_size = alloc_size(region);
        let idx = (region - 1) as usize;
        let objects = (1u64 << REGION_SHIFT) / class_size;
        let cur = self.marks[idx].unwrap_or(objects);
        if cur <= objects / 2 {
            return None; // stack half exhausted; don't collide with heap
        }
        let new = cur - 1;
        self.log.push((region, cur));
        self.marks[idx] = Some(new);
        Some(Allocation { addr: (region << REGION_SHIFT) + new * class_size, class_size })
    }

    /// Rolls back all allocations made after `token` was taken.
    pub fn restore(&mut self, token: StackToken) {
        while self.log.len() > token.0 {
            let (region, prev) = self.log.pop().expect("log entry");
            self.marks[(region - 1) as usize] = Some(prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{base_of, is_low_fat, size_of_ptr};

    #[test]
    fn heap_allocations_are_aligned_and_low_fat() {
        let mut h = LowFatHeap::new();
        for size in [1u64, 8, 16, 24, 100, 4000, 1 << 20] {
            let a = h.alloc(size).unwrap();
            assert!(is_low_fat(a.addr), "0x{:x}", a.addr);
            assert_eq!(a.addr % a.class_size, 0);
            assert!(a.class_size > size);
            assert_eq!(base_of(a.addr), a.addr);
            assert_eq!(size_of_ptr(a.addr), Some(a.class_size));
        }
    }

    #[test]
    fn interior_pointers_recover_base() {
        let mut h = LowFatHeap::new();
        let a = h.alloc(100).unwrap(); // class 128
        assert_eq!(a.class_size, 128);
        for off in [0u64, 1, 63, 100, 127] {
            assert_eq!(base_of(a.addr + off), a.addr);
        }
    }

    #[test]
    fn distinct_allocations_never_overlap() {
        let mut h = LowFatHeap::new();
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for i in 0..100u64 {
            let size = (i % 60) + 1;
            let a = h.alloc(size).unwrap();
            for &(b, s) in &seen {
                assert!(a.addr + a.class_size <= b || b + s <= a.addr, "overlap");
            }
            seen.push((a.addr, a.class_size));
        }
    }

    #[test]
    fn free_list_reuse() {
        let mut h = LowFatHeap::new();
        let a = h.alloc(50).unwrap();
        h.free(a.addr);
        let b = h.alloc(40).unwrap(); // same class (64)
        assert_eq!(a.addr, b.addr);
    }

    #[test]
    fn oversized_requests_fall_back() {
        let mut h = LowFatHeap::new();
        assert!(h.alloc(1 << 30).is_none()); // 1 GiB + padding byte
        assert!(h.alloc(3 << 30).is_none());
        assert_eq!(h.fallback_count, 2);
        assert!(h.alloc(8).is_some());
        assert_eq!(h.alloc_count, 1);
    }

    #[test]
    #[should_panic(expected = "non-low-fat")]
    fn free_of_foreign_pointer_panics() {
        let mut h = LowFatHeap::new();
        h.free(0xE000_0000_0000);
    }

    #[test]
    fn stack_lifo_discipline() {
        let mut s = LowFatStack::new();
        let t0 = s.save();
        let a = s.alloc(24).unwrap();
        let b = s.alloc(24).unwrap();
        assert_ne!(a.addr, b.addr);
        s.restore(t0);
        let c = s.alloc(24).unwrap();
        assert_eq!(c.addr, a.addr, "restore must reclaim the frame");
    }

    #[test]
    fn nested_frames() {
        let mut s = LowFatStack::new();
        let outer = s.save();
        let a = s.alloc(100).unwrap();
        let inner = s.save();
        let _b = s.alloc(100).unwrap();
        s.restore(inner);
        let b2 = s.alloc(100).unwrap();
        assert_ne!(b2.addr, a.addr);
        s.restore(outer);
        let a2 = s.alloc(100).unwrap();
        assert_eq!(a2.addr, a.addr);
    }

    #[test]
    fn stack_and_heap_share_regions_without_collision() {
        let mut h = LowFatHeap::new();
        let mut s = LowFatStack::new();
        let ha = h.alloc(24).unwrap();
        let sa = s.alloc(24).unwrap();
        assert_eq!(ha.class_size, sa.class_size);
        assert!(sa.addr > ha.addr, "stack allocates from the top");
        assert!(sa.addr - ha.addr >= sa.class_size);
    }

    #[test]
    fn stack_allocations_are_low_fat() {
        let mut s = LowFatStack::new();
        let a = s.alloc(8).unwrap();
        assert!(is_low_fat(a.addr));
        assert_eq!(base_of(a.addr + 5), a.addr);
    }
}
