//! Region layout arithmetic (Figures 3 and 4 of the paper).

/// log2 of the smallest size class (16 bytes).
pub const MIN_CLASS_LOG2: u32 = 4;
/// log2 of the largest size class (1 GiB) — cf. §4.6: "it exceeds the
/// largest region size, in our case 1 GiB".
pub const MAX_CLASS_LOG2: u32 = 30;
/// Shift from address to region index (regions are 4 GiB).
pub const REGION_SHIFT: u32 = 32;
/// Number of low-fat regions (region indices `1..=NUM_REGIONS`).
pub const NUM_REGIONS: u64 = (MAX_CLASS_LOG2 - MIN_CLASS_LOG2 + 1) as u64;

/// Region index of a pointer (`ptr >> 32`). Index 0 and indices above
/// [`NUM_REGIONS`] are *not* low-fat.
#[inline]
pub fn region_of(ptr: u64) -> u64 {
    ptr >> REGION_SHIFT
}

/// Whether `ptr` points into a low-fat region.
#[inline]
pub fn is_low_fat(ptr: u64) -> bool {
    let r = region_of(ptr);
    (1..=NUM_REGIONS).contains(&r)
}

/// Allocation size of region `region` (`1 <<(region + MIN_CLASS_LOG2 - 1)`).
///
/// # Panics
///
/// Panics if `region` is not a low-fat region index.
#[inline]
pub fn alloc_size(region: u64) -> u64 {
    assert!((1..=NUM_REGIONS).contains(&region), "not a low-fat region: {region}");
    1u64 << (region as u32 + MIN_CLASS_LOG2 - 1)
}

/// Base pointer of the object `ptr` points into (mask off the offset bits).
///
/// Only meaningful for low-fat pointers; returns `ptr` unchanged otherwise.
#[inline]
pub fn base_of(ptr: u64) -> u64 {
    if !is_low_fat(ptr) {
        return ptr;
    }
    let size = alloc_size(region_of(ptr));
    ptr & !(size - 1)
}

/// (Padded) object size for a low-fat pointer; `None` if not low-fat.
#[inline]
pub fn size_of_ptr(ptr: u64) -> Option<u64> {
    if is_low_fat(ptr) {
        Some(alloc_size(region_of(ptr)))
    } else {
        None
    }
}

/// The region whose size class can hold a request of `size` bytes *plus the
/// one-byte one-past-the-end padding*, or `None` if the request exceeds the
/// largest class.
#[inline]
pub fn class_for_request(size: u64) -> Option<u64> {
    let padded = size.checked_add(1)?;
    let log = 64 - (padded - 1).leading_zeros().min(63);
    let log = log.max(MIN_CLASS_LOG2).max(1);
    // log is ceil(log2(padded)) for padded > 1.
    let log = if padded <= (1u64 << MIN_CLASS_LOG2) { MIN_CLASS_LOG2 } else { log };
    if log > MAX_CLASS_LOG2 {
        return None;
    }
    Some((log - MIN_CLASS_LOG2 + 1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_size_table_matches_paper() {
        assert_eq!(alloc_size(1), 16); // 2^4
        assert_eq!(alloc_size(2), 32);
        assert_eq!(alloc_size(NUM_REGIONS), 1 << 30); // 1 GiB
        assert_eq!(NUM_REGIONS, 27);
    }

    #[test]
    fn base_recovery() {
        // An object of class 32 at base 2*2^32 + 5*32.
        let base = (2u64 << REGION_SHIFT) + 5 * 32;
        for off in 0..32 {
            assert_eq!(base_of(base + off), base, "offset {off}");
        }
        // One past the padded object lands in the *next* object.
        assert_eq!(base_of(base + 32), base + 32);
    }

    #[test]
    fn non_low_fat_pointers() {
        assert!(!is_low_fat(0));
        assert!(!is_low_fat(0x1000)); // region 0
        assert!(!is_low_fat(0xF000_0000_0000)); // stack area
        assert!(is_low_fat(1 << REGION_SHIFT));
        assert!(is_low_fat(27 << REGION_SHIFT));
        assert!(!is_low_fat(28 << REGION_SHIFT));
        assert_eq!(base_of(0x1234), 0x1234);
        assert_eq!(size_of_ptr(0x1234), None);
    }

    #[test]
    fn class_selection_includes_padding_byte() {
        // 16 bytes + 1 padding byte no longer fit the 16-byte class.
        assert_eq!(class_for_request(15), Some(1));
        assert_eq!(class_for_request(16), Some(2));
        assert_eq!(class_for_request(31), Some(2));
        assert_eq!(class_for_request(32), Some(3));
        assert_eq!(class_for_request(1), Some(1));
        assert_eq!(class_for_request(0), Some(1));
    }

    #[test]
    fn class_selection_rejects_oversized() {
        // Exactly 1 GiB still fails because of the padding byte — this is
        // the `429mcf` situation from Table 2.
        assert_eq!(class_for_request(1 << 30), None);
        assert_eq!(class_for_request((1 << 30) - 1), Some(27));
        assert_eq!(class_for_request(u64::MAX), None);
    }

    #[test]
    fn class_round_trips_with_alloc_size() {
        for sz in [1u64, 8, 15, 16, 17, 100, 4096, 1 << 20, (1 << 30) - 1] {
            let c = class_for_request(sz).unwrap();
            assert!(alloc_size(c) > sz, "class {c} too small for {sz}");
            if c > 1 {
                assert!(alloc_size(c - 1) < sz + 1, "class {c} not minimal for {sz}");
            }
        }
    }
}
