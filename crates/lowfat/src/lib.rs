#![warn(missing_docs)]

//! Low-Fat Pointers: address-space layout and allocators.
//!
//! Implements the core idea of Duck & Yap's Low-Fat Pointers (CC'16; stack
//! extension NDSS'17, globals extension 2018): the virtual address space is
//! partitioned into *regions*, one per power-of-two size class, so that the
//! base and size of an allocation are recoverable from the pointer value
//! alone (Figures 3–5 of the paper):
//!
//! ```text
//! region index = ptr >> 32          (which size class?)
//! size         = 1 << (region + 3)  (16 B for region 1 … 1 GiB for region 27)
//! base         = ptr & !(size - 1)  (objects are size-aligned)
//! ```
//!
//! This crate is dependency-free and purely computational: allocators return
//! addresses and sizes, and the embedder (the VM runtime environment) maps
//! the memory. That separation keeps the arithmetic testable in isolation.
//!
//! Allocation requests are padded by one byte before size-class selection so
//! that one-past-the-end pointers still decode to the same object (footnote
//! 3 of the paper) — with the visible consequence that overflows into the
//! padding are *not detected* (§4 of the paper; the `197parser` discussion).
//!
//! # Example
//!
//! ```
//! use lowfat::{LowFatHeap, base_of, size_of_ptr};
//!
//! let mut heap = LowFatHeap::new();
//! let alloc = heap.alloc(100).expect("fits a size class");
//! assert_eq!(alloc.class_size, 128); // 100 (+1 padding byte) rounds up
//!
//! // Any interior pointer decodes back to the object:
//! let interior = alloc.addr + 57;
//! assert_eq!(base_of(interior), alloc.addr);
//! assert_eq!(size_of_ptr(interior), Some(128));
//! ```

pub mod alloc;
pub mod layout;

pub use alloc::{LowFatHeap, LowFatStack, StackToken};
pub use layout::{
    alloc_size, base_of, class_for_request, is_low_fat, region_of, size_of_ptr, MAX_CLASS_LOG2,
    MIN_CLASS_LOG2, NUM_REGIONS, REGION_SHIFT,
};
