//! Regenerates **Figure 11**: Low-Fat Pointers under three configurations —
//! *optimized*, *unoptimized*, and *invariants only* (escape checks and
//! allocator changes without dereference checks).
//!
//! Paper reference points: the optimization's runtime impact is minor
//! (§5.3); the invariant series shows the cost of keeping the in-bounds
//! invariant (escape checks + low-fat allocators).

use bench::{geomean, measure, measure_baseline, paper_options, print_table, slowdown};
use meminstrument::{Mechanism, MiConfig};

fn main() {
    println!("Figure 11: lowfat — optimized / unoptimized / invariants only\n");
    let configs = [
        ("optimized", MiConfig::new(Mechanism::LowFat)),
        ("unoptimized", MiConfig::unoptimized(Mechanism::LowFat)),
        ("invariants", MiConfig::invariants_only(Mechanism::LowFat)),
    ];
    let mut rows = vec![];
    let mut sums: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        let mut row = vec![b.name.to_string()];
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let m = measure(&b, cfg, paper_options());
            let s = slowdown(&m, &base);
            sums[i].push(s);
            row.push(format!("{s:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&sums[0])),
        format!("{:.2}x", geomean(&sums[1])),
        format!("{:.2}x", geomean(&sums[2])),
    ]);
    print_table(&["benchmark", "optimized", "unoptimized", "invariants"], &rows);
}
