//! Regenerates **Figure 11**: Low-Fat Pointers under three configurations —
//! *optimized*, *unoptimized*, and *invariants only* (escape checks and
//! allocator changes without dereference checks).
//!
//! Paper reference points: the optimization's runtime impact is minor
//! (§5.3); the invariant series shows the cost of keeping the in-bounds
//! invariant (escape checks + low-fat allocators).

use bench::driver::{benchmark_programs, variants_configs, Driver, JobConfig};
use bench::{geomean, measurement_of, print_table, slowdown};
use meminstrument::{Mechanism, MiMode, OptConfig};

fn main() {
    let mech = Mechanism::LowFat;
    println!("Figure 11: {} — optimized / unoptimized / invariants only\n", mech.name());
    let report = Driver::new(benchmark_programs(), variants_configs(mech)).run();
    let base_cfg = JobConfig::baseline();
    let configs = [
        ("optimized", JobConfig::mechanism(mech)),
        ("unoptimized", JobConfig::mechanism(mech).opt(OptConfig::none())),
        ("invariants", JobConfig::mechanism(mech).mode(MiMode::GenInvariantsOnly)),
    ];
    let mut rows = vec![];
    let mut sums: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measurement_of(&report, &b, &base_cfg);
        let mut row = vec![b.name.to_string()];
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let m = measurement_of(&report, &b, cfg);
            let s = slowdown(&m, &base);
            sums[i].push(s);
            row.push(format!("{s:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&sums[0])),
        format!("{:.2}x", geomean(&sums[1])),
        format!("{:.2}x", geomean(&sums[2])),
    ]);
    print_table(&["benchmark", "optimized", "unoptimized", "invariants"], &rows);
}
