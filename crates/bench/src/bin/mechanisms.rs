//! Three-way mechanism comparison (framework-extensibility demo): the two
//! paper mechanisms plus the red-zone (ASan-style) port, with overheads and
//! a guarantee summary. §2.1 of the paper positions red-zone approaches at
//! lower overhead but inherently incomplete detection; this harness
//! measures that trade-off on the same benchmarks, same pipeline, same
//! cost model.

use bench::{geomean, measure, measure_baseline, paper_options, print_table, slowdown};
use meminstrument::{Mechanism, MiConfig};

fn main() {
    println!("Mechanism comparison: SoftBound / Low-Fat / RedZone (paper basis config)\n");
    let mut rows = vec![];
    let mut means: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        let mut row = vec![b.name.to_string()];
        for (i, mech) in
            [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone].into_iter().enumerate()
        {
            let m = measure(&b, &MiConfig::new(mech), paper_options());
            let s = slowdown(&m, &base);
            means[i].push(s);
            row.push(format!("{s:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&means[0])),
        format!("{:.2}x", geomean(&means[1])),
        format!("{:.2}x", geomean(&means[2])),
    ]);
    print_table(&["benchmark", "softbound", "lowfat", "redzone"], &rows);
    println!();
    println!("guarantees (see tests/redzone.rs):");
    println!("  softbound: exact object bounds; catches everything spatial incl. 1-byte overflows");
    println!("  lowfat   : padded object bounds; misses overflows into padding, rejects escaping OOB pointers");
    println!(
        "  redzone  : adjacent overflows only; silent once an access clears the 16-byte guard zone"
    );
}
