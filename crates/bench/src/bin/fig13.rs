//! Regenerates **Figure 13**: Low-Fat Pointers at the three compiler
//! pipeline extension points (§5.5). See `fig12` for the SoftBound variant.

use bench::driver::{benchmark_programs, extension_point_configs, Driver, JobConfig};
use bench::{geomean, measurement_of, print_table, slowdown};
use meminstrument::Mechanism;
use mir::pipeline::ExtensionPoint;

fn main() {
    let mech = Mechanism::LowFat;
    println!("Figure 13: {} at the three extension points\n", mech.name());
    let report = Driver::new(benchmark_programs(), extension_point_configs(mech)).run();
    let base_cfg = JobConfig::baseline();
    let mut rows = vec![];
    let mut sums: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measurement_of(&report, &b, &base_cfg);
        let mut row = vec![b.name.to_string()];
        for (i, ep) in ExtensionPoint::ALL.into_iter().enumerate() {
            let cfg = JobConfig::mechanism(mech).at(ep);
            let m = measurement_of(&report, &b, &cfg);
            let s = slowdown(&m, &base);
            sums[i].push(s);
            row.push(format!("{s:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&sums[0])),
        format!("{:.2}x", geomean(&sums[1])),
        format!("{:.2}x", geomean(&sums[2])),
    ]);
    print_table(
        &["benchmark", "ModuleOptimizerEarly", "ScalarOptimizerLate", "VectorizerStart"],
        &rows,
    );
}
