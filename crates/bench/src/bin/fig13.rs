//! Regenerates **Figure 13**: Low-Fat Pointers at the three compiler
//! pipeline extension points (§5.5). See `fig12` for the SoftBound variant.

use bench::{geomean, measure, measure_baseline, options_at, print_table, slowdown};
use meminstrument::{Mechanism, MiConfig};
use mir::pipeline::ExtensionPoint;

fn main() {
    println!("Figure 13: lowfat at the three extension points\n");
    let mut rows = vec![];
    let mut sums: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        let mut row = vec![b.name.to_string()];
        for (i, ep) in ExtensionPoint::ALL.into_iter().enumerate() {
            let m = measure(&b, &MiConfig::new(Mechanism::LowFat), options_at(ep));
            let s = slowdown(&m, &base);
            sums[i].push(s);
            row.push(format!("{s:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&sums[0])),
        format!("{:.2}x", geomean(&sums[1])),
        format!("{:.2}x", geomean(&sums[2])),
    ]);
    print_table(
        &["benchmark", "ModuleOptimizerEarly", "ScalarOptimizerLate", "VectorizerStart"],
        &rows,
    );
}
