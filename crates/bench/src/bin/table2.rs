//! Regenerates **Table 2**: percentage of dynamic dereference checks
//! executed with *wide bounds* (i.e. unable to validate anything), per
//! benchmark, for SoftBound and Low-Fat Pointers.
//!
//! Paper reference points: `164gzip` 61.71 % (SB), `429mcf` ~54 % (LF),
//! `433milc` exactly zero despite its size-less declaration, asterisks on
//! benchmarks with not a single wide check.
//!
//! Measured with the loop optimizations off (dominance only) — the paper
//! artifact's optimization set. Loop widening collapses in-bounds loop
//! checks into one preheader check, shrinking the denominator of the
//! wide-check percentage and skewing it against the paper's numbers.

use bench::driver::{benchmark_programs, Driver, JobConfig};
use bench::{measurement_of, print_table};
use meminstrument::{Mechanism, OptConfig};

fn main() {
    println!("Table 2: unsafe (wide-bounds) dereference checks, in %");
    println!("(* = not a single wide check; [sz] = contains size-less array declarations)\n");
    let sb_cfg = JobConfig::mechanism(Mechanism::SoftBound).opt(OptConfig::no_loops());
    let lf_cfg = JobConfig::mechanism(Mechanism::LowFat).opt(OptConfig::no_loops());
    let report = Driver::new(benchmark_programs(), vec![sb_cfg.clone(), lf_cfg.clone()]).run();
    let mut rows = vec![];
    for b in cbench::all() {
        let sb = measurement_of(&report, &b, &sb_cfg);
        let lf = measurement_of(&report, &b, &lf_cfg);
        let fmt = |wide: u64, total: u64| -> String {
            let pct = if total == 0 { 0.0 } else { 100.0 * wide as f64 / total as f64 };
            if wide == 0 {
                format!("{pct:.2}*")
            } else {
                format!("{pct:.2}")
            }
        };
        rows.push(vec![
            format!("{}{}", b.name, if b.has_size_unknown_arrays { " [sz]" } else { "" }),
            fmt(sb.stats.checks_wide, sb.stats.checks_executed),
            fmt(lf.stats.checks_wide, lf.stats.checks_executed),
            sb.stats.checks_executed.to_string(),
            lf.stats.checks_executed.to_string(),
        ]);
    }
    print_table(&["benchmark", "SB %", "LF %", "SB checks", "LF checks"], &rows);
}
