//! §5.4-style ablation: where does the overhead go? Cost is attributed per
//! category (application instructions, dereference/invariant checks,
//! metadata propagation, allocator) — the paper's "which parts of the
//! instrumentation contribute to the execution time overhead".

use bench::{measure, measure_baseline, paper_options, print_table};
use meminstrument::{Mechanism, MiConfig};

fn main() {
    println!("Cost breakdown per category, as a fraction of the baseline cost\n");
    let mut rows = vec![];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
            let m = measure(&b, &MiConfig::new(mech), paper_options());
            let s = &m.stats;
            let frac = |x: u64| format!("{:.2}", x as f64 / base.cost as f64);
            rows.push(vec![
                b.name.to_string(),
                mech.name().into(),
                format!("{:.2}x", m.cost as f64 / base.cost as f64),
                frac(s.cost_app),
                frac(s.cost_checks),
                frac(s.cost_metadata),
                frac(s.cost_allocator),
                s.metadata_loads.to_string(),
                s.metadata_stores.to_string(),
                s.invariant_checks_executed.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "benchmark",
            "mechanism",
            "total",
            "app",
            "checks",
            "metadata",
            "alloc",
            "mloads",
            "mstores",
            "invchecks",
        ],
        &rows,
    );
}
