//! Ablation for §5.1.2: the paper *disabled* the additional safety checks
//! inside SoftBound's libc wrappers to keep the runtime comparison fair.
//! This harness quantifies what that choice is worth: mean overhead with
//! and without wrapper checks (our wrappers cover the memcpy/memset
//! intrinsics).

use bench::{geomean, measure, measure_baseline, paper_options, print_table, slowdown};
use meminstrument::{Mechanism, MiConfig};

fn main() {
    println!("§5.1.2 ablation: SoftBound wrapper checks on/off\n");
    let mut rows = vec![];
    let mut offs = vec![];
    let mut ons = vec![];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        let off = measure(&b, &MiConfig::new(Mechanism::SoftBound), paper_options());
        let mut cfg = MiConfig::new(Mechanism::SoftBound);
        cfg.sb_wrapper_checks = true;
        let on = measure(&b, &cfg, paper_options());
        let (so, sn) = (slowdown(&off, &base), slowdown(&on, &base));
        offs.push(so);
        ons.push(sn);
        rows.push(vec![
            b.name.to_string(),
            format!("{so:.2}x"),
            format!("{sn:.2}x"),
            format!("+{}", on.stats.checks_executed - off.stats.checks_executed),
        ]);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&offs)),
        format!("{:.2}x", geomean(&ons)),
        "".into(),
    ]);
    print_table(&["benchmark", "checks off (paper)", "checks on", "extra checks"], &rows);
    println!("\nWrapper checks trade a little runtime for catching overflowing");
    println!("memcpy/memset ranges inside the (uninstrumented) libc (§4.3, Fig. 6).");
}
