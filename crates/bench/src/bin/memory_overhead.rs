//! Memory-overhead comparison — the third axis the paper names among the
//! challenges of memory-safety instrumentations (§2: "low overhead in terms
//! of runtime, binary size and memory usage").
//!
//! Reported per benchmark: mapped program memory relative to the baseline.
//! Low-Fat pays in allocation padding (size-class rounding), red zones pay
//! in guard zones, SoftBound's program memory is unchanged (its metadata
//! trie lives outside the program address space and is reported separately
//! as slots).

use bench::{geomean, measure, measure_baseline, paper_options, print_table};
use meminstrument::{Mechanism, MiConfig};

fn main() {
    println!("Memory overhead: mapped program bytes relative to the -O3 baseline\n");
    let mut rows = vec![];
    let mut means: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        let mut row = vec![b.name.to_string(), format!("{} KiB", base.stats.mapped_bytes / 1024)];
        for (i, mech) in
            [Mechanism::SoftBound, Mechanism::LowFat, Mechanism::RedZone].into_iter().enumerate()
        {
            let m = measure(&b, &MiConfig::new(mech), paper_options());
            let ratio = m.stats.mapped_bytes as f64 / base.stats.mapped_bytes as f64;
            means[i].push(ratio);
            row.push(format!("{ratio:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        "".into(),
        format!("{:.2}x", geomean(&means[0])),
        format!("{:.2}x", geomean(&means[1])),
        format!("{:.2}x", geomean(&means[2])),
    ]);
    print_table(&["benchmark", "baseline", "softbound", "lowfat", "redzone"], &rows);
    println!("\n(SoftBound's disjoint metadata is host-side here: trie slots grow with");
    println!("the number of distinct in-memory pointer locations, shadow stack with");
    println!("call depth — both reported by `cost_breakdown`'s metadata columns.)");
}
