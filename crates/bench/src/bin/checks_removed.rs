//! Regenerates the §5.3 claim: the dominance-based check elimination
//! removes between ~8 % and ~50 % of static checks, with minor runtime
//! impact (the compiler's own redundancy elimination is already effective).

use bench::{measure, measure_baseline, paper_options, print_table, slowdown};
use meminstrument::{Mechanism, MiConfig};

fn main() {
    println!("§5.3: static checks removed by the dominance optimization, and its runtime effect\n");
    let mut rows = vec![];
    for b in cbench::all() {
        let base = measure_baseline(&b);
        let opt = measure(&b, &MiConfig::new(Mechanism::SoftBound), paper_options());
        let unopt = measure(&b, &MiConfig::unoptimized(Mechanism::SoftBound), paper_options());
        rows.push(vec![
            b.name.to_string(),
            opt.instr.checks_discovered.to_string(),
            opt.instr.checks_eliminated.to_string(),
            format!("{:.1}%", opt.instr.eliminated_percent()),
            format!("{:.2}x", slowdown(&opt, &base)),
            format!("{:.2}x", slowdown(&unopt, &base)),
        ]);
    }
    print_table(
        &["benchmark", "discovered", "eliminated", "removed", "optimized", "unoptimized"],
        &rows,
    );
}
