//! Regenerates **Figure 9**: execution-time overhead of SoftBound and
//! Low-Fat Pointers, normalized to the `-O3` baseline (1×), both with the
//! dominance check optimization, inserted at `VectorizerStart`.
//!
//! Paper reference points: mean slowdowns 1.74× (SoftBound) vs 1.77×
//! (Low-Fat); SoftBound clearly worse on `183equake` (trie lookups in the
//! hot loop), Low-Fat worse on `186crafty` (wider check sequence).

use bench::driver::{benchmark_programs, fig9_configs, Driver, JobConfig};
use bench::{geomean, measurement_of, print_table, slowdown};
use meminstrument::Mechanism;

fn main() {
    println!("Figure 9: execution-time overhead vs -O3 baseline (VectorizerStart, optimized)\n");
    let report = Driver::new(benchmark_programs(), fig9_configs()).run();
    let base_cfg = JobConfig::baseline();
    let sb_cfg = JobConfig::mechanism(Mechanism::SoftBound);
    let lf_cfg = JobConfig::mechanism(Mechanism::LowFat);
    let mut rows = vec![];
    let mut sbs = vec![];
    let mut lfs = vec![];
    for b in cbench::all() {
        let base = measurement_of(&report, &b, &base_cfg);
        let sb = measurement_of(&report, &b, &sb_cfg);
        let lf = measurement_of(&report, &b, &lf_cfg);
        let (s, l) = (slowdown(&sb, &base), slowdown(&lf, &base));
        sbs.push(s);
        lfs.push(l);
        rows.push(vec![
            b.name.to_string(),
            format!("{s:.2}x"),
            format!("{l:.2}x"),
            if s > l { "SB slower".into() } else { "LF slower".into() },
        ]);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&sbs)),
        format!("{:.2}x", geomean(&lfs)),
        "".into(),
    ]);
    print_table(&["benchmark", "SoftBound", "Low-Fat", "winner"], &rows);
    println!(
        "\npaper: 1.74x (SoftBound) vs 1.77x (Low-Fat), equake SB-dominated, crafty LF-dominated"
    );
}
