//! Regenerates **Figure 10**: SoftBound under three configurations —
//! *optimized* (dominance check elimination on), *unoptimized*, and
//! *metadata only* (`-mi-mode=geninvariants`: propagation without checks).
//!
//! Paper reference points: optimized ≈ unoptimized (the compiler removes
//! redundant checks on its own, §5.3); metadata-only is far below full
//! checking but dominates the overhead of pointer-intensive benchmarks
//! like 197parser; metadata loads without consumers are removed by DCE, so
//! the metadata series *under*-approximates propagation cost (§5.4).

use bench::driver::{benchmark_programs, variants_configs, Driver, JobConfig};
use bench::{geomean, measurement_of, print_table, slowdown};
use meminstrument::{Mechanism, MiMode, OptConfig};

fn main() {
    run(Mechanism::SoftBound, "Figure 10", "metadata");
}

pub fn run(mech: Mechanism, figure: &str, third_label: &str) {
    println!("{figure}: {} — optimized / unoptimized / {third_label} only\n", mech.name());
    let report = Driver::new(benchmark_programs(), variants_configs(mech)).run();
    let base_cfg = JobConfig::baseline();
    let configs = [
        ("optimized", JobConfig::mechanism(mech)),
        ("unoptimized", JobConfig::mechanism(mech).opt(OptConfig::none())),
        (third_label, JobConfig::mechanism(mech).mode(MiMode::GenInvariantsOnly)),
    ];
    let mut rows = vec![];
    let mut sums: Vec<Vec<f64>> = vec![vec![]; 3];
    for b in cbench::all() {
        let base = measurement_of(&report, &b, &base_cfg);
        let mut row = vec![b.name.to_string()];
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let m = measurement_of(&report, &b, cfg);
            let s = slowdown(&m, &base);
            sums[i].push(s);
            row.push(format!("{s:.2}x"));
        }
        rows.push(row);
    }
    rows.push(vec![
        "MEAN (geo)".into(),
        format!("{:.2}x", geomean(&sums[0])),
        format!("{:.2}x", geomean(&sums[1])),
        format!("{:.2}x", geomean(&sums[2])),
    ]);
    print_table(&["benchmark", configs[0].0, configs[1].0, configs[2].0], &rows);
}
