#![warn(missing_docs)]

//! `bench`: harnesses regenerating every table and figure of the paper.
//!
//! Binaries (each prints a formatted table to stdout):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2` | Table 2 — % of dynamic checks with wide bounds |
//! | `fig9` | Figure 9 — execution-time overhead, SoftBound vs Low-Fat |
//! | `fig10` | Figure 10 — SoftBound: optimized / unoptimized / metadata |
//! | `fig11` | Figure 11 — Low-Fat: optimized / unoptimized / invariants |
//! | `fig12` | Figure 12 — SoftBound at three extension points |
//! | `fig13` | Figure 13 — Low-Fat at three extension points |
//! | `checks_removed` | §5.3 — static share of checks removed by the dominance optimization |
//! | `cost_breakdown` | §5.4 ablation — cost split by category (checks/metadata/allocator) |
//! | `report` | everything above, plus geometric means, in one run |
//!
//! Absolute cost units are a deterministic proxy (see `memvm::cost`); the
//! comparisons reproduce the paper's *shapes*, not its wall-clock numbers.

pub mod driver;
pub mod job;
pub mod json;
pub mod store;

use cbench::Benchmark;
use meminstrument::runtime::BuildOptions;
use meminstrument::{InstrStats, Mechanism, MiConfig};
use memvm::VmStats;
use mir::pipeline::ExtensionPoint;

/// One measured configuration of one benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name.
    pub bench: &'static str,
    /// Configuration label.
    pub config: String,
    /// Total cost (the "execution time").
    pub cost: u64,
    /// Dynamic VM statistics.
    pub stats: VmStats,
    /// Static instrumentation statistics.
    pub instr: InstrStats,
}

/// Extracts a [`Measurement`] from an `evald` report cell, panicking if
/// the cell is missing or trapped (benchmarks are memory-safe fixtures).
pub fn measurement_of(
    report: &driver::Report,
    b: &Benchmark,
    cfg: &driver::JobConfig,
) -> Measurement {
    let cell = report.ok(b.name, cfg);
    Measurement {
        bench: b.name,
        config: cfg.to_string(),
        cost: cell.stats.cost_total,
        stats: cell.stats.clone(),
        instr: cell.instr.clone(),
    }
}

/// Runs the uninstrumented `-O3` baseline.
pub fn measure_baseline(b: &Benchmark) -> Measurement {
    let out = cbench::run_baseline(b, BuildOptions::default()).expect("baseline must run");
    Measurement {
        bench: b.name,
        config: "baseline".into(),
        cost: out.exec.stats.cost_total,
        stats: out.exec.stats,
        instr: out.instr,
    }
}

/// Runs an instrumented configuration.
pub fn measure(b: &Benchmark, config: &MiConfig, opts: BuildOptions) -> Measurement {
    let out = cbench::run(b, config, opts)
        .unwrap_or_else(|t| panic!("{} {:?} trapped: {t}", b.name, config.mechanism));
    Measurement {
        bench: b.name,
        config: config.mechanism.name().to_string(),
        cost: out.exec.stats.cost_total,
        stats: out.exec.stats,
        instr: out.instr,
    }
}

/// Slowdown of `m` relative to `baseline` (the figures' y-axis).
pub fn slowdown(m: &Measurement, baseline: &Measurement) -> f64 {
    m.cost as f64 / baseline.cost as f64
}

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The paper's Figure 9 configuration.
pub fn paper_options() -> BuildOptions {
    BuildOptions::default()
}

/// Options at a specific extension point.
pub fn options_at(ep: ExtensionPoint) -> BuildOptions {
    BuildOptions { ep, ..BuildOptions::default() }
}

/// Prints a row-aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> =
            cells.iter().enumerate().map(|(i, c)| format!("{c:>w$}", w = widths[i])).collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Both mechanisms' paper-basis configs.
pub fn both_mechanisms() -> [MiConfig; 2] {
    [MiConfig::new(Mechanism::SoftBound), MiConfig::new(Mechanism::LowFat)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn slowdown_is_ratio() {
        let b = cbench::by_name("186crafty").unwrap();
        let base = measure_baseline(&b);
        let sb = measure(&b, &MiConfig::new(Mechanism::SoftBound), paper_options());
        let s = slowdown(&sb, &base);
        assert!(s > 1.0, "instrumentation must cost something, got {s}");
    }
}
