//! A minimal, dependency-free JSON layer.
//!
//! Two halves, both deliberately small:
//!
//! * **Escaping/encoding helpers** ([`json_str`], [`json_str_array`]) used
//!   by every hand-rolled serializer in the workspace (the `evald-report/2`
//!   renderer, the `mi-serve/1` wire protocol). Output is deterministic:
//!   the same value always renders to the same bytes.
//! * **A value parser** ([`Json::parse`]) for the inbound direction — the
//!   daemon's request decoding and the clients' response decoding. Numbers
//!   keep their raw source text ([`Json::Num`]) so `u64` counters survive
//!   the round trip without floating-point loss.
//!
//! This is not a general-purpose JSON library: no streaming, no comments,
//! no trailing-comma tolerance — exactly RFC 8259 value syntax, which is
//! all the frozen wire schemas need.

use std::fmt::Write as _;

/// Renders `s` as a JSON string literal (with quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a string slice array (`["a", "b"]`).
pub fn json_str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", inner.join(", "))
}

/// A parsed JSON value. Object member order is preserved; numbers keep
/// their raw text so integer precision survives decode/encode round trips.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw source text (e.g. `"-12"`, `"3.5"`, `"1e9"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact re-encoding (no whitespace). Key order, element order, and
    /// number text are preserved from the parsed source, so
    /// `parse(s).render()` is stable under repeated round trips.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => push_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.b.get(p.pos).is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.b.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.b.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.b.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        Ok(Json::Num(String::from_utf8_lossy(&self.b[start..self.pos]).into_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                if self.b.get(self.pos) == Some(&b'\\')
                                    && self.b.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone surrogate in string".to_string());
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| "bad unicode escape".to_string())?,
                            );
                            // hex4 already advanced past the digits.
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.b[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits, returning the code unit and leaving `pos`
    /// just past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.b.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.b[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        let v = Json::parse(r#"{"a": [1, "x\n", {"b": false}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_str(), Some("x\n"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "with \"quotes\"", "tab\tnl\nret\r", "unicode \u{1F600} ok", "\u{1}"] {
            let doc = json_str(s);
            assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(s), "{doc}");
        }
        // Escaped surrogate pairs decode to the astral scalar.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn render_is_stable_under_reparse() {
        let src = r#"{"id": 7, "job": {"source": {"kind": "inline", "name": "a.c"}, "n": -1.5e3}}"#;
        let v = Json::parse(src).unwrap();
        let once = v.render();
        let twice = Json::parse(&once).unwrap().render();
        assert_eq!(once, twice);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "\"unterminated", "tru", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
