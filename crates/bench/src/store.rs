//! The content-addressed artifact store.
//!
//! Caches the products of every compilation stage across jobs (and, in the
//! `mi serve` daemon, across client connections), keyed by the FNV-1a hash
//! of the source (see [`crate::job::SourceRef::content_hash`]) plus the
//! stage's configuration:
//!
//! | level       | key                         | artifact                     |
//! |-------------|-----------------------------|------------------------------|
//! | `frontend`  | source hash                 | [`mir::Module`]              |
//! | `prefix`    | hash × opt level × ext pt   | post-prefix [`mir::Module`]  |
//! | `summaries` | hash × opt level × ext pt   | [`ipo::ModuleSummaries`]     |
//! | `compiled`  | hash × `Instrument` label   | [`CompiledProgram`]          |
//! | `bytecode`  | hash × `Instrument` label   | [`memvm::BcImage`]           |
//!
//! The `summaries` level shares the prefix key: interprocedural summaries
//! are a pure function of the prefix snapshot they were computed over, so
//! one entry serves every mechanism and optimization-flag combination of
//! that snapshot.
//!
//! Correctness rests on the pipeline being a pure function of its key: the
//! `Instrument` label grammar round-trips the whole configuration, the
//! pipeline-determinism properties in `tests/props.rs` pin the stages, and
//! the byte-identity tests in `crates/serve` hold store-served results
//! equal to direct compilation. Eviction (LRU per level, capacity-bounded)
//! therefore only ever costs recompilation, never changes results.
//!
//! Every lookup is hit/miss-counted into an internal
//! [`telemetry::Registry`] (`store_lookups{level,outcome}`,
//! `store_evictions{level}`, `store_entries{level}` gauges) that the
//! daemon merges into its `mi-metrics/1` endpoint.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use meminstrument::runtime::CompiledProgram;
use memvm::BcImage;
use mir::analysis::ipo::ModuleSummaries;
use mir::pipeline::{ExtensionPoint, OptLevel};
use telemetry::Registry;

/// Default per-level entry capacity: generous for the paper corpus
/// (57 programs × 14 configs) while bounding a long-running daemon.
pub const DEFAULT_CAPACITY: usize = 1024;

struct Entry<T> {
    value: Arc<T>,
    last_used: u64,
}

struct Level<K, T> {
    name: &'static str,
    map: HashMap<K, Entry<T>>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, T> Level<K, T> {
    fn new(name: &'static str, capacity: usize) -> Level<K, T> {
        Level { name, map: HashMap::new(), capacity: capacity.max(1) }
    }

    fn get(&mut self, key: &K, tick: u64, metrics: &mut Registry) -> Option<Arc<T>> {
        let outcome = match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                "hit"
            }
            None => "miss",
        };
        metrics.counter_add("store_lookups", &[("level", self.name), ("outcome", outcome)], 1);
        self.map.get(key).map(|e| Arc::clone(&e.value))
    }

    /// Inserts (first writer wins on a race) and evicts the least-recently
    /// used entry while over capacity.
    fn insert(&mut self, key: K, value: Arc<T>, tick: u64, metrics: &mut Registry) -> Arc<T> {
        let value =
            Arc::clone(&self.map.entry(key).or_insert(Entry { value, last_used: tick }).value);
        while self.map.len() > self.capacity {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                metrics.counter_add("store_evictions", &[("level", self.name)], 1);
            }
        }
        metrics.gauge_set("store_entries", &[("level", self.name)], self.map.len() as u64);
        value
    }
}

struct Inner {
    tick: u64,
    frontend: Level<u64, mir::Module>,
    prefix: Level<(u64, OptLevel, ExtensionPoint), mir::Module>,
    summaries: Level<(u64, OptLevel, ExtensionPoint), ModuleSummaries>,
    compiled: Level<(u64, String), CompiledProgram>,
    bytecode: Level<(u64, String), BcImage>,
    metrics: Registry,
}

/// A thread-safe, capacity-bounded artifact cache shared across jobs.
///
/// Builders run *outside* the lock, so concurrent misses on the same key
/// may compile twice; the first inserted artifact wins and both callers
/// observe it — results never depend on the race.
pub struct ArtifactStore {
    inner: Mutex<Inner>,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ArtifactStore {
    /// A store with the default per-level capacity.
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// A store holding at most `capacity` entries per level.
    pub fn with_capacity(capacity: usize) -> ArtifactStore {
        ArtifactStore {
            inner: Mutex::new(Inner {
                tick: 0,
                frontend: Level::new("frontend", capacity),
                prefix: Level::new("prefix", capacity),
                summaries: Level::new("summaries", capacity),
                compiled: Level::new("compiled", capacity),
                bytecode: Level::new("bytecode", capacity),
                metrics: Registry::new(),
            }),
        }
    }

    fn tick(inner: &mut Inner) -> u64 {
        inner.tick += 1;
        inner.tick
    }

    /// Frontend module for `hash`, building it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (a frontend diagnostic).
    pub fn frontend(
        &self,
        hash: u64,
        build: impl FnOnce() -> Result<mir::Module, String>,
    ) -> Result<Arc<mir::Module>, String> {
        {
            let inner = &mut *self.inner.lock().unwrap();
            let tick = Self::tick(inner);
            if let Some(m) = inner.frontend.get(&hash, tick, &mut inner.metrics) {
                return Ok(m);
            }
        }
        let built = Arc::new(build()?);
        let inner = &mut *self.inner.lock().unwrap();
        let tick = Self::tick(inner);
        Ok(inner.frontend.insert(hash, built, tick, &mut inner.metrics))
    }

    /// Pipeline prefix for `(hash, opt, ep)`, building it on a miss.
    pub fn prefix(
        &self,
        key: (u64, OptLevel, ExtensionPoint),
        build: impl FnOnce() -> mir::Module,
    ) -> Arc<mir::Module> {
        {
            let inner = &mut *self.inner.lock().unwrap();
            let tick = Self::tick(inner);
            if let Some(m) = inner.prefix.get(&key, tick, &mut inner.metrics) {
                return m;
            }
        }
        let built = Arc::new(build());
        let inner = &mut *self.inner.lock().unwrap();
        let tick = Self::tick(inner);
        inner.prefix.insert(key, built, tick, &mut inner.metrics)
    }

    /// Interprocedural summaries for the `(hash, opt, ep)` prefix
    /// snapshot, building them on a miss. [`mir::analysis::ipo::summarize`]
    /// is deterministic, so a cached entry composes byte-identically with
    /// self-summarizing compilation of the same snapshot.
    pub fn summaries(
        &self,
        key: (u64, OptLevel, ExtensionPoint),
        build: impl FnOnce() -> ModuleSummaries,
    ) -> Arc<ModuleSummaries> {
        {
            let inner = &mut *self.inner.lock().unwrap();
            let tick = Self::tick(inner);
            if let Some(s) = inner.summaries.get(&key, tick, &mut inner.metrics) {
                return s;
            }
        }
        let built = Arc::new(build());
        let inner = &mut *self.inner.lock().unwrap();
        let tick = Self::tick(inner);
        inner.summaries.insert(key, built, tick, &mut inner.metrics)
    }

    /// Instrumented program for `(hash, label)`, building it on a miss.
    pub fn compiled(
        &self,
        key: (u64, String),
        build: impl FnOnce() -> CompiledProgram,
    ) -> Arc<CompiledProgram> {
        {
            let inner = &mut *self.inner.lock().unwrap();
            let tick = Self::tick(inner);
            if let Some(p) = inner.compiled.get(&key, tick, &mut inner.metrics) {
                return p;
            }
        }
        let built = Arc::new(build());
        let inner = &mut *self.inner.lock().unwrap();
        let tick = Self::tick(inner);
        inner.compiled.insert(key, built, tick, &mut inner.metrics)
    }

    /// Cached bytecode image for `(hash, label)`, if present (hit-counted).
    pub fn bytecode(&self, key: &(u64, String)) -> Option<Arc<BcImage>> {
        let inner = &mut *self.inner.lock().unwrap();
        let tick = Self::tick(inner);
        inner.bytecode.get(key, tick, &mut inner.metrics)
    }

    /// Stores a bytecode image (first writer wins).
    pub fn insert_bytecode(&self, key: (u64, String), image: BcImage) -> Arc<BcImage> {
        let inner = &mut *self.inner.lock().unwrap();
        let tick = Self::tick(inner);
        inner.bytecode.insert(key, Arc::new(image), tick, &mut inner.metrics)
    }

    /// Total entries across all levels (the daemon's store-size gauge).
    pub fn entries(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.frontend.map.len()
            + inner.prefix.map.len()
            + inner.summaries.map.len()
            + inner.compiled.map.len()
            + inner.bytecode.map.len()
    }

    /// A snapshot of the store's lookup/eviction/size metrics.
    pub fn metrics(&self) -> Registry {
        self.inner.lock().unwrap().metrics.clone()
    }

    /// Resident frontend-level keys, sorted (observability/tests; does not
    /// count as a lookup or touch recency).
    pub fn frontend_keys(&self) -> Vec<u64> {
        let inner = self.inner.lock().unwrap();
        let mut keys: Vec<u64> = inner.frontend.map.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

// The store is shared across daemon worker threads; everything it holds
// must be plain data. (`BcImage` deliberately omits the `Rc`-backed host
// closures — see `memvm::bytecode`.)
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ArtifactStore>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_lru_and_counted() {
        let store = ArtifactStore::with_capacity(2);
        let build = |n: u64| move || Ok(mir::builder::ModuleBuilder::new(format!("m{n}")).finish());
        for h in 0..3u64 {
            store.frontend(h, build(h)).unwrap();
        }
        // Capacity 2: hash 0 (least recently used) was evicted.
        assert_eq!(store.frontend_keys(), vec![1, 2]);
        // Touch 1, insert 3: 2 is now the LRU victim.
        store.frontend(1, build(1)).unwrap();
        store.frontend(3, build(3)).unwrap();
        assert_eq!(store.frontend_keys(), vec![1, 3]);
        let reg = store.metrics().to_json();
        assert!(reg.contains("store_evictions"), "{reg}");
        // An evicted entry rebuilds transparently with the same content.
        let m = store.frontend(2, build(2)).unwrap();
        assert_eq!(m.name, "m2");
    }

    #[test]
    fn first_writer_wins_and_is_shared() {
        let store = ArtifactStore::new();
        let a = store.frontend(7, || Ok(mir::builder::ModuleBuilder::new("a").finish())).unwrap();
        let b = store.frontend(7, || Ok(mir::builder::ModuleBuilder::new("b").finish())).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.name, "a");
    }
}
