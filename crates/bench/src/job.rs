//! The typed job API — the single source of truth for "compile/run/profile
//! one program under one [`Instrument`] configuration".
//!
//! Every execution path in the workspace constructs jobs through this
//! module: the driver's cell loop ([`crate::driver::Driver::run`]), the
//! `mi run`/`mi profile` subcommands, the fuzz oracle's per-case matrix,
//! and the `mi serve` daemon's workers. A [`JobSpec`] names *what* to do
//! (source, configuration label, action); [`execute`] performs it against
//! a shared [`ArtifactStore`]; the result is a [`JobOutcome`] whose JSON
//! rendering reuses the driver's cell renderer byte-for-byte — which is
//! how the daemon's responses stay byte-identical to in-process sweeps.
//!
//! The wire encoding ([`JobSpec::to_json`]/[`JobSpec::from_json`],
//! [`JobError`]) is part of the frozen `mi-serve/1` schema documented in
//! `DESIGN.md`; the golden-file test in `crates/serve` pins the bytes.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use meminstrument::runtime::{
    compile_baseline_from_prefix, compile_from_prefix_with_summaries, pipeline_prefix,
    CompiledProgram,
};
use meminstrument::{InstrStats, Instrument};
use memvm::{BcImage, Trap, VmBackend, VmConfig};

use crate::driver::{cell_json, static_json, CellOk, CellTrap, Program};
use crate::json::{json_str, Json};
use crate::store::ArtifactStore;

/// Where a job's source text comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceRef {
    /// A built-in benchmark, by suite name (e.g. `183equake`).
    Benchmark {
        /// The benchmark's name in [`cbench`].
        name: String,
    },
    /// Source text carried inline in the job.
    Inline {
        /// Report key (drives `src_file` attribution in outputs).
        name: String,
        /// Mini-C source text.
        text: String,
    },
}

impl SourceRef {
    /// The program name this reference reports under.
    pub fn name(&self) -> &str {
        match self {
            SourceRef::Benchmark { name } | SourceRef::Inline { name, .. } => name,
        }
    }

    /// Materializes the source. Benchmark sources are generated once per
    /// process and served from a cache — a daemon resolving thousands of
    /// benchmark-ref jobs must not regenerate the whole suite each time.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown benchmark name.
    pub fn resolve(&self) -> Result<Program, String> {
        static SUITE: std::sync::OnceLock<Vec<Program>> = std::sync::OnceLock::new();
        match self {
            SourceRef::Inline { name, text } => {
                Ok(Program { name: name.clone(), source: text.clone() })
            }
            SourceRef::Benchmark { name } => SUITE
                .get_or_init(crate::driver::benchmark_programs)
                .iter()
                .find(|p| p.name == *name)
                .cloned()
                .ok_or_else(|| format!("unknown benchmark {name:?}")),
        }
    }
}

/// FNV-1a content hash of a program (name and source both contribute: the
/// name flows into `src_file` and report keys, so two programs with equal
/// text but different names are distinct artifacts).
pub fn program_hash(p: &Program) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in [p.name.as_bytes(), &[0xFF], p.source.as_bytes()] {
        for &b in chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What to do with the compiled program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobAction {
    /// Compile only; the outcome reports the static instrumentation stats.
    Compile,
    /// Compile and execute `main`; the outcome is a driver cell.
    Run,
    /// Compile, execute, and render the `mi-profile/1` check-site profile.
    Profile {
        /// How many ranked sites to include.
        top: usize,
    },
}

/// Default `top` for [`JobAction::Profile`] when the wire request omits it.
pub const DEFAULT_PROFILE_TOP: usize = 10;

/// One job: a source, a configuration, and an action.
///
/// The configuration travels as the `Instrument` label
/// (`softbound-noloop@O3@VectorizerStart`, …) — the same round-tripped
/// grammar the driver's reports key on. VM backend and sampling are
/// deliberately *not* part of the spec: they are execution-environment
/// choices made by whoever runs the job (the daemon's `VmConfig`), and
/// both backends produce byte-identical results.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// What to compile.
    pub source: SourceRef,
    /// The instrumentation cell to compile it under.
    pub config: Instrument,
    /// What to do with it.
    pub action: JobAction,
}

impl JobSpec {
    /// The wire encoding (one line, frozen field order — `mi-serve/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"source\":{\"kind\":");
        match &self.source {
            SourceRef::Benchmark { name } => {
                out.push_str("\"benchmark\",\"name\":");
                out.push_str(&json_str(name));
            }
            SourceRef::Inline { name, text } => {
                out.push_str("\"inline\",\"name\":");
                out.push_str(&json_str(name));
                out.push_str(",\"text\":");
                out.push_str(&json_str(text));
            }
        }
        out.push_str("},\"config\":");
        out.push_str(&json_str(&self.config.to_string()));
        out.push_str(",\"action\":");
        match self.action {
            JobAction::Compile => out.push_str("\"compile\"}"),
            JobAction::Run => out.push_str("\"run\"}"),
            JobAction::Profile { top } => {
                out.push_str(&format!("\"profile\",\"top\":{top}}}"));
            }
        }
        out
    }

    /// Decodes the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let src = v.get("source").ok_or("job missing \"source\"")?;
        let name =
            src.get("name").and_then(Json::as_str).ok_or("source missing \"name\"")?.to_string();
        let source = match src.get("kind").and_then(Json::as_str) {
            Some("benchmark") => SourceRef::Benchmark { name },
            Some("inline") => SourceRef::Inline {
                name,
                text: src
                    .get("text")
                    .and_then(Json::as_str)
                    .ok_or("inline source missing \"text\"")?
                    .to_string(),
            },
            other => return Err(format!("bad source kind {other:?}")),
        };
        let label = v.get("config").and_then(Json::as_str).ok_or("job missing \"config\"")?;
        let config: Instrument =
            label.parse().map_err(|e| format!("bad config label {label:?}: {e}"))?;
        let action = match v.get("action").and_then(Json::as_str) {
            Some("compile") => JobAction::Compile,
            Some("run") => JobAction::Run,
            Some("profile") => JobAction::Profile {
                top: v
                    .get("top")
                    .and_then(Json::as_u64)
                    .map_or(DEFAULT_PROFILE_TOP, |n| n as usize),
            },
            other => return Err(format!("bad action {other:?}")),
        };
        Ok(JobSpec { source, config, action })
    }
}

/// The program-major job matrix for a sweep — the same cell order the
/// driver's report uses, shared by `mi bench-serve` and the byte-identity
/// tests so both sides enumerate identical work.
pub fn job_matrix(programs: &[Program], configs: &[Instrument]) -> Vec<JobSpec> {
    programs
        .iter()
        .flat_map(|p| {
            configs.iter().map(move |c| JobSpec {
                source: SourceRef::Inline { name: p.name.clone(), text: p.source.clone() },
                config: c.clone(),
                action: JobAction::Run,
            })
        })
        .collect()
}

/// Structured job failure — the `mi-serve/1` error variants. Note the
/// split with trapped *runs*: a VM trap under [`JobAction::Run`] is a
/// successful job whose cell reports `"ok": false` (preserving driver
/// byte-identity); [`JobError::Trap`] is for actions that cannot render a
/// result from a trapped execution (profiles).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The per-job deadline passed (queued or mid-execution).
    Timeout,
    /// The job was cancelled (queued or mid-execution).
    Cancelled,
    /// The job never ran: malformed spec, unknown benchmark, frontend
    /// diagnostic, full queue, or a draining server.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// The action needed a completed execution but the program trapped;
    /// `report` carries the trap's driver-cell JSON.
    Trap {
        /// The trapped cell, rendered by the driver's cell renderer.
        report: String,
    },
}

impl JobError {
    /// The wire encoding (`{"kind": ...}`, frozen).
    pub fn to_json(&self) -> String {
        match self {
            JobError::Timeout => "{\"kind\":\"timeout\"}".to_string(),
            JobError::Cancelled => "{\"kind\":\"cancelled\"}".to_string(),
            JobError::Rejected { reason } => {
                format!("{{\"kind\":\"rejected\",\"reason\":{}}}", json_str(reason))
            }
            JobError::Trap { report } => format!("{{\"kind\":\"trap\",\"report\":{report}}}"),
        }
    }

    /// Decodes the wire encoding. A `trap` report is kept as its raw
    /// re-rendering (clients treating it as opaque JSON).
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown `kind` or missing field.
    pub fn from_json(v: &Json) -> Result<JobError, String> {
        match v.get("kind").and_then(Json::as_str) {
            Some("timeout") => Ok(JobError::Timeout),
            Some("cancelled") => Ok(JobError::Cancelled),
            Some("rejected") => Ok(JobError::Rejected {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .ok_or("rejected error missing \"reason\"")?
                    .to_string(),
            }),
            Some("trap") => Ok(JobError::Trap {
                report: v.get("report").ok_or("trap error missing \"report\"")?.render(),
            }),
            other => Err(format!("bad error kind {other:?}")),
        }
    }
}

/// A completed job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// [`JobAction::Compile`]: the static instrumentation statistics.
    Compiled {
        /// Program name.
        program: String,
        /// Configuration label.
        config: String,
        /// Static instrumentation statistics.
        instr: InstrStats,
    },
    /// [`JobAction::Run`]: one driver cell (trap included — a trapped run
    /// is a result, not a protocol error).
    Cell {
        /// Program name.
        program: String,
        /// Configuration label.
        config: String,
        /// The cell outcome (boxed: `CellOk` is large and this variant
        /// would otherwise dominate the enum's size).
        outcome: Box<Result<CellOk, CellTrap>>,
    },
    /// [`JobAction::Profile`]: the rendered `mi-profile/1` document.
    Profile {
        /// The multi-line JSON document (carried as a string on the wire
        /// so its bytes survive newline-delimited framing).
        document: String,
    },
}

impl JobOutcome {
    /// The `result` payload of an `mi-serve/1` response. For [`Self::Cell`]
    /// this is exactly the driver's cell JSON — the byte-identity contract.
    pub fn result_json(&self) -> String {
        match self {
            JobOutcome::Compiled { program, config, instr } => format!(
                "{{\"program\": {}, \"config\": {}, \"compiled\": true, \"static\": {}}}",
                json_str(program),
                json_str(config),
                static_json(instr)
            ),
            JobOutcome::Cell { program, config, outcome } => {
                cell_json(program, config, outcome, None)
            }
            JobOutcome::Profile { document } => {
                format!("{{\"profile\": {}}}", json_str(document))
            }
        }
    }
}

/// Execution controls a job runs under (none by default): a wall-clock
/// deadline and a cooperative cancellation flag, both enforced inside the
/// VM via its cost-clocked budget polls.
#[derive(Clone, Debug, Default)]
pub struct JobCtl {
    /// Trap with `DeadlineExceeded` once this instant passes.
    pub deadline: Option<Instant>,
    /// Trap with `Interrupted` once this flag reads `true`.
    pub interrupt: Option<Arc<AtomicBool>>,
}

/// The VM stage of one cell, with per-stage wall-clock.
pub struct VmStage {
    /// The raw execution outcome (traps unclassified, so callers can map
    /// `DeadlineExceeded`/`Interrupted` to protocol errors).
    pub outcome: Result<CellOk, Trap>,
    /// VM setup: module load, runtime install, bytecode compile/adopt.
    pub vm_compile: Duration,
    /// Execution of `main`.
    pub execution: Duration,
    /// Fresh bytecode image captured for the store (only when requested
    /// and nothing was adopted).
    pub image: Option<BcImage>,
}

/// Loads, prepares, and runs one compiled program — the single VM-stage
/// implementation shared by the driver's cell loop and the daemon's
/// executor (which is what keeps their cells byte-identical).
///
/// `image` short-circuits bytecode compilation by adopting a cached
/// [`BcImage`] (falling back to [`memvm::Vm::prepare`] if adoption fails);
/// `capture_image` snapshots freshly compiled bytecode for the caller's
/// store.
pub fn run_vm_stage(
    prog: &CompiledProgram,
    vm_cfg: VmConfig,
    ctl: &JobCtl,
    image: Option<&BcImage>,
    capture_image: bool,
) -> VmStage {
    let t = Instant::now();
    let mut captured = None;
    let vm = match prog.make_vm(vm_cfg) {
        Ok(mut vm) => {
            let adopted = vm_cfg.backend == VmBackend::Bytecode
                && image.is_some_and(|img| vm.adopt_bytecode(img).is_ok());
            if !adopted {
                vm.prepare();
                if capture_image && vm_cfg.backend == VmBackend::Bytecode {
                    captured = Some(vm.bytecode_image());
                }
            }
            Ok(vm)
        }
        Err(trap) => Err(trap),
    };
    let vm_compile = t.elapsed();

    let t = Instant::now();
    let outcome = match vm {
        Ok(mut vm) => {
            if let Some(d) = ctl.deadline {
                vm.set_deadline(d);
            }
            if let Some(f) = &ctl.interrupt {
                vm.set_interrupt(Arc::clone(f));
            }
            match vm.run("main", &[]) {
                Ok(out) => Ok(CellOk {
                    ret: out.ret.map(|v| v.as_int() as i64),
                    output: out.output,
                    stats: out.stats,
                    instr: prog.stats.clone(),
                    profile: out.profile,
                    ops: vm.op_metrics().clone(),
                    mem: vm.memory().counters(),
                    flame: vm.flame(),
                }),
                Err(trap) => Err(trap),
            }
        }
        Err(trap) => Err(trap),
    };
    let execution = t.elapsed();
    VmStage { outcome, vm_compile, execution, image: captured }
}

/// Executes one job against `store` under `vm_cfg` and `ctl`.
///
/// Compilation stages flow through the store's levels (frontend → prefix →
/// instrumented program → bytecode image); the VM stage runs through
/// [`run_vm_stage`], so results are byte-identical to a direct
/// [`crate::driver::Driver`] sweep of the same cell.
///
/// # Errors
///
/// [`JobError::Rejected`] for unknown benchmarks and frontend diagnostics;
/// [`JobError::Timeout`]/[`JobError::Cancelled`] when `ctl` fires;
/// [`JobError::Trap`] for a profile of a trapped program.
pub fn execute(
    spec: &JobSpec,
    store: &ArtifactStore,
    vm_cfg: VmConfig,
    ctl: &JobCtl,
) -> Result<JobOutcome, JobError> {
    let program = spec.source.resolve().map_err(|reason| JobError::Rejected { reason })?;
    let h = program_hash(&program);
    let module = store
        .frontend(h, || {
            cfront::compile_named(&program.source, &program.name)
                .map_err(|e| format!("frontend error: {e}"))
        })
        .map_err(|reason| JobError::Rejected { reason })?;

    let opts = spec.config.build_options();
    let label = spec.config.to_string();
    let prefix = store.prefix((h, opts.opt, opts.ep), || pipeline_prefix((*module).clone(), opts));
    // Interprocedural summaries are a pure function of the prefix snapshot,
    // so one cached computation serves every IPO-enabled configuration of
    // this (program, opt level, extension point).
    let summaries = match spec.config.mi_config() {
        Some(mi) if mi.uses_ipo() => {
            Some(store.summaries((h, opts.opt, opts.ep), || mir::analysis::ipo::summarize(&prefix)))
        }
        _ => None,
    };
    let prog = store.compiled((h, label.clone()), || match spec.config.mi_config() {
        None => compile_baseline_from_prefix((*prefix).clone(), opts),
        Some(mi) => compile_from_prefix_with_summaries((*prefix).clone(), mi, opts, summaries),
    });

    if spec.action == JobAction::Compile {
        return Ok(JobOutcome::Compiled {
            program: program.name,
            config: label,
            instr: prog.stats.clone(),
        });
    }

    let cached = if vm_cfg.backend == VmBackend::Bytecode {
        store.bytecode(&(h, label.clone()))
    } else {
        None
    };
    let stage = run_vm_stage(&prog, vm_cfg, ctl, cached.as_deref(), cached.is_none());
    if let Some(img) = stage.image {
        store.insert_bytecode((h, label.clone()), img);
    }
    let outcome = match stage.outcome {
        Ok(ok) => Ok(ok),
        Err(Trap::DeadlineExceeded) => return Err(JobError::Timeout),
        Err(Trap::Interrupted) => return Err(JobError::Cancelled),
        Err(trap) => Err(CellTrap::from_trap(&trap)),
    };

    match spec.action {
        JobAction::Run => Ok(JobOutcome::Cell {
            program: program.name,
            config: label,
            outcome: Box::new(outcome),
        }),
        JobAction::Profile { top } => match outcome {
            Ok(ok) => Ok(JobOutcome::Profile {
                document: profile_report(&prog, &ok, &program.name, &label, top),
            }),
            Err(t) => {
                Err(JobError::Trap { report: cell_json(&program.name, &label, &Err(t), None) })
            }
        },
        JobAction::Compile => unreachable!("handled above"),
    }
}

/// Renders the `mi-profile/1` per-check-site profile for a completed cell:
/// executed sites ranked by dynamic check cost (ties: hits, then site
/// index), joined with the module's `check_sites` table for source
/// attribution. The totals are asserted to reconcile exactly with the
/// aggregate VM statistics — shared by `mi profile --json` and the
/// daemon's profile jobs.
pub fn profile_report(
    prog: &CompiledProgram,
    ok: &CellOk,
    file_fallback: &str,
    config_label: &str,
    top: usize,
) -> String {
    let src_file = prog.module.src_file.clone();
    let sites = &prog.module.check_sites;
    let s = &ok.stats;
    let (hits, wide, cost) =
        (ok.profile.total_hits(), ok.profile.total_wide(), ok.profile.total_cost());
    assert_eq!(hits, s.checks_executed + s.invariant_checks_executed, "profile/stats drift");
    assert_eq!(wide, s.checks_wide, "profile/stats drift");
    assert_eq!(cost, s.cost_checks, "profile/stats drift");

    let mut ranked: Vec<(usize, memvm::SiteCounts)> =
        (0..sites.len()).map(|i| (i, ok.profile.get(i))).filter(|(_, c)| c.hits > 0).collect();
    ranked.sort_by(|a, b| (b.1.cost, b.1.hits, a.0).cmp(&(a.1.cost, a.1.hits, b.0)));
    let sites_hit = ranked.len();
    ranked.truncate(top);

    let file_label = src_file.as_deref().unwrap_or(file_fallback);
    let mut j = String::new();
    j.push_str("{\n  \"schema\": \"mi-profile/1\",\n");
    j.push_str(&format!("  \"file\": {},\n", json_str(file_label)));
    j.push_str(&format!("  \"config\": {},\n", json_str(config_label)));
    j.push_str(&format!("  \"sites_registered\": {},\n", sites.len()));
    j.push_str(&format!("  \"sites_hit\": {sites_hit},\n"));
    j.push_str(&format!(
        "  \"totals\": {{\"hits\": {hits}, \"wide\": {wide}, \"cost\": {cost}}},\n"
    ));
    j.push_str(&format!(
        "  \"vm\": {{\"checks_executed\": {}, \"invariant_checks\": {}, \"checks_wide\": {}, \"cost_checks\": {}}},\n",
        s.checks_executed, s.invariant_checks_executed, s.checks_wide, s.cost_checks
    ));
    j.push_str("  \"sites\": [\n");
    for (i, (site, c)) in ranked.iter().enumerate() {
        let cs = &sites[*site];
        let line = match cs.line {
            Some(l) => l.to_string(),
            None => "null".to_string(),
        };
        let alloc = match cs.describe_alloc(src_file.as_deref()) {
            Some(a) => json_str(&a),
            None => "null".to_string(),
        };
        j.push_str(&format!(
            "    {{\"rank\": {}, \"site\": {site}, \"kind\": {}, \"func\": {}, \"line\": {line}, \"source\": {}, \"access\": {}, \"alloc\": {alloc}, \"hits\": {}, \"wide\": {}, \"cost\": {}}}{}\n",
            i + 1,
            json_str(cs.kind.keyword()),
            json_str(&cs.func),
            json_str(&cs.source(src_file.as_deref())),
            json_str(&cs.access_kind()),
            c.hits,
            c.wide,
            c.cost,
            if i + 1 == ranked.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use mir::pipeline::OptLevel;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                source: SourceRef::Benchmark { name: "183equake".into() },
                config: Instrument::baseline(),
                action: JobAction::Compile,
            },
            JobSpec {
                source: SourceRef::Inline {
                    name: "demo.c".into(),
                    text: "long main(void) { return 0; }\n".into(),
                },
                config: "softbound-noloop@O3@VectorizerStart".parse().unwrap(),
                action: JobAction::Run,
            },
            JobSpec {
                source: SourceRef::Inline { name: "p.c".into(), text: "x \"quoted\"".into() },
                config: Instrument::mechanism(meminstrument::Mechanism::LowFat)
                    .opt_level(OptLevel::O0),
                action: JobAction::Profile { top: 5 },
            },
        ]
    }

    #[test]
    fn spec_json_round_trips() {
        for spec in specs() {
            let line = spec.to_json();
            let v = Json::parse(&line).unwrap();
            let back = JobSpec::from_json(&v).unwrap();
            assert_eq!(back, spec, "{line}");
            // Encoding is stable under a decode/encode cycle.
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn error_json_round_trips() {
        let errs = [
            JobError::Timeout,
            JobError::Cancelled,
            JobError::Rejected { reason: "queue full (cap 64)".into() },
            JobError::Trap { report: "{\"ok\":false,\"trap\":\"x\"}".to_string() },
        ];
        for e in errs {
            let v = Json::parse(&e.to_json()).unwrap();
            assert_eq!(JobError::from_json(&v).unwrap(), e);
        }
    }

    #[test]
    fn content_hash_distinguishes_name_and_text() {
        let a = Program { name: "a".into(), source: "x".into() };
        let b = Program { name: "b".into(), source: "x".into() };
        let c = Program { name: "a".into(), source: "y".into() };
        assert_ne!(program_hash(&a), program_hash(&b));
        assert_ne!(program_hash(&a), program_hash(&c));
        assert_eq!(program_hash(&a), program_hash(&a.clone()));
    }

    #[test]
    fn execute_matches_direct_compilation() {
        let store = ArtifactStore::new();
        let spec = JobSpec {
            source: SourceRef::Inline {
                name: "sum.c".into(),
                text: r#"
                    long main(void) {
                        long *p = (long*)malloc(4 * sizeof(long));
                        for (long i = 0; i < 4; i += 1) p[i] = i + 10;
                        print_i64(p[0] + p[3]);
                        return 0;
                    }
                "#
                .into(),
            },
            config: Instrument::mechanism(meminstrument::Mechanism::SoftBound),
            action: JobAction::Run,
        };
        // Twice through the store (cold then warm) — identical cells.
        let cold = execute(&spec, &store, VmConfig::default(), &JobCtl::default()).unwrap();
        let warm = execute(&spec, &store, VmConfig::default(), &JobCtl::default()).unwrap();
        assert_eq!(cold.result_json(), warm.result_json());
        // And identical to compiling directly, without any cache.
        let m = cfront::compile_named(&spec.source.resolve().unwrap().source, "sum.c").unwrap();
        let direct = spec.config.compile(m);
        let out = direct.run_main(VmConfig::default()).unwrap();
        match &cold {
            JobOutcome::Cell { outcome, .. } => match &**outcome {
                Ok(ok) => {
                    assert_eq!(ok.output, out.output);
                    assert_eq!(ok.stats.cost_total, out.stats.cost_total);
                    assert_eq!(ok.instr, direct.stats);
                }
                Err(t) => panic!("unexpected trap {t:?}"),
            },
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn deadline_and_interrupt_map_to_protocol_errors() {
        let store = ArtifactStore::new();
        let spec = JobSpec {
            source: SourceRef::Inline {
                name: "spin.c".into(),
                text: r#"
                    long main(void) {
                        long s = 0;
                        for (long i = 0; i < 100000000000; i += 1) s += i;
                        return s;
                    }
                "#
                .into(),
            },
            config: Instrument::baseline(),
            action: JobAction::Run,
        };
        let expired =
            JobCtl { deadline: Some(Instant::now() - Duration::from_millis(1)), interrupt: None };
        assert_eq!(
            execute(&spec, &store, VmConfig::default(), &expired).unwrap_err(),
            JobError::Timeout
        );
        let flag = Arc::new(AtomicBool::new(true));
        let cancelled = JobCtl { deadline: None, interrupt: Some(flag) };
        assert_eq!(
            execute(&spec, &store, VmConfig::default(), &cancelled).unwrap_err(),
            JobError::Cancelled
        );
    }
}
