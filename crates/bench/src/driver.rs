//! `evald` — the parallel, cached evaluation driver.
//!
//! Every figure and table of the paper is a sweep over the same
//! cross-product: program × configuration (mechanism/variant × extension
//! point × opt level). Before this driver existed each figure binary
//! re-ran its cells serially and recompiled the frontend for every cell.
//! The driver instead:
//!
//! 1. enumerates the sweep as an explicit job matrix
//!    ([`Driver::programs`] × [`Driver::configs`]);
//! 2. executes jobs on `--jobs` worker threads (`std::thread::scope`, no
//!    dependencies);
//! 3. caches the frontend [`mir::Module`] per program and the
//!    post-optimization pipeline prefix per (program, opt level, extension
//!    point) — see [`meminstrument::runtime::pipeline_prefix`] — so shared
//!    compilation work happens once per sweep, not once per cell;
//! 4. records wall-clock per stage (frontend, pipeline, instrumentation,
//!    execution) next to the existing [`InstrStats`]/[`VmStats`] and can
//!    serialize everything into a machine-readable JSON report with a
//!    stable schema and deterministic ordering (`schema` =
//!    `"evald-report/2"`).
//!
//! Determinism contract: with timings excluded, the report is
//! byte-identical no matter how many worker threads ran the sweep — cell
//! order is the matrix order, and the VM itself is deterministic. The
//! `tests/props.rs` pipeline-determinism properties pin down the
//! preconditions this relies on.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use meminstrument::runtime::{
    compile_baseline_from_prefix, compile_baseline_from_prefix_traced, compile_from_prefix_traced,
    compile_from_prefix_with_summaries, pipeline_prefix, pipeline_prefix_traced, BuildOptions,
};
use meminstrument::{InstrStats, Instrument, Mechanism, MiMode, OptConfig};
use memvm::{MemCounters, OpMetrics, SiteProfile, VmConfig, VmStats};
use mir::analysis::ipo::ModuleSummaries;
use mir::pipeline::{ExtensionPoint, OptLevel};
use mir::trace::TraceRecorder;
use telemetry::{FoldedStacks, Registry};

use crate::json::{json_str, json_str_array};

/// A program to evaluate: a name plus its mini-C source.
#[derive(Clone, Debug)]
pub struct Program {
    /// Report key (benchmark name or corpus file name).
    pub name: String,
    /// Mini-C source text.
    pub source: String,
}

impl From<&cbench::Benchmark> for Program {
    fn from(b: &cbench::Benchmark) -> Program {
        Program { name: b.name.to_string(), source: b.source.to_string() }
    }
}

/// All benchmarks of the suite as driver programs, in Table 2 order.
pub fn benchmark_programs() -> Vec<Program> {
    cbench::all().iter().map(Program::from).collect()
}

/// One configuration column of the sweep matrix: a typed
/// [`Instrument`] cell under the driver's historical name. Its `Display`
/// rendering (`softbound@O3@VectorizerStart`, `lowfat-inv@O0@…`, …) is the
/// stable, unique label report lookups key on — the single source of
/// truth lives on [`Instrument`], shared with `cli` and `fuzz`.
pub type JobConfig = Instrument;

/// Successful execution of one cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellOk {
    /// Return value of `main` (if non-void).
    pub ret: Option<i64>,
    /// Lines the program printed.
    pub output: Vec<String>,
    /// Dynamic VM statistics.
    pub stats: VmStats,
    /// Static instrumentation statistics (defaults for baselines).
    pub instr: InstrStats,
    /// Per-check-site execution profile (empty for baselines). Site
    /// indices refer to the compiled module's `check_sites` table; the
    /// totals reconcile exactly with `stats.checks_executed`,
    /// `stats.checks_wide` and `stats.cost_checks`.
    pub profile: SiteProfile,
    /// Per-opcode-class execution counts and charged cost. The class
    /// costs sum to exactly `stats.cost_total`.
    pub ops: OpMetrics,
    /// Hot-page cache and page-materialization counters.
    pub mem: MemCounters,
    /// Folded flame-sampler stacks (`Some` iff the sweep ran with a
    /// non-zero [`VmConfig::sample_interval`]). Byte-identical across VM
    /// backends and worker counts.
    pub flame: Option<FoldedStacks>,
}

/// Coarse classification of a trap, preserved in structured form so
/// differential oracles (the corpus suite, the `fuzz` crate) can tell an
/// *instrumentation verdict* from a raw fault without parsing display
/// strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrapKind {
    /// A mechanism reported a memory-safety violation (named mechanism).
    Violation(String),
    /// A hardware-level fault: unmapped access ("segfault").
    Segfault,
    /// Anything else (cost limit, div-by-zero, abort, ...).
    Other,
}

impl TrapKind {
    /// Stable lower-case name used in the JSON report.
    pub fn name(&self) -> &'static str {
        match self {
            TrapKind::Violation(_) => "violation",
            TrapKind::Segfault => "segfault",
            TrapKind::Other => "other",
        }
    }
}

/// A trapped cell: the classification plus the trap's display string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellTrap {
    /// What kind of trap this was.
    pub kind: TrapKind,
    /// The trap's human-readable rendering (what `evald-report/1` used to
    /// carry as its whole `trap` field).
    pub message: String,
}

impl CellTrap {
    /// Classifies a VM trap.
    pub fn from_trap(trap: &memvm::interp::Trap) -> CellTrap {
        use memvm::interp::Trap;
        let kind = match trap {
            Trap::MemSafetyViolation { mechanism, .. } => TrapKind::Violation(mechanism.clone()),
            Trap::UnmappedAccess { .. } => TrapKind::Segfault,
            _ => TrapKind::Other,
        };
        CellTrap { kind, message: trap.to_string() }
    }

    /// Whether this trap is a memory-safety violation report.
    pub fn is_violation(&self) -> bool {
        matches!(self.kind, TrapKind::Violation(_))
    }
}

/// One cell of the completed sweep.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Program name.
    pub program: String,
    /// Configuration label (the [`JobConfig`]'s `Display` rendering).
    pub config: String,
    /// Execution outcome; `Err` carries the classified trap.
    pub outcome: Result<CellOk, CellTrap>,
    /// Wall-clock spent in this cell's stages (the frontend/pipeline
    /// portions are the shared cached stages, attributed to every cell
    /// that consumed them).
    pub timing: CellTiming,
}

impl CellResult {
    /// The cell's outcome, panicking with a diagnostic on a trap. Figure
    /// harnesses use this: benchmark programs are memory-safe fixtures.
    pub fn ok(&self) -> &CellOk {
        match &self.outcome {
            Ok(ok) => ok,
            Err(t) => panic!("{} [{}] trapped: {}", self.program, self.config, t.message),
        }
    }
}

/// Per-cell stage wall-clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellTiming {
    /// Frontend compile of this cell's program (shared across its cells).
    pub frontend: Duration,
    /// Pipeline prefix up to the extension point (shared per (program,
    /// opt, ep)).
    pub pipeline: Duration,
    /// Instrumentation + post-prefix pipeline stages (per cell).
    pub instrumentation: Duration,
    /// VM setup: loading the module, installing the runtime, and — under
    /// the bytecode backend — compiling to bytecode (per cell). Zero-cost
    /// work for the tree-walker beyond module loading.
    pub vm_compile: Duration,
    /// VM execution (per cell).
    pub execution: Duration,
}

/// Cache effectiveness counters. Deterministic: they count the matrix
/// shape, not scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frontend compilations performed (one per program).
    pub frontend_compiles: u64,
    /// Cells that reused a cached frontend module.
    pub frontend_reuses: u64,
    /// Pipeline prefixes compiled (one per (program, opt, ep)).
    pub prefix_compiles: u64,
    /// Cells that reused a cached prefix.
    pub prefix_reuses: u64,
}

/// Aggregate wall-clock of a sweep, per stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepTimings {
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock of [`Driver::run`].
    pub wall: Duration,
    /// Sum over unique frontend compilations.
    pub frontend: Duration,
    /// Sum over unique pipeline prefixes.
    pub pipeline: Duration,
    /// Sum over cells: instrumentation + pipeline completion.
    pub instrumentation: Duration,
    /// Sum over cells: VM setup (module load, runtime install, bytecode
    /// compilation).
    pub vm_compile: Duration,
    /// Sum over cells: VM execution.
    pub execution: Duration,
}

/// The completed sweep.
#[derive(Clone, Debug)]
pub struct Report {
    /// Program names, in matrix order.
    pub programs: Vec<String>,
    /// Configuration labels, in matrix order.
    pub configs: Vec<String>,
    /// One result per (program, config), program-major — deterministic
    /// matrix order, independent of scheduling.
    pub cells: Vec<CellResult>,
    /// Cache effectiveness counters.
    pub cache: CacheStats,
    /// Aggregate per-stage wall-clock.
    pub timings: SweepTimings,
    /// Pass-pipeline traces, one track per cached prefix and per cell (in
    /// matrix order), when the sweep ran with [`Driver::with_trace`].
    /// Empty otherwise.
    pub traces: Vec<(String, TraceRecorder)>,
    /// The flame-sampler interval the sweep executed under (0 = off),
    /// copied from the driver's [`VmConfig`].
    pub sample_interval: u64,
}

impl Report {
    /// Looks up the cell for (`program`, `config`).
    pub fn get(&self, program: &str, config: &JobConfig) -> Option<&CellResult> {
        let label = config.to_string();
        self.cells.iter().find(|c| c.program == program && c.config == label)
    }

    /// Looks up a cell that must exist and must have run to completion.
    pub fn ok(&self, program: &str, config: &JobConfig) -> &CellOk {
        self.get(program, config).unwrap_or_else(|| panic!("no cell {program} [{config}]")).ok()
    }

    /// Renders the collected pass-pipeline traces as one Chrome
    /// `trace_event` JSON document (viewable in Perfetto), one thread
    /// track per prefix/cell. Byte-identical regardless of worker count:
    /// track order is the matrix order and span timestamps are logical
    /// (see [`mir::trace`]). Empty `traceEvents` if the sweep ran without
    /// [`Driver::with_trace`].
    pub fn trace_json(&self) -> String {
        mir::trace::chrome_trace_document(&self.traces)
    }

    /// The merged sweep flamegraph: every completed cell's folded stacks
    /// with `program;config` prepended as the two root frames, so one
    /// flamegraph shows the whole matrix side by side. Empty unless the
    /// sweep ran with a non-zero sample interval.
    ///
    /// Deterministic: cells merge in matrix order into an accumulator
    /// whose rendering is order-independent, so the collapsed-stack text
    /// is byte-identical across worker counts and VM backends.
    pub fn flame(&self) -> FoldedStacks {
        let mut out = FoldedStacks::new();
        for cell in &self.cells {
            if let Ok(ok) = &cell.outcome {
                if let Some(f) = &ok.flame {
                    out.merge(&f.prefixed(&format!("{};{}", cell.program, cell.config)));
                }
            }
        }
        out
    }

    /// Builds the unified `mi-metrics/1` registry for the sweep.
    ///
    /// Per completed cell (labels `program`, `config`): per-opcode-class
    /// execution counts and charged cost (`vm_op_count`/`vm_op_cost`,
    /// label `op`, nonzero classes only — the `vm_op_cost` series sums to
    /// exactly `vm_cost_total`), the cost-category split (`vm_cost_units`,
    /// label `category`, summing to `vm_cost_total` as well), dynamic
    /// check tallies, peak guest memory (`vm_mapped_bytes` gauge),
    /// hot-page cache effectiveness, and — when sampling was on — the
    /// flame sample count. Trapped cells tally `vm_traps` by trap kind.
    /// Sweep-wide series cover cache effectiveness and cell outcomes, and
    /// each cell's total cost feeds the `vm_cell_cost` histogram
    /// (label `config`).
    ///
    /// Wall-clock timings are deliberately excluded: like
    /// [`Report::to_json`] without timings, the registry's JSON and
    /// Prometheus renderings are byte-identical across worker counts and
    /// VM backends.
    pub fn metrics(&self) -> Registry {
        let mut r = Registry::new();
        for cell in &self.cells {
            let l: &[(&str, &str)] = &[("program", &cell.program), ("config", &cell.config)];
            match &cell.outcome {
                Ok(ok) => {
                    r.counter_add("sweep_cells", &[("outcome", "ok")], 1);
                    for (class, count, cost) in ok.ops.iter() {
                        let lo = [l[0], l[1], ("op", class.name())];
                        r.counter_add("vm_op_count", &lo, count);
                        r.counter_add("vm_op_cost", &lo, cost);
                    }
                    let s = &ok.stats;
                    r.counter_add("vm_cost_total", l, s.cost_total);
                    for (cat, cost) in [
                        ("app", s.cost_app),
                        ("checks", s.cost_checks),
                        ("metadata", s.cost_metadata),
                        ("allocator", s.cost_allocator),
                        ("other", s.cost_other),
                    ] {
                        if cost > 0 {
                            r.counter_add("vm_cost_units", &[l[0], l[1], ("category", cat)], cost);
                        }
                    }
                    r.counter_add("vm_instrs_executed", l, s.instrs_executed);
                    r.counter_add("vm_checks_executed", l, s.checks_executed);
                    r.counter_add("vm_checks_wide", l, s.checks_wide);
                    if ok.instr.checks_elided_ipo > 0 {
                        r.counter_add("instr_checks_elided_ipo", l, ok.instr.checks_elided_ipo);
                    }
                    if ok.instr.summaries_computed > 0 {
                        r.counter_add("instr_summaries_computed", l, ok.instr.summaries_computed);
                    }
                    r.gauge_set("vm_mapped_bytes", l, s.mapped_bytes);
                    let m = &ok.mem;
                    r.counter_add("mem_cache_hits", l, m.cache_hits);
                    r.counter_add("mem_cache_misses", l, m.cache_misses);
                    r.counter_add("mem_cache_demotions", l, m.cache_demotions);
                    r.counter_add("mem_pages_materialized", l, m.pages_materialized);
                    if let Some(f) = &ok.flame {
                        r.counter_add("flame_samples", l, f.total_samples());
                    }
                    r.observe("vm_cell_cost", &[("config", &cell.config)], s.cost_total);
                }
                Err(t) => {
                    r.counter_add("sweep_cells", &[("outcome", "trap")], 1);
                    r.counter_add("vm_traps", &[l[0], l[1], ("kind", t.kind.name())], 1);
                }
            }
        }
        let c = &self.cache;
        r.counter_add("sweep_frontend_compiles", &[], c.frontend_compiles);
        r.counter_add("sweep_frontend_reuses", &[], c.frontend_reuses);
        r.counter_add("sweep_prefix_compiles", &[], c.prefix_compiles);
        r.counter_add("sweep_prefix_reuses", &[], c.prefix_reuses);
        if self.sample_interval > 0 {
            r.gauge_set("flame_sample_interval", &[], self.sample_interval);
        }
        r
    }

    /// Hot-page cache effectiveness aggregated over all completed cells:
    /// `(hits, misses, demotions, pages materialized)`.
    pub fn mem_totals(&self) -> MemCounters {
        let mut t = MemCounters::default();
        for cell in &self.cells {
            if let Ok(ok) = &cell.outcome {
                t.cache_hits += ok.mem.cache_hits;
                t.cache_misses += ok.mem.cache_misses;
                t.cache_demotions += ok.mem.cache_demotions;
                t.pages_materialized += ok.mem.pages_materialized;
            }
        }
        t
    }

    /// Serializes the report as JSON (schema `evald-report/2`).
    ///
    /// Key order and cell order are fixed, so two reports over the same
    /// matrix are byte-identical regardless of worker count — unless
    /// `include_timings` adds the (run-dependent) wall-clock section.
    pub fn to_json(&self, include_timings: bool) -> String {
        let mut out = String::with_capacity(64 * 1024);
        out.push_str("{\n  \"schema\": \"evald-report/2\",\n");
        let _ = writeln!(out, "  \"programs\": {},", json_str_array(&self.programs));
        let _ = writeln!(out, "  \"configs\": {},", json_str_array(&self.configs));
        let c = &self.cache;
        let _ = writeln!(
            out,
            "  \"cache\": {{\"frontend_compiles\": {}, \"frontend_reuses\": {}, \"prefix_compiles\": {}, \"prefix_reuses\": {}}},",
            c.frontend_compiles, c.frontend_reuses, c.prefix_compiles, c.prefix_reuses
        );
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&cell_json(
                &cell.program,
                &cell.config,
                &cell.outcome,
                include_timings.then_some(&cell.timing),
            ));
            out.push_str(if i + 1 == self.cells.len() { "\n" } else { ",\n" });
        }
        out.push_str("  ]");
        if include_timings {
            let t = &self.timings;
            let _ = write!(
                out,
                ",\n  \"timings\": {{\"jobs\": {}, \"wall_us\": {}, \"stage_us\": {{\"frontend\": {}, \"pipeline\": {}, \"instrumentation\": {}, \"vm_compile\": {}, \"execution\": {}}}}}",
                t.jobs,
                t.wall.as_micros(),
                t.frontend.as_micros(),
                t.pipeline.as_micros(),
                t.instrumentation.as_micros(),
                t.vm_compile.as_micros(),
                t.execution.as_micros()
            );
        }
        out.push_str("\n}\n");
        out
    }
}

/// Renders the `"static"` instrumentation-statistics object of a report
/// cell. Shared with [`crate::job::JobOutcome::result_json`] so compile
/// jobs report exactly the block a sweep cell would.
pub fn static_json(st: &InstrStats) -> String {
    format!(
        "{{\"checks_discovered\": {}, \"checks_eliminated\": {}, \"checks_hoisted\": {}, \"checks_widened\": {}, \"checks_elided_ipo\": {}, \"checks_placed\": {}, \"invariants_placed\": {}, \"metadata_loads_placed\": {}, \"metadata_stores_placed\": {}, \"allocas_replaced\": {}, \"globals_mirrored\": {}, \"functions_instrumented\": {}, \"functions_skipped\": {}, \"checks_narrowed\": {}, \"summaries_computed\": {}}}",
        st.checks_discovered, st.checks_eliminated, st.checks_hoisted,
        st.checks_widened, st.checks_elided_ipo, st.checks_placed,
        st.invariants_placed, st.metadata_loads_placed, st.metadata_stores_placed,
        st.allocas_replaced, st.globals_mirrored, st.functions_instrumented,
        st.functions_skipped, st.checks_narrowed, st.summaries_computed
    )
}

/// Renders one report cell as a single-line JSON object — the exact bytes
/// [`Report::to_json`] emits per cell (minus indentation and the list
/// comma). This is the byte-identity contract of the `mi serve` daemon:
/// its run-job responses carry precisely this rendering, so a served
/// result can be diffed against an in-process sweep byte for byte.
pub fn cell_json(
    program: &str,
    config: &str,
    outcome: &Result<CellOk, CellTrap>,
    timing: Option<&CellTiming>,
) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(out, "{{\"program\": {}, \"config\": {}", json_str(program), json_str(config));
    match outcome {
        Ok(ok) => {
            out.push_str(", \"ok\": true");
            match ok.ret {
                Some(r) => {
                    let _ = write!(out, ", \"ret\": {r}");
                }
                None => out.push_str(", \"ret\": null"),
            }
            let _ = write!(out, ", \"output\": {}", json_str_array(&ok.output));
            let s = &ok.stats;
            let _ = write!(
                out,
                ", \"cost\": {}, \"cost_app\": {}, \"cost_checks\": {}, \"cost_metadata\": {}, \"cost_allocator\": {}, \"cost_other\": {}",
                s.cost_total, s.cost_app, s.cost_checks, s.cost_metadata, s.cost_allocator, s.cost_other
            );
            let _ = write!(
                out,
                ", \"instrs_executed\": {}, \"checks_executed\": {}, \"checks_wide\": {}, \"invariant_checks\": {}, \"metadata_loads\": {}, \"metadata_stores\": {}, \"mapped_bytes\": {}",
                s.instrs_executed, s.checks_executed, s.checks_wide,
                s.invariant_checks_executed, s.metadata_loads, s.metadata_stores, s.mapped_bytes
            );
            let _ = write!(out, ", \"static\": {}", static_json(&ok.instr));
        }
        Err(t) => {
            let _ = write!(
                out,
                ", \"ok\": false, \"trap_kind\": {}, \"trap\": {}",
                json_str(t.kind.name()),
                json_str(&t.message)
            );
        }
    }
    if let Some(t) = timing {
        let _ = write!(
            out,
            ", \"timing_us\": {{\"frontend\": {}, \"pipeline\": {}, \"instrumentation\": {}, \"vm_compile\": {}, \"execution\": {}}}",
            t.frontend.as_micros(),
            t.pipeline.as_micros(),
            t.instrumentation.as_micros(),
            t.vm_compile.as_micros(),
            t.execution.as_micros()
        );
    }
    out.push('}');
    out
}

/// The evaluation driver: a job matrix plus execution settings.
#[derive(Clone, Debug)]
pub struct Driver {
    /// Rows of the matrix.
    pub programs: Vec<Program>,
    /// Columns of the matrix; every config runs for every program.
    pub configs: Vec<JobConfig>,
    /// Worker threads (defaults to the machine's available parallelism).
    pub jobs: usize,
    /// VM configuration for execution.
    pub vm: VmConfig,
    /// Whether to record per-pass pipeline traces (see
    /// [`Report::trace_json`]).
    pub trace: bool,
}

impl Driver {
    /// A driver over `programs` × `configs` using all available cores.
    pub fn new(programs: Vec<Program>, configs: Vec<JobConfig>) -> Driver {
        let jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Driver { programs, configs, jobs, vm: VmConfig::default(), trace: false }
    }

    /// Sets the worker count (`--jobs`); 0 means "all cores".
    pub fn with_jobs(mut self, jobs: usize) -> Driver {
        if jobs > 0 {
            self.jobs = jobs;
        }
        self
    }

    /// Enables pass-pipeline trace recording for the sweep.
    pub fn with_trace(mut self, trace: bool) -> Driver {
        self.trace = trace;
        self
    }

    /// Sets the VM configuration every cell executes under (backend
    /// selection, cost budget, ...).
    pub fn with_vm(mut self, vm: VmConfig) -> Driver {
        self.vm = vm;
        self
    }

    /// The sweep as typed job specs (program-major matrix order, `run`
    /// action) — what `mi bench-serve` submits to a daemon to replay this
    /// driver's sweep cell for cell.
    pub fn job_matrix(&self) -> Vec<crate::job::JobSpec> {
        crate::job::job_matrix(&self.programs, &self.configs)
    }

    /// Runs the sweep and collects the report.
    ///
    /// Three phases, each internally parallel, each a pure function of the
    /// matrix: frontend per program, pipeline prefix per (program, opt,
    /// ep), then the cells themselves from cloned cached prefixes.
    pub fn run(&self) -> Report {
        let t_start = Instant::now();

        // Phase 1 — frontend: one compile per program, shared by every
        // cell in its row.
        let frontends: Vec<(mir::Module, Duration)> = par_map(self.jobs, &self.programs, |_, p| {
            let t = Instant::now();
            let m = cfront::compile_named(&p.source, &p.name)
                .unwrap_or_else(|e| panic!("{}: frontend error: {e}", p.name));
            (m, t.elapsed())
        });

        // Phase 2 — pipeline prefixes: one per (program, opt, ep) actually
        // referenced by the matrix.
        let mut prefix_keys: Vec<(usize, OptLevel, ExtensionPoint)> = Vec::new();
        for pi in 0..self.programs.len() {
            for cfg in &self.configs {
                let key = (pi, cfg.build_options().opt, cfg.build_options().ep);
                if !prefix_keys.contains(&key) {
                    prefix_keys.push(key);
                }
            }
        }
        let prefixes: Vec<(mir::Module, Duration, Option<TraceRecorder>)> =
            par_map(self.jobs, &prefix_keys, |_, &(pi, opt, ep)| {
                let t = Instant::now();
                let opts = BuildOptions { opt, ep };
                let module = frontends[pi].0.clone();
                let (m, rec) = if self.trace {
                    let mut rec = TraceRecorder::new();
                    (pipeline_prefix_traced(module, opts, &mut rec), Some(rec))
                } else {
                    (pipeline_prefix(module, opts), None)
                };
                (m, t.elapsed(), rec)
            });
        let prefix_index: HashMap<(usize, OptLevel, ExtensionPoint), usize> =
            prefix_keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();

        // Phase 2.5 — interprocedural summaries: one per prefix snapshot
        // that an IPO-enabled configuration will consume. Summaries are a
        // pure function of the prefix, so sharing one computation across
        // every cell of the (program, opt, ep) row cannot change results.
        let summary_slots: Vec<usize> = (0..prefix_keys.len()).collect();
        let summaries: Vec<Option<Arc<ModuleSummaries>>> =
            par_map(self.jobs, &summary_slots, |_, &slot| {
                let (_, opt, ep) = prefix_keys[slot];
                let wanted = self.configs.iter().any(|cfg| {
                    let o = cfg.build_options();
                    o.opt == opt && o.ep == ep && cfg.mi_config().is_some_and(|mi| mi.uses_ipo())
                });
                wanted.then(|| Arc::new(mir::analysis::ipo::summarize(&prefixes[slot].0)))
            });

        // Phase 3 — cells: instrument (completing the pipeline) + execute,
        // from a clone of the cached prefix.
        let cell_keys: Vec<(usize, usize)> = (0..self.programs.len())
            .flat_map(|pi| (0..self.configs.len()).map(move |ci| (pi, ci)))
            .collect();
        let cells: Vec<(CellResult, Option<TraceRecorder>)> =
            par_map(self.jobs, &cell_keys, |_, &(pi, ci)| {
                let cfg = &self.configs[ci];
                let opts = cfg.build_options();
                let prefix_slot = prefix_index[&(pi, opts.opt, opts.ep)];
                let (prefix, prefix_time, _) = &prefixes[prefix_slot];

                let t = Instant::now();
                let mut rec = if self.trace { Some(TraceRecorder::new()) } else { None };
                let prog = match (cfg.mi_config(), &mut rec) {
                    (None, None) => compile_baseline_from_prefix(prefix.clone(), opts),
                    (None, Some(r)) => compile_baseline_from_prefix_traced(prefix.clone(), opts, r),
                    (Some(mi), None) => compile_from_prefix_with_summaries(
                        prefix.clone(),
                        mi,
                        opts,
                        summaries[prefix_slot].clone(),
                    ),
                    (Some(mi), Some(r)) => compile_from_prefix_traced(prefix.clone(), mi, opts, r),
                };
                let instrumentation = t.elapsed();

                // The VM stage (setup timed separately from execution, so
                // the report attributes bytecode compilation correctly) is
                // the shared implementation behind the typed job API — the
                // daemon runs the same code path, which is what makes its
                // responses byte-identical to this sweep.
                let stage = crate::job::run_vm_stage(
                    &prog,
                    self.vm,
                    &crate::job::JobCtl::default(),
                    None,
                    false,
                );
                let outcome = stage.outcome.map_err(|t| CellTrap::from_trap(&t));
                let (vm_compile, execution) = (stage.vm_compile, stage.execution);

                let cell = CellResult {
                    program: self.programs[pi].name.clone(),
                    config: cfg.to_string(),
                    outcome,
                    timing: CellTiming {
                        frontend: frontends[pi].1,
                        pipeline: *prefix_time,
                        instrumentation,
                        vm_compile,
                        execution,
                    },
                };
                (cell, rec)
            });

        // Trace tracks: cached prefixes first (in prefix-key order), then
        // cells in matrix order — a deterministic layout, independent of
        // which worker ran what.
        let mut traces: Vec<(String, TraceRecorder)> = Vec::new();
        if self.trace {
            for (i, &(pi, opt, ep)) in prefix_keys.iter().enumerate() {
                let opt = match opt {
                    OptLevel::O0 => "O0",
                    OptLevel::O3 => "O3",
                };
                let label = format!("{}/prefix@{opt}@{}", self.programs[pi].name, ep.name());
                traces.push((label, prefixes[i].2.clone().unwrap_or_default()));
            }
            for (cell, rec) in &cells {
                let label = format!("{}/{}", cell.program, cell.config);
                traces.push((label, rec.clone().unwrap_or_default()));
            }
        }
        let cells: Vec<CellResult> = cells.into_iter().map(|(c, _)| c).collect();

        let n_cells = cells.len() as u64;
        let cache = CacheStats {
            frontend_compiles: self.programs.len() as u64,
            frontend_reuses: n_cells - self.programs.len() as u64,
            prefix_compiles: prefix_keys.len() as u64,
            prefix_reuses: n_cells - prefix_keys.len() as u64,
        };
        let timings = SweepTimings {
            jobs: self.jobs,
            wall: t_start.elapsed(),
            frontend: frontends.iter().map(|(_, d)| *d).sum(),
            pipeline: prefixes.iter().map(|(_, d, _)| *d).sum(),
            instrumentation: cells.iter().map(|c| c.timing.instrumentation).sum(),
            vm_compile: cells.iter().map(|c| c.timing.vm_compile).sum(),
            execution: cells.iter().map(|c| c.timing.execution).sum(),
        };
        Report {
            programs: self.programs.iter().map(|p| p.name.clone()).collect(),
            configs: self.configs.iter().map(|c| c.to_string()).collect(),
            cells,
            cache,
            timings,
            traces,
            sample_interval: self.vm.sample_interval,
        }
    }
}

/// Maps `f` over `items` on up to `jobs` scoped worker threads, preserving
/// input order in the result. Workers pull indices from a shared atomic
/// counter; a generous stack accommodates the interpreter's recursion on
/// deeply recursive benchmark programs in debug builds.
///
/// Public because other deterministic sweeps (the `fuzz` crate's per-case
/// parallelism) reuse it: results land in input order, so the caller's
/// output is independent of scheduling.
pub fn par_map<T: Sync, R: Send>(
    jobs: usize,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = jobs.max(1).min(n);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let slots = &slots;
            let next = &next;
            let f = &f;
            std::thread::Builder::new()
                .stack_size(32 * 1024 * 1024)
                .spawn_scoped(s, move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    *slots[i].lock().unwrap() = Some(f(i, &items[i]));
                })
                .expect("spawn worker");
        }
    });
    slots.into_iter().map(|m| m.into_inner().unwrap().expect("worker filled slot")).collect()
}

// ---------------------------------------------------------------------------
// Standard matrices
// ---------------------------------------------------------------------------

/// Baseline + both paper mechanisms at the Figure 9 configuration.
pub fn fig9_configs() -> Vec<JobConfig> {
    vec![
        Instrument::baseline(),
        Instrument::mechanism(Mechanism::SoftBound),
        Instrument::mechanism(Mechanism::LowFat),
    ]
}

/// Baseline + optimized/unoptimized/invariants-only for `mech`
/// (Figures 10/11).
pub fn variants_configs(mech: Mechanism) -> Vec<JobConfig> {
    vec![
        Instrument::baseline(),
        Instrument::mechanism(mech),
        Instrument::mechanism(mech).opt(OptConfig::none()),
        Instrument::mechanism(mech).mode(MiMode::GenInvariantsOnly),
    ]
}

/// Baseline + `mech` at all three extension points (Figures 12/13).
pub fn extension_point_configs(mech: Mechanism) -> Vec<JobConfig> {
    let mut v = vec![Instrument::baseline()];
    for ep in ExtensionPoint::ALL {
        v.push(Instrument::mechanism(mech).at(ep));
    }
    v
}

/// The full paper sweep: everything `report`/`mi eval` needs — baseline,
/// both mechanisms at all extension points, the unoptimized,
/// dominance-only (`-noloop`, isolating the loop-aware check
/// optimizations), and invariants-only variants, and the red-zone
/// extension (14 cells per program).
pub fn paper_sweep_configs() -> Vec<JobConfig> {
    let mut v = vec![Instrument::baseline()];
    for mech in [Mechanism::SoftBound, Mechanism::LowFat] {
        for ep in ExtensionPoint::ALL {
            v.push(Instrument::mechanism(mech).at(ep));
        }
        v.push(Instrument::mechanism(mech).opt(OptConfig::none()));
        v.push(Instrument::mechanism(mech).opt(OptConfig::no_loops()));
        v.push(Instrument::mechanism(mech).mode(MiMode::GenInvariantsOnly));
    }
    v.push(Instrument::mechanism(Mechanism::RedZone));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_programs() -> Vec<Program> {
        vec![
            Program {
                name: "sum".into(),
                source: r#"
                    long a[8];
                    long main(void) {
                        for (long i = 0; i < 8; i += 1) a[i] = i * 3;
                        long s = 0;
                        for (long i = 0; i < 8; i += 1) s += a[i];
                        print_i64(s);
                        return 0;
                    }
                "#
                .into(),
            },
            Program {
                name: "heap".into(),
                source: r#"
                    long main(void) {
                        long *p = (long*)malloc(4 * sizeof(long));
                        for (long i = 0; i < 4; i += 1) p[i] = i + 10;
                        print_i64(p[0] + p[3]);
                        return 0;
                    }
                "#
                .into(),
            },
        ]
    }

    #[test]
    fn report_is_identical_for_any_worker_count() {
        let configs = fig9_configs();
        let r1 = Driver::new(tiny_programs(), configs.clone()).with_jobs(1).run();
        let r8 = Driver::new(tiny_programs(), configs).with_jobs(8).run();
        assert_eq!(r1.to_json(false), r8.to_json(false));
        // With timings the reports still parse to the same deterministic
        // cells, but the byte-identity guarantee is explicitly dropped.
        assert_eq!(r1.cells.len(), 6);
        // The timed report splits VM setup (bytecode compilation) from
        // execution, per cell and in the stage totals.
        let timed = r1.to_json(true);
        assert!(timed.contains("\"vm_compile\":"), "{timed}");
        assert!(timed.contains("\"execution\":"), "{timed}");
    }

    #[test]
    fn vm_backend_choice_does_not_change_the_report() {
        use memvm::VmBackend;
        let run = |backend| {
            Driver::new(tiny_programs(), fig9_configs())
                .with_jobs(1)
                .with_vm(VmConfig { backend, ..VmConfig::default() })
                .run()
                .to_json(false)
        };
        assert_eq!(run(VmBackend::Walk), run(VmBackend::Bytecode));
    }

    #[test]
    fn cache_counters_reflect_matrix_shape() {
        // 2 programs × 5 configs, 3 distinct (opt, ep) pairs per program.
        let configs = extension_point_configs(Mechanism::SoftBound);
        assert_eq!(configs.len(), 4);
        let r = Driver::new(tiny_programs(), configs).with_jobs(4).run();
        assert_eq!(r.cache.frontend_compiles, 2);
        assert_eq!(r.cache.frontend_reuses, 8 - 2);
        // Baseline shares the VectorizerStart prefix with one instrumented
        // config: 3 prefixes per program.
        assert_eq!(r.cache.prefix_compiles, 6);
        assert_eq!(r.cache.prefix_reuses, 8 - 6);
    }

    #[test]
    fn cached_cells_match_direct_compilation() {
        let programs = tiny_programs();
        let configs = paper_sweep_configs();
        let r = Driver::new(programs.clone(), configs.clone()).with_jobs(3).run();
        for p in &programs {
            let m = cfront::compile(&p.source).unwrap();
            for cfg in &configs {
                let direct = cfg.compile(m.clone());
                let direct_out = direct.run_main(VmConfig::default()).unwrap();
                let cell = r.ok(&p.name, cfg);
                assert_eq!(cell.output, direct_out.output, "{} [{cfg}]", p.name);
                assert_eq!(
                    cell.stats.cost_total, direct_out.stats.cost_total,
                    "{} [{cfg}]",
                    p.name
                );
                assert_eq!(cell.instr, direct.stats, "{} [{cfg}]", p.name);
            }
        }
    }

    #[test]
    fn traps_are_reported_not_fatal() {
        let buggy = Program {
            name: "buggy".into(),
            source: r#"
                long main(void) {
                    long *p = (long*)malloc(8 * sizeof(long));
                    p[9] = 1;
                    print_i64(p[9]);
                    return 0;
                }
            "#
            .into(),
        };
        let r = Driver::new(vec![buggy], fig9_configs()).with_jobs(2).run();
        let sb = Instrument::mechanism(Mechanism::SoftBound);
        let cell = r.get("buggy", &sb).unwrap();
        assert!(cell.outcome.is_err(), "{:?}", cell.outcome);
        let json = r.to_json(false);
        assert!(json.contains("\"ok\": false"), "{json}");
    }

    #[test]
    fn trace_is_identical_for_any_worker_count() {
        let configs = fig9_configs();
        let r1 = Driver::new(tiny_programs(), configs.clone()).with_jobs(1).with_trace(true).run();
        let r8 = Driver::new(tiny_programs(), configs).with_jobs(8).with_trace(true).run();
        let t1 = r1.trace_json();
        assert_eq!(t1, r8.trace_json());
        // One track per cached prefix plus one per cell.
        assert_eq!(r1.traces.len(), 2 + 6);
        assert!(t1.contains("\"traceEvents\""));
        assert!(t1.contains("\"name\":\"sum/softbound@O3@VectorizerStart\""), "{t1}");
        assert!(t1.contains("\"name\":\"heap/prefix@O3@VectorizerStart\""), "{t1}");
        // The instrumentation plugin shows up as a span on instrumented
        // cell tracks.
        assert!(t1.contains("\"cat\":\"plugin@VectorizerStart\""), "{t1}");
        // Tracing must not perturb results.
        let plain = Driver::new(tiny_programs(), fig9_configs()).with_jobs(2).run();
        assert!(plain.traces.is_empty());
        assert_eq!(plain.to_json(false), r1.to_json(false));
    }

    #[test]
    fn site_profiles_reconcile_exactly_with_vm_stats() {
        let r = Driver::new(tiny_programs(), paper_sweep_configs()).with_jobs(4).run();
        let mut instrumented = 0;
        for cell in &r.cells {
            let ok = cell.ok();
            let s = &ok.stats;
            let ctx = format!("{} [{}]", cell.program, cell.config);
            if cell.config.starts_with("baseline") {
                assert!(ok.profile.is_empty(), "{ctx}: baseline must have no site hits");
                continue;
            }
            instrumented += 1;
            assert_eq!(
                ok.profile.total_hits(),
                s.checks_executed + s.invariant_checks_executed,
                "{ctx}: site hits must equal executed checks"
            );
            assert_eq!(ok.profile.total_wide(), s.checks_wide, "{ctx}: wide counts");
            assert_eq!(ok.profile.total_cost(), s.cost_checks, "{ctx}: check cost");
        }
        assert!(instrumented > 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(JobConfig::baseline().to_string(), "baseline@O3@VectorizerStart");
        let lf_inv = Instrument::mechanism(Mechanism::LowFat).mode(MiMode::GenInvariantsOnly);
        assert_eq!(lf_inv.to_string(), "lowfat-inv@O3@VectorizerStart");
        let sb_early =
            Instrument::mechanism(Mechanism::SoftBound).at(ExtensionPoint::ModuleOptimizerEarly);
        assert_eq!(sb_early.to_string(), "softbound@O3@ModuleOptimizerEarly");
        let sb_noloop = Instrument::mechanism(Mechanism::SoftBound).opt(OptConfig::no_loops());
        assert_eq!(sb_noloop.to_string(), "softbound-noloop@O3@VectorizerStart");
    }
}
