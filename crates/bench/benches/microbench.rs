//! Microbenchmarks of the implementation itself (wall-clock): frontend +
//! pipeline throughput, instrumentation pass cost, interpreter throughput,
//! and the two metadata substrates (trie, low-fat allocator).
//!
//! Dependency-free harness (`harness = false`): each benchmark runs a
//! fixed number of iterations and reports min/mean wall-clock per
//! iteration. Run with `cargo bench -p bench`.

use std::time::Instant;

use lowfat::LowFatHeap;
use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::VmConfig;
use softbound_rt::{Bounds, MetadataTrie};

/// Times `f` over `iters` iterations and prints one result line.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // One warmup iteration keeps lazy init out of the first sample.
    std::hint::black_box(f());
    let mut min = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let dt = t.elapsed().as_secs_f64();
        min = min.min(dt);
        total += dt;
    }
    println!(
        "{name:<40} {:>10.3} ms/iter (min), {:>10.3} ms/iter (mean), {iters} iters",
        min * 1e3,
        total / iters as f64 * 1e3
    );
}

fn bench_compile() {
    let b = cbench::by_name("186crafty").unwrap();
    bench("frontend+O3 pipeline (crafty)", 10, || {
        let m = cfront::compile(b.source).unwrap();
        compile_baseline(m, BuildOptions::default())
    });
    let sb = MiConfig::new(Mechanism::SoftBound);
    bench("instrumentation softbound (crafty)", 10, || {
        let m = cfront::compile(b.source).unwrap();
        compile(m, &sb, BuildOptions::default())
    });
    let lf = MiConfig::new(Mechanism::LowFat);
    bench("instrumentation lowfat (crafty)", 10, || {
        let m = cfront::compile(b.source).unwrap();
        compile(m, &lf, BuildOptions::default())
    });
}

fn bench_interpreter() {
    let b = cbench::by_name("470lbm").unwrap();
    let base = compile_baseline(cfront::compile(b.source).unwrap(), BuildOptions::default());
    bench("interpret baseline (lbm)", 10, || base.run_main(VmConfig::default()).unwrap());
    let sb = compile(
        cfront::compile(b.source).unwrap(),
        &MiConfig::new(Mechanism::SoftBound),
        BuildOptions::default(),
    );
    bench("interpret softbound (lbm)", 10, || sb.run_main(VmConfig::default()).unwrap());
}

fn bench_trie() {
    bench("trie set+get (64k slots)", 10, || {
        let mut t = MetadataTrie::new();
        for i in 0..65536u64 {
            t.set(0x1000 + i * 8, Bounds { base: i, bound: i + 64 });
        }
        let mut acc = 0u64;
        for i in 0..65536u64 {
            acc = acc.wrapping_add(t.get(0x1000 + i * 8).base);
        }
        acc
    });
}

fn bench_lowfat_alloc() {
    bench("lowfat alloc/free cycle (16k)", 10, || {
        let mut h = LowFatHeap::new();
        let mut addrs = Vec::with_capacity(16384);
        for i in 0..16384u64 {
            addrs.push(h.alloc((i % 500) + 1).unwrap().addr);
        }
        for a in addrs {
            h.free(a);
        }
        h.alloc_count
    });
}

fn main() {
    bench_compile();
    bench_interpreter();
    bench_trie();
    bench_lowfat_alloc();
}
