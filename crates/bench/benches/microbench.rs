//! Criterion microbenchmarks of the implementation itself (wall-clock):
//! frontend + pipeline throughput, instrumentation pass cost, interpreter
//! throughput, and the two metadata substrates (trie, low-fat allocator).

use criterion::{criterion_group, criterion_main, Criterion};
use lowfat::LowFatHeap;
use meminstrument::runtime::{compile, compile_baseline, BuildOptions};
use meminstrument::{Mechanism, MiConfig};
use memvm::VmConfig;
use softbound_rt::{Bounds, MetadataTrie};

fn bench_compile(c: &mut Criterion) {
    let b = cbench::by_name("186crafty").unwrap();
    c.bench_function("frontend+O3 pipeline (crafty)", |bch| {
        bch.iter(|| {
            let m = cfront::compile(b.source).unwrap();
            std::hint::black_box(compile_baseline(m, BuildOptions::default()))
        })
    });
    c.bench_function("instrumentation softbound (crafty)", |bch| {
        let cfg = MiConfig::new(Mechanism::SoftBound);
        bch.iter(|| {
            let m = cfront::compile(b.source).unwrap();
            std::hint::black_box(compile(m, &cfg, BuildOptions::default()))
        })
    });
    c.bench_function("instrumentation lowfat (crafty)", |bch| {
        let cfg = MiConfig::new(Mechanism::LowFat);
        bch.iter(|| {
            let m = cfront::compile(b.source).unwrap();
            std::hint::black_box(compile(m, &cfg, BuildOptions::default()))
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let b = cbench::by_name("470lbm").unwrap();
    let base = compile_baseline(cfront::compile(b.source).unwrap(), BuildOptions::default());
    c.bench_function("interpret baseline (lbm)", |bch| {
        bch.iter(|| base.run_main(VmConfig::default()).unwrap())
    });
    let sb = compile(
        cfront::compile(b.source).unwrap(),
        &MiConfig::new(Mechanism::SoftBound),
        BuildOptions::default(),
    );
    c.bench_function("interpret softbound (lbm)", |bch| {
        bch.iter(|| sb.run_main(VmConfig::default()).unwrap())
    });
}

fn bench_trie(c: &mut Criterion) {
    c.bench_function("trie set+get (64k slots)", |bch| {
        bch.iter(|| {
            let mut t = MetadataTrie::new();
            for i in 0..65536u64 {
                t.set(0x1000 + i * 8, Bounds { base: i, bound: i + 64 });
            }
            let mut acc = 0u64;
            for i in 0..65536u64 {
                acc = acc.wrapping_add(t.get(0x1000 + i * 8).base);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_lowfat_alloc(c: &mut Criterion) {
    c.bench_function("lowfat alloc/free cycle (16k)", |bch| {
        bch.iter(|| {
            let mut h = LowFatHeap::new();
            let mut addrs = Vec::with_capacity(16384);
            for i in 0..16384u64 {
                addrs.push(h.alloc((i % 500) + 1).unwrap().addr);
            }
            for a in addrs {
                h.free(a);
            }
            std::hint::black_box(h.alloc_count)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile, bench_interpreter, bench_trie, bench_lowfat_alloc
);
criterion_main!(benches);
